"""Batch sorting with arbitrary-width comparator networks.

Sorting networks shine on fixed-width batches: the comparison pattern is
data-independent, so thousands of rows sort in lock-step with vectorized
kernels.  The paper's construction removes the classic power-of-two width
restriction — here we sort width-360 batches (360 = 5*3*3*2*2*2, nowhere
near a power of two) and cross-check against ``np.sort``.

Run:  python examples/sorting_service.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import k_network, sorted_outputs
from repro.analysis import network_stats


def main() -> None:
    factors = [5, 3, 3, 2, 2, 2]
    net = k_network(factors)
    s = network_stats(net)
    print(f"network {net.name}: width={s.width}, depth={s.depth}, comparators={s.size}")
    print()

    rng = np.random.default_rng(1)
    for batch_size in (100, 1000, 5000):
        batch = rng.integers(0, 10_000, size=(batch_size, net.width))
        t0 = time.perf_counter()
        out = sorted_outputs(net, batch)
        net_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        expect = np.sort(batch, axis=1)
        np_time = time.perf_counter() - t0
        ok = np.array_equal(out, expect)
        print(
            f"batch {batch_size:>5} x {net.width}: network {net_time*1e3:8.1f} ms, "
            f"np.sort {np_time*1e3:6.1f} ms, results match: {ok}"
        )

    print()
    print("The network is of course slower than np.sort in software — its point")
    print("is the *data-independent* comparison schedule: the same wiring works")
    print("as a hardware pipeline, an oblivious (timing-safe) sorter, or with")
    print("comparators replaced by balancers, an asynchronous counter.")

    # Keys with payloads: sort float keys, carry int payloads via argsort of
    # the network output (demonstrating stable usage patterns).
    keys = rng.random(net.width)
    sorted_keys = sorted_outputs(net, keys)
    assert np.allclose(sorted_keys, np.sort(keys))
    print("\nfloat keys sorted correctly:", bool(np.allclose(sorted_keys, np.sort(keys))))


if __name__ == "__main__":
    main()
