"""A balancing network as a work distributor.

Counting networks were born as counters, but the same structure is a
decentralized *load balancer*: jobs enter on any wire, traverse a few
small balancers, and land on a server wire — no central queue, no global
lock, and the step property guarantees servers differ by at most one job
at quiescence no matter how skewed the arrivals were.

This demo slams all jobs onto one ingress wire (the worst case) and
compares three distributors on how even the server loads stay over time:

* no network at all (jobs stay where they land),
* one block of the periodic network (a cheap smoother),
* a full counting network (the paper's L family).

Run:  python examples/load_balancer.py
"""

from __future__ import annotations

from repro import l_network
from repro.analysis import measure_prefix_quality
from repro.baselines import periodic_network
from repro.core import identity_network
from repro.verify import observed_smoothness


def main() -> None:
    servers = 8
    jobs = 256
    candidates = [
        ("no balancing", identity_network(servers)),
        ("1 periodic block (smoother)", periodic_network(servers, blocks=1)),
        ("full periodic network", periodic_network(servers)),
        ("L(2,2,2) counting network", l_network([2, 2, 2])),
    ]

    print(f"{jobs} jobs arriving on ONE ingress wire, {servers} servers\n")
    print(f"{'distributor':<30} {'depth':>5} {'final spread':>13} {'worst spread':>13}")
    for name, net in candidates:
        q = measure_prefix_quality(net, jobs, skew="single", seed=1)
        print(f"{name:<30} {net.depth:>5} {q.final_smoothness:>13} {q.max_smoothness:>13}")

    print("\n'spread' = busiest server minus idlest server (lower is better);")
    print("'worst' is measured after every single job, not just at the end.")
    print("\nStatic smoothing guarantees (searched, lower bound):")
    for name, net in candidates[1:]:
        print(f"  {name:<30} observed smoothness {observed_smoothness(net)}")

    print("\nThe counting network keeps servers within 1 job of each other at")
    print("quiescence from ANY arrival pattern — that's the step property —")
    print("while a truncated smoother trades a small bounded spread for less")
    print("hardware, the practical dial the paper's family exposes.")


if __name__ == "__main__":
    main()
