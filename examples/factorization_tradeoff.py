"""Exploring the factorization family for a fixed width (paper §1, §6).

The paper's central practical message: for a width ``w`` you get one network
per factorization, trading balancer width against depth.  This script builds
the whole family for a width, prints the trade-off table and Pareto
frontier, and then uses the contention model to pick the factorization a
shared-memory deployment should actually use.

Run:  python examples/factorization_tradeoff.py [width]
"""

from __future__ import annotations

import sys

from repro import ContentionSimulator, k_network
from repro.analysis import build_family, format_table, pareto_frontier


def main(width: int = 64) -> None:
    print(f"=== Counting-network family for width {width} (K construction) ===\n")
    family = build_family(width, "K")
    print(format_table([e.as_dict() for e in family]))

    print("\n=== Pareto frontier (no member is better in both depth and balancer width) ===\n")
    frontier = pareto_frontier(family)
    for e in frontier:
        print(
            f"  {'x'.join(map(str, e.factors)):>18}   depth={e.stats.depth:<4} "
            f"max balancer={e.stats.max_balancer_width}"
        )

    print("\n=== Which member should a 64-thread shared-memory counter use? ===\n")
    rows = []
    for e in family:
        net = k_network(list(e.factors))
        stats = ContentionSimulator(net).run(n_procs=64, ops_per_proc=4)
        rows.append(
            {
                "factors": "x".join(map(str, e.factors)),
                "depth": net.depth,
                "max_balancer": net.max_balancer_width,
                "mean_latency": round(stats.mean_latency, 2),
                "throughput": round(stats.throughput, 3),
            }
        )
    rows.sort(key=lambda r: -r["throughput"])
    print(format_table(rows))
    best = rows[0]
    print(
        f"\nBest under this model: {best['factors']} "
        f"(neither the single balancer nor the all-binary network — an"
        f" intermediate balancer size wins, matching Felten et al. [9])."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
