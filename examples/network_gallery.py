"""A gallery reproducing the paper's figures as ASCII diagrams.

* Figure 1/2 — balancers vs comparators, and the isomorphic pair built from
  components of sizes 2, 3 and 5;
* Figure 3 — the bubble-sort network with a concrete token distribution
  showing it is not a counting network;
* Figures 9/10 — a staircase-merger run, block by block.

Run:  python examples/network_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import k_network, propagate_counts, run_tokens, sorted_outputs
from repro.baselines import bubble_network
from repro.core.sequences import is_step
from repro.networks import staircase_merger
from repro.verify import find_counting_violation
from repro.viz import render_matrix, render_network, render_sequence


def figure_1_and_2() -> None:
    print("=" * 72)
    print("Figure 1/2: one structure, two readings (sizes 2, 3, 5 -> width 30)")
    print("=" * 72)
    net = k_network([5, 3, 2])
    print(f"{net.name}: width={net.width}, depth={net.depth}, "
          f"balancer widths used: {sorted(net.balancer_width_histogram())}")
    rng = np.random.default_rng(2)

    tokens = rng.integers(0, 5, size=30)
    out = propagate_counts(net, tokens)
    print("\nAs a COUNTING network (tokens in -> step sequence out):")
    print(" ", render_sequence(tokens, "in  "))
    print(" ", render_sequence(out, "out "))

    values = rng.permutation(30)
    print("\nAs a SORTING network (same wiring, comparators):")
    print("  in :", values.tolist())
    print("  out:", sorted_outputs(net, values).tolist())


def figure_3() -> None:
    print()
    print("=" * 72)
    print("Figure 3: a sorting network that does NOT count (bubble sort)")
    print("=" * 72)
    net = bubble_network(4)
    print(render_network(net))
    v = find_counting_violation(net)
    assert v is not None
    print(f"\nviolating token distribution: {v.input_counts.tolist()}")
    result = run_tokens(net, list(v.input_counts))
    print(f"token-simulator output counts: {list(result.output_counts)}")
    print(f"step property: {is_step(result.output_counts)}  <- counting fails")
    print("(every comparator network sorts 0-1 batches, but tokens arrive")
    print(" in arbitrary counts per wire — that is what breaks bubble sort.)")


def figures_9_10() -> None:
    print()
    print("=" * 72)
    print("Figures 9/10: staircase-merger S(r=4, p=2, q=3) in action")
    print("=" * 72)
    r, p, q = 4, 2, 3
    net = staircase_merger(r, p, q, variant="opt_bitonic")
    # Three step inputs whose sums differ by at most p = 2.
    from repro.core.sequences import make_step

    xs = [make_step(r * p, 13), make_step(r * p, 12), make_step(r * p, 11)]
    x = np.concatenate(xs)
    out = propagate_counts(net, x)
    print("\ninput matrix A (columns are the q step inputs):")
    a = np.stack(xs, axis=1)
    print(render_matrix(a.ravel(), r * p, q))
    print("\noutput (row-major), now one global step sequence:")
    print(render_matrix(out, r * p, q))
    print("\nstep property:", is_step(out), f" depth={net.depth} (= d+3 with d=1... here base is 1 balancer)")


if __name__ == "__main__":
    figure_1_and_2()
    figure_3()
    figures_9_10()
