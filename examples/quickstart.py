"""Quickstart: build, run, and verify a counting/sorting network.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    k_network,
    l_network,
    propagate_counts,
    sorted_outputs,
    find_counting_violation,
)
from repro.viz import render_network, render_sequence


def main() -> None:
    # --- 1. Build a counting network for any width -------------------------
    # Width 24 = 4 * 3 * 2.  The K family uses balancers up to max(p_i*p_j);
    # the L family only needs balancers up to max(p_i).
    k = k_network([4, 3, 2])
    l = l_network([4, 3, 2])
    print(f"{k.name}: depth={k.depth}, balancers={k.size}, widest balancer={k.max_balancer_width}")
    print(f"{l.name}: depth={l.depth}, balancers={l.size}, widest balancer={l.max_balancer_width}")
    print()

    # --- 2. Count: any token distribution becomes a step sequence ----------
    rng = np.random.default_rng(7)
    tokens = rng.integers(0, 10, size=24)
    out = propagate_counts(k, tokens)
    print("input tokens: ", render_sequence(tokens))
    print("output tokens:", render_sequence(out))
    print("step property holds:", bool(np.all(out[:-1] >= out[1:]) and out[0] - out[-1] <= 1))
    print()

    # --- 3. Sort: the same network, read as comparators --------------------
    values = rng.permutation(24)
    print("sorted:", sorted_outputs(k, values).tolist())
    print()

    # --- 4. Verify: search for counting violations -------------------------
    violation = find_counting_violation(k)
    print("violation search:", "none found (counting network)" if violation is None else violation)
    print()

    # --- 5. Look inside a small one ----------------------------------------
    print(render_network(k_network([2, 2, 2])))


if __name__ == "__main__":
    main()
