"""The paper's closing open question (§6), made concrete.

"An interesting open question concerns the timing constraints necessary
for counting networks built in this way to be linearizable."

This demo shows the two sides of that question on an L-family network:

* executed *sequentially* (one operation at a time) the counter is
  perfectly linearizable — values come out 0, 1, 2, ... in real-time order;
* under free asynchrony, a single stalled token lets a later,
  non-overlapping operation receive a *smaller* value — the counter
  counts, but it is not linearizable.

Run:  python examples/linearizability_demo.py
"""

from __future__ import annotations

from repro import l_network
from repro.analysis import (
    check_history,
    find_nonlinearizable_execution,
    run_sequential_history,
)


def main() -> None:
    net = l_network([3, 2])
    print(f"network: {net.name} (width {net.width}, depth {net.depth}, balancers <= {net.max_balancer_width})\n")

    # --- sequential: linearizable -------------------------------------------
    ops = run_sequential_history(net, 12)
    print("sequential execution (one op at a time):")
    for o in sorted(ops, key=lambda o: o.end)[:6]:
        print(f"  op {o.token_id}: interval [{o.start:>3}, {o.end:>3}]  ->  value {o.value}")
    print("  ...")
    print(f"  linearizable: {check_history(ops) is None}\n")

    # --- asynchronous: a violating schedule ---------------------------------
    found = find_nonlinearizable_execution(net)
    assert found is not None
    violation, ops = found
    print("asynchronous execution with one stalled token:")
    for o in sorted(ops, key=lambda o: o.start):
        marker = ""
        if o.token_id == violation.first.token_id:
            marker = "   <- finished FIRST"
        if o.token_id == violation.second.token_id:
            marker = "   <- started AFTER, got SMALLER value"
        print(f"  op {o.token_id:>2}: interval [{o.start:>3}, {o.end:>3}]  ->  value {o.value}{marker}")
    print(f"\n  {violation}")
    print(f"  still a correct counter at quiescence: values are exactly "
          f"0..{len(ops)-1}: {sorted(o.value for o in ops) == list(range(len(ops)))}")
    print("\n  -> counting networks trade linearizability for low contention;")
    print("     restoring it needs timing assumptions or extra waiting,")
    print("     exactly the trade-off the paper's references [13-15] study.")


if __name__ == "__main__":
    main()
