"""Exporting networks for external tooling.

A counting/sorting network is ultimately a wiring diagram; this demo
plans a network for a hardware-ish constraint (comparators no wider than
4 ports), then exports it three ways:

* Graphviz DOT (render with ``dot -Tsvg network.dot``),
* layered JSON (the evaluator's layer/width-group structure — the natural
  input for an HDL generator or a port to another language),
* the plain JSON structural dump (``Network.save`` / ``Network.load``).

Run:  python examples/export_hardware.py [outdir]
"""

from __future__ import annotations

import pathlib
import sys

from repro.analysis import layer_profile, plan_network
from repro.core import Network
from repro.viz import to_dot, to_layered_json


def main(outdir: str = "build_artifacts") -> None:
    out = pathlib.Path(outdir)
    out.mkdir(exist_ok=True)

    plan = plan_network(width=24, max_balancer=4, family="L")
    net = plan.build()
    print(f"planned {net.name}: width={net.width}, depth={net.depth}, "
          f"balancers={net.size} (all <= {net.max_balancer_width} ports)\n")

    dot_path = out / "network.dot"
    dot_path.write_text(to_dot(net))
    json_path = out / "network.layers.json"
    json_path.write_text(to_layered_json(net, indent=2))
    save_path = out / "network.json"
    net.save(save_path)
    assert Network.load(save_path) == net

    print(f"wrote {dot_path}   ({dot_path.stat().st_size} bytes)")
    print(f"wrote {json_path}  ({json_path.stat().st_size} bytes)")
    print(f"wrote {save_path}  (round-trips through Network.load)")

    print("\nper-layer resource usage (what an HDL floorplan would see):")
    print(f"  {'layer':>5} {'balancers':>10} {'widths':>12}")
    for p in layer_profile(net)[:12]:
        widths = ",".join(f"{w}x{c}" for w, c in p.widths.items())
        print(f"  {p.layer:>5} {p.balancers:>10} {widths:>12}")
    if net.depth > 12:
        print(f"  ... ({net.depth - 12} more layers)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "build_artifacts")
