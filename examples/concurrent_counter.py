"""A shared Fetch&Increment counter built on a counting network.

Counting networks exist to spread counter contention across many small
balancers instead of one hot compare-and-swap word.  This example runs the
same workload three ways:

1. asynchronous token simulation under a hostile (straggler) schedule,
2. a genuinely threaded counter (per-balancer locks),
3. the discrete-event contention model used by the throughput bench,

and shows that the network hands out exactly the values 0..T-1 every time.

Run:  python examples/concurrent_counter.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    ContentionSimulator,
    ThreadedCounter,
    fetch_and_increment_values,
    l_network,
    run_tokens,
)


def main() -> None:
    net = l_network([3, 2, 2])  # width 12, balancers of width <= 3
    print(f"network: {net.name}, width={net.width}, depth={net.depth}, widest balancer={net.max_balancer_width}")
    print()

    # --- 1. Token simulation under an adversarial schedule -----------------
    rng = np.random.default_rng(0)
    arrivals = list(rng.integers(0, 6, size=net.width))
    total = sum(arrivals)
    result = run_tokens(net, arrivals, scheduler="straggler", seed=42)
    values = sorted(fetch_and_increment_values(result).values())
    print(f"token sim: {total} tokens under a straggler schedule")
    print(f"  values handed out: {values[:10]}... (exact range 0..{total-1}: {values == list(range(total))})")
    print()

    # --- 2. Real threads ----------------------------------------------------
    counter = ThreadedCounter(net)
    t0 = time.perf_counter()
    stats = counter.run_threads(n_threads=8, ops_per_thread=250)
    elapsed = time.perf_counter() - t0
    vals = sorted(stats.all_values())
    print(f"threads: 8 x 250 ops in {elapsed*1e3:.1f} ms")
    print(f"  every value 0..{stats.total_ops-1} issued exactly once: {vals == list(range(stats.total_ops))}")
    print()

    # --- 3. Contention model: why balancer width matters --------------------
    print("contention model (32 procs, 8 ops each):")
    print(f"  {'network':<16} {'depth':>5} {'max_bal':>7} {'latency':>9} {'throughput':>11}")
    for factors in ([12], [4, 3], [3, 2, 2], [2, 2, 3]):
        from repro import k_network

        candidate = k_network(factors)
        s = ContentionSimulator(candidate).run(n_procs=32, ops_per_proc=8)
        label = "x".join(map(str, factors))
        print(
            f"  K({label:<12}) {candidate.depth:>5} {candidate.max_balancer_width:>7} "
            f"{s.mean_latency:>9.2f} {s.throughput:>11.3f}"
        )
    print("\n  -> one wide balancer serializes everything; deep 2-balancer nets")
    print("     pay depth; intermediate factorizations balance the two costs.")


if __name__ == "__main__":
    main()
