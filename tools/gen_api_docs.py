"""Generate docs/api.md from the package's docstrings.

Run from the repository root:  python tools/gen_api_docs.py

Walks every ``repro`` submodule, collects the public API (``__all__``) and
the first paragraph of each docstring plus the signature, and writes a
compact markdown reference.  Committed output lives at ``docs/api.md``;
re-run after changing public signatures or docstrings.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import repro  # noqa: E402

SKIP = {"repro.__main__"}


def first_paragraph(doc: str | None) -> str:
    if not doc:
        return "*(no docstring)*"
    para = doc.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in para.splitlines())


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def document_module(name: str) -> list[str]:
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    if not exported:
        return []
    lines = [f"## `{name}`", ""]
    lines.append(first_paragraph(mod.__doc__))
    lines.append("")
    for item in exported:
        obj = getattr(mod, item, None)
        if obj is None or inspect.ismodule(obj):
            continue
        qual = f"{name}.{item}"
        if inspect.isclass(obj):
            lines.append(f"### class `{item}`")
            lines.append("")
            lines.append(first_paragraph(inspect.getdoc(obj)))
            lines.append("")
            for mname, meth in sorted(vars(obj).items()):
                if mname.startswith("_") or not callable(meth):
                    continue
                doc = first_paragraph(inspect.getdoc(meth))
                lines.append(f"* `{item}.{mname}{signature_of(meth)}` — {doc}")
            lines.append("")
        elif callable(obj):
            lines.append(f"### `{item}{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(inspect.getdoc(obj)))
            lines.append("")
        else:
            lines.append(f"### `{item}` (constant)")
            lines.append("")
    return lines


def main() -> None:
    out = [
        "# API reference",
        "",
        "Generated from docstrings by `tools/gen_api_docs.py`; regenerate",
        "after changing public signatures.  First paragraphs only — see the",
        "source docstrings for full details.  For the adversarial test",
        "tooling around this API (mutation kill-matrix, input fuzzing,",
        "chaos injection) see `testing.md`; for the evaluation engine",
        "(`repro.core.plan`), the bit-sliced 0-1 backend",
        "(`repro.core.bitplan`), the persistent build/plan cache",
        "(`repro.core.cache`), and parallel batch evaluation see",
        "`performance.md`; for base-network discovery and the best-known",
        "registry (`repro.search`) see `search.md`.",
        "",
    ]
    names = ["repro"]
    for mod_info in pkgutil.walk_packages(repro.__path__, "repro."):
        if mod_info.name not in SKIP and not mod_info.ispkg:
            names.append(mod_info.name)
        elif mod_info.ispkg:
            names.append(mod_info.name)
    for name in sorted(set(names)):
        if name in SKIP:
            continue
        out.extend(document_module(name))
    path = pathlib.Path(__file__).resolve().parents[1] / "docs" / "api.md"
    path.write_text("\n".join(out) + "\n")
    print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
