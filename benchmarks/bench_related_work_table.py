"""E12 — the related-work comparison (paper §2).

Programmatic version of the paper's discussion: at power-of-two widths the
classic 2-balancer networks (bitonic, periodic) exist and bitonic is
shallower than binary-factored K by a constant factor; at arbitrary widths
only K/L apply.  Also quantifies the constant-factor gap the paper concedes
in §6.
"""

from __future__ import annotations

import pytest

from repro.analysis import comparison_table, prime_factors
from repro.baselines import bitonic_depth, bitonic_network, periodic_network
from repro.networks import k_network, l_network
from repro.networks.depth_formulas import k_depth


def test_comparison_table(save_table):
    rows = comparison_table([16, 30, 60, 64, 128, 210, 256])
    save_table("E12_related_work", rows)
    # Arbitrary widths covered only by the paper's constructions.
    w30 = [r for r in rows if r["width"] == 30]
    assert w30 and all("Bitonic" not in r["construction"] for r in w30)


def test_bitonic_shallower_by_constant_factor(save_table):
    """§6: 'The bitonic network, however, has smaller depth by a constant
    factor.'  Measure the ratio K(2^k binary) / Bitonic(2^k)."""
    rows = []
    for k in range(2, 10):
        w = 2 ** k
        kd = k_depth(k)  # K with binary factorization: n = k
        bd = bitonic_depth(w)  # k(k+1)/2
        rows.append({"width": w, "K_binary_depth": kd, "bitonic_depth": bd, "ratio": round(kd / bd, 3)})
        if k >= 4:
            # 1.5n² vs n²/2: bitonic wins by a constant factor approaching 3.
            # (At k <= 3, K's width-4 base balancers actually make it
            # shallower — the gap is a 2-balancer-regime statement.)
            assert kd > bd
            assert kd / bd < 3.0
    save_table("E12b_constant_factor_gap", rows)


def test_periodic_deeper_than_bitonic():
    for w in (8, 16, 32):
        assert periodic_network(w).depth > bitonic_network(w).depth


def test_size_comparison(save_table):
    """Balancer-count comparison at width 64."""
    rows = []
    for net in (
        k_network(prime_factors(64)),
        k_network([4, 4, 4]),
        l_network(prime_factors(64)),
        bitonic_network(64),
        periodic_network(64),
    ):
        rows.append(
            {
                "construction": net.name,
                "depth": net.depth,
                "size": net.size,
                "max_balancer": net.max_balancer_width,
            }
        )
    save_table("E12c_size_at_64", rows)


def test_bench_comparison_table(benchmark):
    benchmark(lambda: comparison_table([16, 60]))
