"""E1 — Proposition 1: depth(C(p0..pn-1)) = (n-1)d + (n²/2 - 3n/2 + 1)·depth(S).

Reproduces the proposition's depth accounting for the generic construction
with the single-balancer base (d = 1) under both optimized staircase
variants, sweeping the factorization length n.
"""

from __future__ import annotations

import pytest

from repro.networks import counting_network
from repro.networks.depth_formulas import counting_depth, staircase_depth

SWEEP = [
    [2, 2],
    [3, 2],
    [2, 2, 2],
    [3, 2, 2],
    [2, 2, 2, 2],
    [3, 2, 2, 2],
    [2, 2, 2, 2, 2],
    [2, 2, 2, 2, 2, 2],
]


def test_proposition_1_table(save_table):
    rows = []
    for variant in ("opt_rescan", "opt_bitonic"):
        ds = staircase_depth(variant, d=1)
        for factors in SWEEP:
            n = len(factors)
            net = counting_network(factors, variant=variant)
            predicted = counting_depth(n, d=1, depth_s=ds)
            rows.append(
                {
                    "variant": variant,
                    "factors": "x".join(map(str, factors)),
                    "n": n,
                    "width": net.width,
                    "measured_depth": net.depth,
                    "prop1_predicted": predicted,
                    "match": "exact" if net.depth == predicted else ("under" if net.depth < predicted else "OVER"),
                }
            )
            # The formula is exact for opt_rescan and an upper bound in
            # general (degenerate blocks can shave layers).
            assert net.depth <= predicted, (variant, factors)
            if variant == "opt_rescan":
                assert net.depth == predicted, (variant, factors)
    save_table("E1_proposition1_depth_c", rows)


@pytest.mark.parametrize("factors", [[2, 2, 2, 2], [3, 2, 2, 2]])
def test_bench_build_counting(benchmark, factors):
    benchmark(lambda: counting_network(factors))
