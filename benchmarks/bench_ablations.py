"""E18 — ablations over the design choices DESIGN.md calls out.

1. **Staircase variant inside the generic C**: the paper chooses
   `opt_rescan` for K and `opt_bitonic` for L; this ablation builds the
   same factorizations under all four variants and quantifies the depth
   and size cost of the non-optimized repairs.
2. **Base network inside the generic C**: single balancer (K) vs R(p, q)
   (L) — the depth/width trade the paper's §5 is about.
3. **Factor order**: depth is order-invariant (paper §1) but *size* is
   not; the ablation measures the spread so users can pick cheap orders.
"""

from __future__ import annotations

import itertools
from math import prod

import pytest

from repro.networks import STAIRCASE_VARIANTS, counting_network, k_network, l_network
from repro.networks.counting import single_balancer_base
from repro.networks.r_network import r_base
from repro.verify import find_counting_violation


def test_ablation_staircase_variant(save_table):
    rows = []
    factors = [2, 2, 2, 2]
    for variant in STAIRCASE_VARIANTS:
        net = counting_network(factors, variant=variant)
        assert find_counting_violation(net) is None, variant
        rows.append(
            {
                "variant": variant,
                "factors": "x".join(map(str, factors)),
                "depth": net.depth,
                "size": net.size,
                "max_balancer": net.max_balancer_width,
            }
        )
    save_table("E18_ablation_staircase_variant", rows)
    by = {r["variant"]: r for r in rows}
    # opt_rescan minimizes depth with the 1-balancer base (2d+1 = 3 per S).
    assert by["opt_rescan"]["depth"] <= min(r["depth"] for r in rows)
    # The small variant pays size for its narrow balancers.
    assert by["small"]["size"] >= by["basic"]["size"]


def test_ablation_base_network(save_table):
    """K's base (one balancer) vs L's base (R) at fixed factors."""
    rows = []
    for factors in ([3, 3], [2, 3, 4], [3, 3, 3]):
        for base_name, base, variant in (
            ("single-balancer (K)", single_balancer_base, "opt_rescan"),
            ("R(p,q) (L)", r_base, "opt_bitonic"),
        ):
            net = counting_network(factors, base=base, variant=variant)
            rows.append(
                {
                    "factors": "x".join(map(str, factors)),
                    "base": base_name,
                    "depth": net.depth,
                    "size": net.size,
                    "max_balancer": net.max_balancer_width,
                }
            )
    save_table("E18_ablation_base", rows)
    # The R base always trades depth/size for narrow balancers.
    for factors in ("3x3", "2x3x4", "3x3x3"):
        k_row = next(r for r in rows if r["factors"] == factors and "K" in r["base"])
        l_row = next(r for r in rows if r["factors"] == factors and "L" in r["base"])
        assert l_row["max_balancer"] <= k_row["max_balancer"]
        assert l_row["depth"] >= k_row["depth"]


def test_ablation_factor_order(save_table):
    """Depth is invariant under factor permutation; size varies —
    measure the spread."""
    factors = [2, 3, 4]
    rows = []
    sizes = []
    for perm in sorted(set(itertools.permutations(factors))):
        net = k_network(list(perm))
        assert net.width == prod(factors)
        sizes.append(net.size)
        rows.append(
            {
                "order": "x".join(map(str, perm)),
                "depth": net.depth,
                "size": net.size,
                "total_fanin": sum(b.width for b in net.balancers),
            }
        )
    save_table("E18_ablation_factor_order", rows)
    assert len({r["depth"] for r in rows}) == 1  # paper §1: depth identical
    assert max(sizes) > min(sizes)  # but cost is not


def test_bench_build_all_variants(benchmark):
    def build_all():
        return [counting_network([2, 2, 2, 2], variant=v) for v in STAIRCASE_VARIANTS]

    benchmark(build_all)
