"""E5 — §5.3: depth(R(p, q)) <= 16 and balancer width <= max(p, q).

Sweeps every 2 <= p, q <= 24 (529 networks), reporting the depth
distribution and asserting both §5.3 guarantees; also spot-verifies the
counting property across the diagonal.
"""

from __future__ import annotations

import pytest

from repro.networks import r_network
from repro.networks.depth_formulas import R_DEPTH_BOUND
from repro.verify import find_counting_violation


def test_r_bounds_full_sweep(save_table):
    depth_hist: dict[int, int] = {}
    worst = []
    for p in range(2, 25):
        for q in range(2, 25):
            net = r_network(p, q)
            assert net.depth <= R_DEPTH_BOUND, (p, q)
            assert net.max_balancer_width <= max(p, q), (p, q)
            depth_hist[net.depth] = depth_hist.get(net.depth, 0) + 1
            if net.depth == R_DEPTH_BOUND:
                worst.append((p, q))
    rows = [{"depth": d, "count_of_(p,q)_pairs": c} for d, c in sorted(depth_hist.items())]
    save_table("E5_r_depth_distribution", rows)
    # The bound is attained (it is tight somewhere) but never exceeded.
    assert worst, "expected some (p,q) to reach the depth-16 bound"


@pytest.mark.parametrize("p,q", [(5, 5), (7, 7), (11, 11), (13, 12)])
def test_r_counts(p, q):
    assert find_counting_violation(r_network(p, q)) is None


@pytest.mark.parametrize("p,q", [(8, 8), (16, 16), (24, 24)])
def test_bench_build_r(benchmark, p, q):
    benchmark(lambda: r_network(p, q))
