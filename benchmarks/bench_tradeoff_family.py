"""E11 — the factorization family (paper §1, §6): one network per
factorization of w, trading depth against balancer width.

Builds the complete K family for several widths (including non-powers of
two), saves the trade-off tables and Pareto frontiers, and asserts the
paper's qualitative claims: depth grows with the factor count n while the
maximum balancer width shrinks, and depth depends only on n.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_family, pareto_frontier
from repro.networks.depth_formulas import k_depth

WIDTHS = [60, 64, 210, 720]


@pytest.mark.parametrize("w", WIDTHS)
def test_family_table(save_table, w):
    fam = build_family(w, "K", max_members=40)
    rows = [e.as_dict() for e in fam]
    save_table(f"E11_family_w{w}", rows)

    by_n: dict[int, list] = {}
    for e in fam:
        by_n.setdefault(e.n, []).append(e)
        # Depth depends only on n (paper §1 parenthetical).
        assert e.stats.depth == (k_depth(e.n) if e.n >= 2 else 1)
    ns = sorted(by_n)
    # Depth increases with n (n = 1 and n = 2 are both a single balancer,
    # so the first step is non-strict; beyond that it is strict).
    for a, b in zip(ns, ns[1:]):
        hi_a = max(x.stats.depth for x in by_n[a])
        lo_b = min(x.stats.depth for x in by_n[b])
        assert hi_a < lo_b if b >= 3 else hi_a <= lo_b
    # ... while the best-available balancer width shrinks.
    min_bal = [min(x.stats.max_balancer_width for x in by_n[n]) for n in ns]
    assert all(a >= b for a, b in zip(min_bal, min_bal[1:]))


def test_pareto_frontier_nontrivial(save_table):
    fam = build_family(64, "K")
    front = pareto_frontier(fam)
    rows = [e.as_dict() for e in front]
    save_table("E11_frontier_w64", rows)
    # The frontier contains both extremes and something in between.
    ns = {e.n for e in front}
    assert min(ns) <= 2 and max(ns) == 6
    assert any(2 < n < 6 for n in ns)


def test_l_family_width_bound(save_table):
    """The L family realizes the extreme end: balancers no wider than the
    largest factor, at every factorization."""
    rows = []
    for e in build_family(60, "L", max_factors=4):
        assert e.stats.max_balancer_width <= max(e.factors)
        rows.append(e.as_dict())
    save_table("E11_l_family_w60", rows)


def test_bench_build_family(benchmark):
    benchmark(lambda: build_family(64, "K"))
