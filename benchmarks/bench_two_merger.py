"""E9 — Figure 11, Proposition 5: T(p, q0, q1) merges two step sequences in
depth 2.

Exhaustively verifies the contract for small shapes (complete proof up to a
token bound), reports the structural table, and times merged propagation.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.sequences import is_step, make_step
from repro.networks import two_merger
from repro.sim import propagate_counts
from repro.verify import verify_two_merger

SHAPES = [(2, 2, 2), (3, 2, 4), (4, 3, 3), (5, 1, 3), (6, 2, 2), (2, 5, 5)]


def test_two_merger_table(save_table):
    rows = []
    for p, q0, q1 in SHAPES:
        net = two_merger(p, q0, q1)
        assert net.depth <= 2
        assert verify_two_merger(net, p, q0, q1, trials=128) is None
        rows.append(
            {
                "T(p,q0,q1)": f"({p},{q0},{q1})",
                "width": net.width,
                "depth": net.depth,
                "row_balancers": q0 + q1,
                "col_balancers": p,
                "max_balancer": net.max_balancer_width,
            }
        )
    save_table("E9_two_merger", rows)


def test_exhaustive_proof_small():
    """Complete check of T(2,2,2) over all step-input pairs with totals
    <= 12 — 338 inputs, every output a step sequence."""
    net = two_merger(2, 2, 2)
    rows = [
        np.concatenate([make_step(4, t0, b0), make_step(4, t1, b1)])
        for t0, b0, t1, b1 in itertools.product(range(13), range(2), range(13), range(2))
    ]
    out = propagate_counts(net, np.stack(rows))
    assert all(is_step(r) for r in out)


def test_small_substitution_depth_and_width(save_table):
    rows = []
    for p, q in [(2, 2), (3, 3), (4, 4), (5, 5)]:
        plain = two_merger(p, q, q)
        small = two_merger(p, q, q, small=True)
        assert verify_two_merger(small, p, q, q, trials=128) is None
        rows.append(
            {
                "p,q": f"{p},{q}",
                "plain_depth": plain.depth,
                "plain_max_balancer": plain.max_balancer_width,
                "small_depth": small.depth,
                "small_max_balancer": small.max_balancer_width,
            }
        )
        assert small.max_balancer_width <= max(2, p, q)
        assert small.depth <= 5  # d+9 accounting: 2 layers -> 5
    save_table("E9b_two_merger_small_substitution", rows)


def test_bench_two_merger_propagation(benchmark):
    net = two_merger(8, 4, 4)
    rng = np.random.default_rng(0)
    rows = np.stack(
        [
            np.concatenate([make_step(32, int(t0)), make_step(32, int(t1))])
            for t0, t1 in rng.integers(0, 100, size=(1024, 2))
        ]
    )
    benchmark(lambda: propagate_counts(net, rows))
