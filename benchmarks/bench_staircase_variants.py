"""E8 — Figures 9/10, §4.3/§4.3.1: the four staircase-merger variants.

Reproduces the depth accounting (d+6 / d+9 / 2d+1 / d+3 with d = 1) and the
balancer-width consequences of each variant, verifying the contract for
every variant on the same (r, p, q) sweep.  The timed kernel is batch
propagation through each variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks import STAIRCASE_VARIANTS, staircase_merger
from repro.networks.depth_formulas import staircase_depth
from repro.verify import staircase_inputs, verify_staircase_merger
from repro.sim import propagate_counts

SHAPES = [(2, 2, 2), (3, 2, 3), (4, 3, 2), (4, 3, 3), (6, 2, 2)]


def test_staircase_variant_table(save_table):
    rows = []
    for variant in STAIRCASE_VARIANTS:
        for r, p, q in SHAPES:
            net = staircase_merger(r, p, q, variant=variant)
            bound = staircase_depth(variant, d=1)
            assert net.depth <= bound, (variant, r, p, q)
            assert verify_staircase_merger(net, r, p, q, trials=64) is None
            rows.append(
                {
                    "variant": variant,
                    "r,p,q": f"{r},{p},{q}",
                    "measured_depth": net.depth,
                    "formula_bound": bound,
                    "size": net.size,
                    "max_balancer": net.max_balancer_width,
                }
            )
    save_table("E8_staircase_variants", rows)


def test_optimized_variants_are_shallower():
    """§4.3.1's point: the optimizations beat the basic two-merger repair."""
    for r, p, q in SHAPES:
        basic = staircase_merger(r, p, q, variant="basic").depth
        rescan = staircase_merger(r, p, q, variant="opt_rescan").depth
        bitonic = staircase_merger(r, p, q, variant="opt_bitonic").depth
        assert rescan <= basic and bitonic <= basic, (r, p, q)


def test_small_variant_shrinks_balancers():
    """'small' trades +3 depth for balancers capped at max(2, p, q)."""
    r, p, q = 4, 3, 3
    basic = staircase_merger(r, p, q, variant="basic")
    small = staircase_merger(r, p, q, variant="small")
    assert small.max_balancer_width < basic.max_balancer_width or basic.max_balancer_width <= max(p, q, p * q)
    non_base = [b.width for b in small.balancers if b.width != p * q]
    assert max(non_base) <= max(2, p, q)


@pytest.mark.parametrize("variant", STAIRCASE_VARIANTS)
def test_bench_staircase_propagation(benchmark, variant):
    r, p, q = 4, 3, 3
    net = staircase_merger(r, p, q, variant=variant)
    rng = np.random.default_rng(0)
    batch = staircase_inputs(r, p, q, 512, rng)
    benchmark(lambda: propagate_counts(net, batch))
