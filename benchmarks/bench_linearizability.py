"""E16 — §6's open question: counting networks vs. linearizability.

The paper closes by asking what timing constraints make its networks
linearizable.  The known answer (Herlihy–Shavit–Waarts, the paper's refs
[13-15]) is that counting networks are NOT linearizable under free
asynchrony: a stalled token lets a later, non-overlapping operation
undercut an earlier one.  The harness (a) confirms sequential executions
are linearizable on every construction, (b) constructs an explicit
violating schedule for each, and (c) times the schedule search.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_history, find_nonlinearizable_execution, run_sequential_history
from repro.baselines import bitonic_network
from repro.core import single_balancer_network
from repro.networks import k_network, l_network

CASES = [
    ("balancer(2)", lambda: single_balancer_network(2)),
    ("balancer(8)", lambda: single_balancer_network(8)),
    ("K(2,2,2)", lambda: k_network([2, 2, 2])),
    ("K(4,4)", lambda: k_network([4, 4])),
    ("K(5,3,2)", lambda: k_network([5, 3, 2])),
    ("L(2,2)", lambda: l_network([2, 2])),
    ("L(3,2)", lambda: l_network([3, 2])),
    ("Bitonic[8]", lambda: bitonic_network(8)),
]


def test_linearizability_table(save_table):
    rows = []
    for name, make in CASES:
        net = make()
        seq_ok = check_history(run_sequential_history(net, 2 * net.width)) is None
        found = find_nonlinearizable_execution(net)
        assert seq_ok, name
        assert found is not None, name
        v, ops = found
        rows.append(
            {
                "network": name,
                "width": net.width,
                "depth": net.depth,
                "sequential_linearizable": seq_ok,
                "async_linearizable": False,
                "witness": f"v{v.first.value}@{v.first.end} before v{v.second.value}@{v.second.start}",
            }
        )
    save_table("E16_linearizability", rows)


def test_violations_preserve_counting():
    """Non-linearizable executions still hand out an exact value range —
    the failure is real-time ordering only."""
    for name, make in CASES[:4]:
        found = find_nonlinearizable_execution(make())
        assert found is not None
        _, ops = found
        assert sorted(o.value for o in ops) == list(range(len(ops))), name


def test_waiting_discipline_restores_linearizability(save_table):
    """The positive side of §6: add waiting (Herlihy-Shavit-Waarts) and
    every previously violating execution becomes linearizable."""
    from repro.sim import linearize_history

    rows = []
    for name, make in CASES:
        net = make()
        found = find_nonlinearizable_execution(net)
        assert found is not None
        _, ops = found
        fixed = linearize_history(ops)
        ok = check_history(fixed) is None
        extra_wait = max(f.end - o.end for f, o in zip(
            sorted(fixed, key=lambda x: x.token_id), sorted(ops, key=lambda x: x.token_id)))
        rows.append(
            {
                "network": name,
                "violating_schedule_fixed": ok,
                "max_extra_wait_steps": int(extra_wait),
            }
        )
        assert ok, name
    save_table("E16b_waiting_fix", rows)


def test_bench_violation_search(benchmark):
    net = k_network([2, 2, 2])
    benchmark(lambda: find_nonlinearizable_execution(net))


def test_bench_sequential_history(benchmark):
    net = k_network([4, 4])
    benchmark(lambda: run_sequential_history(net, 64))
