"""E14 — correctness at scale: counting/sorting verification across the
constructed networks and baselines.

This is the harness equivalent of the paper's correctness propositions:
every construction passes, every known non-counting network is caught, and
the timed kernels measure verification cost (the practical price of the
testing methodology documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import bitonic_network, bubble_network, odd_even_network, periodic_network
from repro.networks import k_network, l_network, r_network
from repro.verify import find_counting_violation, find_sorting_violation


def test_verification_matrix(save_table):
    cases = [
        ("K(2,2,2,2)", k_network([2, 2, 2, 2]), True),
        ("K(5,3,2)", k_network([5, 3, 2]), True),
        ("L(3,2,2)", l_network([3, 2, 2]), True),
        ("L(4,3)", l_network([4, 3]), True),
        ("R(6,6)", r_network(6, 6), True),
        ("R(7,5)", r_network(7, 5), True),
        ("Bitonic[16]", bitonic_network(16), True),
        ("Periodic[16]", periodic_network(16), True),
        ("OddEven[16]", odd_even_network(16), False),
        ("Bubble[6]", bubble_network(6), False),
    ]
    rows = []
    for name, net, expect_counts in cases:
        v = find_counting_violation(net)
        rows.append(
            {
                "network": name,
                "width": net.width,
                "depth": net.depth,
                "counts": v is None,
                "expected": expect_counts,
            }
        )
        assert (v is None) == expect_counts, name
    save_table("E14_verification_matrix", rows)


def test_zero_one_proofs(save_table):
    """Exhaustive 0-1 sorting proofs for every network of width <= 16."""
    rows = []
    for name, net in [
        ("K(2,2,2)", k_network([2, 2, 2])),
        ("K(2,2,2,2)", k_network([2, 2, 2, 2])),
        ("L(2,2,2)", l_network([2, 2, 2])),
        ("R(4,4)", r_network(4, 4)),
        ("Bitonic[16]", bitonic_network(16)),
    ]:
        ok = find_sorting_violation(net) is None
        rows.append({"network": name, "width": net.width, "zero_one_inputs": 2 ** net.width, "sorts": ok})
        assert ok, name
    save_table("E14b_zero_one_proofs", rows)


def test_bench_counting_search_k(benchmark):
    net = k_network([4, 4, 4])
    benchmark(lambda: find_counting_violation(net, random_batches=2))


def test_bench_zero_one_proof(benchmark):
    net = k_network([2, 2, 2, 2])
    benchmark(lambda: find_sorting_violation(net))


def test_exhaustive_proof_k8_up_to_four(save_table):
    """A genuine (bounded) proof: K(2,2,2) has the step output for EVERY
    input with at most 4 tokens per wire — 5^8 = 390,625 vectors, checked
    in vectorized chunks."""
    from repro.verify import exhaustive_counts, step_mask

    from repro.sim import propagate_counts

    net = k_network([2, 2, 2])
    checked = 0
    for batch in exhaustive_counts(net.width, 4, batch=16384):
        outs = propagate_counts(net, batch)
        assert bool(step_mask(outs).all())
        checked += batch.shape[0]
    assert checked == 5 ** 8
    save_table(
        "E14c_exhaustive_proof",
        [{"network": "K(2,2,2)", "bound_per_wire": 4, "inputs_checked": checked, "all_step": True}],
    )
