"""E7 — Figure 3: the bubble-sort network is a sorting network but not a
counting network.

For widths 3..8 the harness (a) proves the sorting property by the 0-1
principle, (b) finds a concrete violating token distribution, and (c)
replays that distribution through the asynchronous token simulator.  The
timed kernel is the violation search itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import bubble_network
from repro.core.sequences import is_step
from repro.sim import run_tokens
from repro.verify import find_counting_violation, find_sorting_violation


def test_figure3_table(save_table):
    rows = []
    for w in range(3, 9):
        net = bubble_network(w)
        sorts = find_sorting_violation(net) is None
        v = find_counting_violation(net)
        assert sorts, w
        assert v is not None, w
        replay = run_tokens(net, list(v.input_counts))
        assert not is_step(replay.output_counts)
        rows.append(
            {
                "width": w,
                "depth": net.depth,
                "sorts_(0-1_proof)": sorts,
                "counts": False,
                "violating_input": str(v.input_counts.tolist()),
                "non_step_output": str(v.output_counts.tolist()),
            }
        )
    save_table("E7_fig3_bubble_counterexample", rows)


def test_odd_even_also_fails(save_table):
    """Bonus: Batcher odd-even — a textbook sorting network — fails too,
    while bitonic succeeds, matching the paper's framing that counting is
    strictly stronger."""
    from repro.baselines import bitonic_network, odd_even_network

    rows = []
    for w in (4, 8, 16):
        oe, bi = odd_even_network(w), bitonic_network(w)
        oe_v = find_counting_violation(oe)
        bi_v = find_counting_violation(bi)
        rows.append(
            {
                "width": w,
                "odd_even_counts": oe_v is None,
                "bitonic_counts": bi_v is None,
            }
        )
        assert oe_v is not None and bi_v is None
    save_table("E7b_sorting_vs_counting", rows)


def test_bench_violation_search(benchmark):
    net = bubble_network(6)
    benchmark(lambda: find_counting_violation(net))
