"""E4 — Theorem 7: depth(L(p0..pn-1)) <= 9.5n² - 12.5n + 3 with balancers of
width at most max(p_i) — the paper's headline construction.

The table reports both guarantees next to the measured values; the timed
kernel is L construction (the recursive build is the expensive part, since
every base becomes a full R(p, q)).
"""

from __future__ import annotations

import pytest

from repro.networks import l_network
from repro.networks.depth_formulas import l_depth_bound
from repro.verify import find_counting_violation

SWEEP = [
    [2, 2],
    [3, 3],
    [5, 4],
    [2, 2, 2],
    [3, 3, 3],
    [5, 3, 2],
    [4, 4, 4],
    [2, 2, 2, 2],
    [3, 2, 2, 2],
    [5, 3, 2, 2],
]


def test_theorem_7_table(save_table):
    rows = []
    for factors in SWEEP:
        n = len(factors)
        net = l_network(factors)
        rows.append(
            {
                "factors": "x".join(map(str, factors)),
                "n": n,
                "width": net.width,
                "measured_depth": net.depth,
                "thm7_bound": l_depth_bound(n),
                "max_balancer": net.max_balancer_width,
                "max_pi": max(factors),
                "size": net.size,
            }
        )
        assert net.depth <= l_depth_bound(n), factors
        assert net.max_balancer_width <= max(factors), factors
    save_table("E4_theorem7_depth_l", rows)


def test_l_counts_on_sample():
    assert find_counting_violation(l_network([5, 3, 2])) is None


@pytest.mark.parametrize("factors", [[3, 3, 3], [2, 2, 2, 2]])
def test_bench_build_l(benchmark, factors):
    benchmark(lambda: l_network(factors))
