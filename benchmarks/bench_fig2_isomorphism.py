"""E6 — Figures 1/2: counting networks are isomorphic to sorting networks.

The paper's running example combines components of sizes 2, 3 and 5.  We
build K(5,3,2) (width 30) and its L sibling and demonstrate both readings
on the same wiring; the timed kernels are the two evaluation modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks import k_network, l_network
from repro.sim import evaluate_comparators, propagate_counts
from repro.verify import find_counting_violation, find_sorting_violation


def test_isomorphism_table(save_table):
    rows = []
    for net in (k_network([5, 3, 2]), l_network([5, 3, 2])):
        counting_ok = find_counting_violation(net) is None
        sorting_ok = find_sorting_violation(net) is None
        rows.append(
            {
                "network": net.name,
                "width": net.width,
                "depth": net.depth,
                "balancer_widths": ",".join(map(str, sorted(net.balancer_width_histogram()))),
                "counts": counting_ok,
                "sorts": sorting_ok,
            }
        )
        assert counting_ok and sorting_ok, net.name
    save_table("E6_fig2_isomorphism", rows)


def test_same_wiring_two_semantics(rng=np.random.default_rng(0)):
    """One network object serves both readings with consistent structure."""
    net = k_network([5, 3, 2])
    tokens = rng.integers(0, 8, size=30)
    counts = propagate_counts(net, tokens)
    assert int(counts.sum()) == int(tokens.sum())
    values = rng.permutation(30)
    assert list(evaluate_comparators(net, values)) == sorted(values, reverse=True)


def test_bench_counting_mode(benchmark):
    net = k_network([5, 3, 2])
    rng = np.random.default_rng(1)
    batch = rng.integers(0, 40, size=(2048, 30))
    benchmark(lambda: propagate_counts(net, batch))


def test_bench_sorting_mode(benchmark):
    net = k_network([5, 3, 2])
    rng = np.random.default_rng(1)
    batch = rng.integers(0, 10_000, size=(2048, 30))
    benchmark(lambda: evaluate_comparators(net, batch))
