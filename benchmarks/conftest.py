"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one experiment from DESIGN.md §3 (one
table or figure of the paper).  Besides timing a representative kernel with
pytest-benchmark, each module *prints and saves* the reproduced table under
``benchmarks/results/`` so EXPERIMENTS.md can quote real measured rows, and
*asserts* the paper's qualitative claims (who wins, which bound holds).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """Save (and echo) a reproduced table: ``save_table(name, rows)``."""

    def _save(name: str, rows: list[dict], columns: list[str] | None = None) -> str:
        from repro.analysis import format_table

        text = format_table(rows, columns)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n")
        return text

    return _save
