"""E10 — Figure 12: the bitonic-converter D(p, q) fixes a bitonic sequence
in depth 2.

Exhaustive contract proof for small shapes (every rotation of every bounded
step sequence), structural table, and a timed propagation kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequences import is_step, make_step
from repro.networks import bitonic_converter
from repro.sim import propagate_counts
from repro.verify import verify_bitonic_converter

SHAPES = [(2, 2), (2, 3), (3, 3), (4, 3), (3, 5), (5, 5), (4, 6)]


def test_bitonic_converter_table(save_table):
    rows = []
    for p, q in SHAPES:
        net = bitonic_converter(p, q)
        assert net.depth <= 2
        assert verify_bitonic_converter(net, trials=256) is None
        rows.append(
            {
                "D(p,q)": f"({p},{q})",
                "width": net.width,
                "depth": net.depth,
                "size": net.size,
                "max_balancer": net.max_balancer_width,
            }
        )
    save_table("E10_bitonic_converter", rows)


def test_exhaustive_bitonic_proof():
    """All rotations of all step sequences with totals up to 3*w for
    D(3, 4): the complete bitonic input space up to that bound."""
    p, q = 3, 4
    w = p * q
    net = bitonic_converter(p, q)
    rows = []
    for total in range(3 * w + 1):
        base = make_step(w, total)
        rows.extend(np.roll(base, s) for s in range(w))
    out = propagate_counts(net, np.stack(rows))
    assert all(is_step(r) for r in out)


def test_bench_bitonic_converter(benchmark):
    net = bitonic_converter(8, 8)
    rng = np.random.default_rng(0)
    rows = np.stack([np.roll(make_step(64, int(t)), int(s)) for t, s in rng.integers(0, 64, size=(2048, 2))])
    benchmark(lambda: propagate_counts(net, rows))
