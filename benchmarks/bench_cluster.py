"""E22 — horizontal scaling: the sharded cluster vs one serving process.

The paper's whole point is that counting scales by *adding width* instead
of sharing one hot location; :mod:`repro.cluster` applies the same move at
process granularity (shard ``i`` of ``S`` dispenses the residue class
``i + S·k``).  This bench sweeps 1/2/4 shards behind the splice-mode
router under multi-process closed-loop load — weak scaling, with a fixed
client pool per shard — and verifies both the performance claim (the
4-shard cluster at least doubles the 1-shard throughput through the
identical TCP + WAL + router path) and the correctness claim (the union
of every client's values is exactly-once across the whole sweep).

The measured rows are merged into ``BENCH_serve_scale.json`` as
``cluster_rows`` alongside the existing single-process ``rows``;
``check_budgets.py`` gates the 4-shard speedup and exactly-once flags.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import tempfile

from repro.cluster import Cluster, ClusterConfig
from repro.obs import write_bench_json
from repro.serve import run_multiprocess_tcp

CLIENTS_PER_PROC = 8
OPS = 40


def _cluster_point(shards: int) -> dict:
    """One weak-scaling point: ``shards`` workers, one loadgen proc each."""

    async def main() -> dict:
        with tempfile.TemporaryDirectory(prefix="bench-cluster-") as wal_dir:
            cfg = ClusterConfig(
                shards=shards,
                wal_dir=wal_dir,
                factors=(2, 3, 2),
                mode="splice",
                max_batch=128,
                # A deliberately dominant linger: every point pays the same
                # per-shard coalescing window, so the sweep measures how many
                # such windows run side by side (weak scaling), not how fast
                # one CPU can turn the crank on a single batcher.
                max_delay=0.005,
                fsync=False,  # scaling measurement; chaos tests own durability
                supervise=False,
            )
            async with Cluster(cfg) as cluster:
                host, port = cluster.address
                report = await asyncio.to_thread(
                    run_multiprocess_tcp,
                    host,
                    port,
                    procs=shards,
                    clients=CLIENTS_PER_PROC,
                    ops=OPS,
                    seed=shards,
                )
        audit = report.audit()
        return {
            "shards": shards,
            "procs": shards,
            "clients": report.clients,
            "requests": report.requests,
            "throughput": round(report.throughput, 1),
            "p50_ms": round(report.latency_percentile(50) * 1e3, 3),
            "p99_ms": round(report.latency_percentile(99) * 1e3, 3),
            "stride": report.stride,
            "duplicates": audit["duplicates"],
            "gap_total": audit["gap_total"],
            "exactly_once": audit["exactly_once"],
        }

    return asyncio.run(main())


def _existing_rows() -> list[dict]:
    """Preserve the single-process sweep already stamped by bench_serve."""
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve_scale.json"
    if not path.exists():
        return []
    try:
        return json.loads(path.read_text()).get("rows", [])
    except (ValueError, OSError):
        return []


def test_cluster_weak_scaling(save_table):
    cluster_rows = [_cluster_point(shards) for shards in (1, 2, 4)]
    base = cluster_rows[0]["throughput"]
    for row in cluster_rows:
        row["speedup_vs_1shard"] = round(row["throughput"] / base, 2)

    save_table("E22_cluster_scaling", cluster_rows)
    write_bench_json(
        "serve_scale",
        {"rows": _existing_rows(), "cluster_rows": cluster_rows},
        family="K",
    )

    # Exactly-once across every point: values distinct, residue classes
    # gap-free (nothing was killed, so the gap budget is zero).
    for row in cluster_rows:
        assert row["exactly_once"], row
        assert row["stride"] == row["shards"]

    # The acceptance floor: 4 shards at least double the 1-shard cluster
    # throughput through the same router/WAL/TCP path.
    assert cluster_rows[-1]["speedup_vs_1shard"] >= 2.0, cluster_rows
