"""E21 — the serving layer under closed-loop load.

The paper's contention story (§1, after Felten, LaMarca and Ladner [9]) is
about *concurrent* fetch-and-increment traffic; ``repro.serve`` is the
repo's real concurrent substrate.  This bench sweeps closed-loop client
counts against an in-process :class:`CountingService` and shows the
batching mechanism doing its job: mean batch size grows with offered
concurrency (requests coalesce into one vectorized network pass), while
exactly-once issuance holds at every point.
"""

from __future__ import annotations

import asyncio

from repro.networks import k_network
from repro.obs import write_bench_json
from repro.serve import CountingService, LoadGenerator


def _run_point(clients: int, ops: int) -> dict:
    async def main() -> dict:
        async with CountingService(k_network([2, 3, 2]), max_batch=128) as svc:
            gen = LoadGenerator(mode="closed", clients=clients, ops=ops, seed=clients)
            report = await gen.run_service(svc)
            s = report.summary()
            return {
                "clients": clients,
                "requests": s["requests"],
                "throughput": round(report.throughput, 1),
                "p50_ms": round(report.latency_percentile(50) * 1e3, 3),
                "p99_ms": round(report.latency_percentile(99) * 1e3, 3),
                "mean_batch": round(s["mean_batch_size"], 2),
                "exactly_once": s["exactly_once"],
            }

    return asyncio.run(main())


def test_serve_closed_loop_scaling(save_table):
    rows = [_run_point(clients, ops) for clients, ops in ((1, 40), (4, 30), (16, 20), (64, 10))]
    save_table("E21_serve_closed_loop", rows)
    write_bench_json("serve_scale", {"rows": rows}, family="K")

    # Exactly-once at every concurrency level.
    assert all(r["exactly_once"] for r in rows)
    # A lone closed-loop client cannot batch...
    assert rows[0]["mean_batch"] == 1.0
    # ...but concurrency must coalesce: visibly multi-request batches.
    assert rows[-1]["mean_batch"] > 4.0
    assert rows[-1]["mean_batch"] > rows[0]["mean_batch"]


def test_issue_batch_kernel(benchmark):
    """Time the vectorized issuance kernel itself (one 256-token batch)."""
    svc = CountingService(k_network([4, 4, 4]), validate=True)
    benchmark(svc.issue_batch, 256)
    assert svc.issued > 0
