"""E3 — Proposition 6: depth(K(p0..pn-1)) = 1.5n² - 3.5n + 2.

The K family's depth depends only on n, never on the factor values — the
table sweeps both n and the factors at fixed n to demonstrate it, and the
timed kernel is count propagation through K networks of growing width.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.networks import k_network
from repro.networks.depth_formulas import k_depth
from repro.sim import propagate_counts

SWEEP = [
    [2, 2],
    [7, 5],
    [2, 2, 2],
    [5, 3, 2],
    [4, 4, 4],
    [2, 2, 2, 2],
    [3, 3, 2, 2],
    [5, 2, 2, 2],
    [2, 2, 2, 2, 2],
    [3, 2, 2, 2, 2],
    [2, 2, 2, 2, 2, 2],
]


def test_proposition_6_table(save_table):
    rows = []
    for factors in SWEEP:
        n = len(factors)
        net = k_network(factors)
        max_pair = max(a * b for a, b in itertools.combinations_with_replacement(factors, 2))
        rows.append(
            {
                "factors": "x".join(map(str, factors)),
                "n": n,
                "width": net.width,
                "measured_depth": net.depth,
                "prop6_formula": k_depth(n),
                "max_balancer": net.max_balancer_width,
                "max_pi_pj": max_pair,
            }
        )
        assert net.depth == k_depth(n), factors
        assert net.max_balancer_width <= max_pair, factors
    save_table("E3_proposition6_depth_k", rows)


def test_depth_depends_only_on_n():
    depths = {k_network(list(f)).depth for f in [(2, 3, 4), (5, 5, 5), (2, 2, 7)]}
    assert len(depths) == 1


@pytest.mark.parametrize("factors", [[4, 4, 4], [2, 2, 2, 2, 2, 2]])
def test_bench_propagate_k(benchmark, factors):
    net = k_network(factors)
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 50, size=(1024, net.width))
    benchmark(lambda: propagate_counts(net, batch))
