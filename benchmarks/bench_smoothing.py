"""E17 — smoothing spectrum: counting is the 1-smooth extreme of a
hierarchy.

The paper's §3.1 machinery (k-smoothness) suggests a natural ablation:
how smooth are the outputs of networks that do *not* count?  This bench
measures the observed smoothing constant of the constructions, the
baselines, and truncated networks, demonstrating the hierarchy
counting (step) ⊂ 1-smooth ⊂ k-smooth and quantifying how quickly the
periodic network converges block by block.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    batcher_any_network,
    bitonic_network,
    bubble_network,
    odd_even_network,
    periodic_network,
)
from repro.core import identity_network
from repro.networks import k_network, l_network
from repro.verify import is_smoother, observed_smoothness


def test_smoothing_spectrum(save_table):
    cases = [
        ("identity[8]", identity_network(8)),
        ("Bubble[8]", bubble_network(8)),
        ("OddEven[8]", odd_even_network(8)),
        ("BatcherAny[12]", batcher_any_network(12)),
        ("Periodic[8] 1 block", periodic_network(8, blocks=1)),
        ("Periodic[8] 2 blocks", periodic_network(8, blocks=2)),
        ("Periodic[8] 3 blocks", periodic_network(8, blocks=3)),
        ("Bitonic[8]", bitonic_network(8)),
        ("K(2,2,2)", k_network([2, 2, 2])),
        ("L(2,2,2)", l_network([2, 2, 2])),
    ]
    rows = []
    for name, net in cases:
        sm = observed_smoothness(net)
        rows.append({"network": name, "width": net.width, "depth": net.depth, "observed_smoothness": sm})
    save_table("E17_smoothing_spectrum", rows)

    by_name = {r["network"]: r["observed_smoothness"] for r in rows}
    # Counting networks sit at the 1-smooth extreme.
    assert by_name["Bitonic[8]"] <= 1
    assert by_name["K(2,2,2)"] <= 1
    assert by_name["L(2,2,2)"] <= 1
    # The periodic network converges monotonically block by block.
    assert (
        by_name["Periodic[8] 1 block"]
        >= by_name["Periodic[8] 2 blocks"]
        >= by_name["Periodic[8] 3 blocks"]
    )
    assert by_name["Periodic[8] 3 blocks"] <= 1
    # Non-counting sorters still smooth far better than nothing.
    assert by_name["OddEven[8]"] < by_name["identity[8]"]


def test_constructions_are_1_smoothers():
    for net in (k_network([3, 2, 2]), l_network([3, 2]), bitonic_network(16)):
        assert is_smoother(net, 1)


def test_bench_observed_smoothness(benchmark):
    net = odd_even_network(16)
    benchmark(lambda: observed_smoothness(net, batches=2, batch_size=256))
