"""E13 — the shared-memory throughput experiment motivated by Felten,
LaMarca and Ladner [9] (cited in paper §1).

For a fixed width, the discrete-event contention model sweeps the K family
across concurrency levels.  Expected shape (and the paper's stated reason
for wanting a *family*): at low concurrency the shallow wide-balancer
networks win; as concurrency grows, contention on wide balancers dominates
and an intermediate balancer size becomes optimal.

The model rows are complemented by a **measured** wall-clock section
(``wall_rows``): the contention model charges every member the same
sequential service at ``procs=1``, so factorization never showed up there.
The wall section evaluates each member's flat execution plan on large
batches (after warmup, with the batch-harness overhead measured on an
identity network of the same width and subtracted), so depth and segment
count — i.e. the factorization — set the measured cost.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import build_family
from repro.core.network import identity_network
from repro.core.plan import plan_executor
from repro.networks import k_network
from repro.obs import write_bench_json
from repro.sim import ContentionSimulator


def _family_nets(w: int):
    return [(e.factors, k_network(list(e.factors))) for e in build_family(w, "K")]


_WALL_BATCH = 8192
_WALL_REPS = 3


def _timed_eval(ex, x: np.ndarray) -> float:
    """Median-of-reps seconds for one warm plan evaluation of ``x``."""
    ex.run(x)  # warmup: scratch-pool allocation, numpy lazy init
    times = []
    for _ in range(_WALL_REPS):
        t0 = time.perf_counter()
        ex.run(x)
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def _wall_rows(nets, w: int) -> list[dict]:
    """Network-bound wall-clock cost per family member at procs=1."""
    rng = np.random.default_rng(0)
    x = rng.integers(0, 10_000, size=(_WALL_BATCH, w)).astype(np.int64)
    # Harness overhead: the same executor machinery over a network with no
    # balancers measures validation + input scatter + output gather alone.
    overhead_s = _timed_eval(plan_executor(identity_network(w)), x)
    rows = []
    for factors, net in nets:
        net_s = max(_timed_eval(plan_executor(net), x) - overhead_s, 0.0)
        rows.append(
            {
                "factors": "x".join(map(str, factors)),
                "depth": net.depth,
                "size": net.size,
                "max_balancer": net.max_balancer_width,
                "batch": _WALL_BATCH,
                "net_ms_per_batch": round(net_s * 1e3, 3),
                "Mvals_per_s": round(_WALL_BATCH * w / max(net_s, 1e-9) / 1e6, 1),
            }
        )
    return rows


def test_throughput_sweep(save_table):
    w = 64
    nets = _family_nets(w)
    rows = []
    winners: dict[int, tuple] = {}
    for procs in (1, 4, 16, 64):
        best = None
        for factors, net in nets:
            stats = ContentionSimulator(net).run(
                n_procs=procs, ops_per_proc=6, collect_latencies=True
            )
            rows.append(
                {
                    "procs": procs,
                    "factors": "x".join(map(str, factors)),
                    "depth": net.depth,
                    "max_balancer": net.max_balancer_width,
                    "throughput": round(stats.throughput, 4),
                    "mean_latency": round(stats.mean_latency, 2),
                    "p95_latency": round(stats.latency_percentile(95), 2),
                }
            )
            if best is None or stats.throughput > best[0]:
                best = (stats.throughput, factors, net)
        winners[procs] = best
    wall_rows = _wall_rows(nets, w)
    save_table("E13_throughput_w64", rows)
    save_table("E13_wall_clock_w64", wall_rows)
    # Machine-readable trajectory: BENCH_throughput.json at the repo root,
    # preserving the sections the other bench tests own.
    from repro.obs.export import read_bench_json, repo_root

    payload = {"width": w, "rows": rows, "wall_rows": wall_rows}
    bench_path = repo_root() / "BENCH_throughput.json"
    if bench_path.exists():
        prior = read_bench_json(bench_path)
        for key in ("backend_rows", "sim_rows"):
            if key in prior:
                payload[key] = prior[key]
    write_bench_json("throughput", payload, family="K")

    # Low concurrency: the single balancer (depth 1) is unbeatable.
    assert winners[1][2].depth == 1
    # High concurrency: the winner is an intermediate member — neither the
    # 1-factor network nor the all-binary one.
    hi = winners[64][1]
    assert 1 < len(hi) < 6, hi

    # Measured section: factorization must matter at procs=1.  The deepest
    # member runs an order of magnitude more plan segments than the single
    # balancer; its measured per-batch cost has to show that.
    by_depth = sorted(wall_rows, key=lambda r: r["depth"])
    shallow, deep = by_depth[0], by_depth[-1]
    assert deep["depth"] > shallow["depth"]
    assert deep["net_ms_per_batch"] >= 1.5 * shallow["net_ms_per_batch"], (
        shallow,
        deep,
    )


_BACKEND_FACTORS = ([2, 2, 3], [2, 7], [2, 2, 2, 2])  # widths 12, 14, 16
_BACKEND_REPS = 5


def _timed_proof(net, backend: str) -> float:
    """Median warm seconds for one exhaustive 2^w sorting proof."""
    from repro.verify import find_sorting_violation

    w = net.width
    # Warmup carries the plan lowering, scratch allocation and numpy lazy
    # init — the steady-state number is what the budget gates.
    assert find_sorting_violation(net, exhaustive_limit=w, backend=backend) is None
    times = []
    for _ in range(_BACKEND_REPS):
        t0 = time.perf_counter()
        v = find_sorting_violation(net, exhaustive_limit=w, backend=backend)
        times.append(time.perf_counter() - t0)
        assert v is None
    times.sort()
    return times[len(times) // 2]


def test_backend_throughput(save_table):
    """Exhaustive-proof wall clock, int64 vs bit-sliced, at the widths the
    promoted test tiers actually sweep.  Both backends must return the
    identical verdict; the bit-sliced engine must clear 10x at one width
    (budgets.json gates this via ``backend_rows`` in
    BENCH_throughput.json)."""
    from repro.obs.export import read_bench_json, repo_root

    rows = []
    for factors in _BACKEND_FACTORS:
        net = k_network(list(factors))
        t_int = _timed_proof(net, "int64")
        t_bit = _timed_proof(net, "bitsliced")
        rows.append(
            {
                "width": net.width,
                "factors": "x".join(map(str, factors)),
                "inputs": 1 << net.width,
                "int64_ms": round(t_int * 1e3, 3),
                "bitsliced_ms": round(t_bit * 1e3, 3),
                "speedup_x": round(t_int / max(t_bit, 1e-9), 1),
            }
        )
    save_table("E14_backend_throughput", rows)
    # Merge into the throughput bench file: keep the contention-model rows
    # the sweep test wrote (if it ran this session), add the backend table.
    payload = {"width": 64, "rows": [], "wall_rows": []}
    bench_path = repo_root() / "BENCH_throughput.json"
    if bench_path.exists():
        prior = read_bench_json(bench_path)
        for key in ("width", "rows", "wall_rows", "sim_rows"):
            if key in prior:
                payload[key] = prior[key]
    payload["backend_rows"] = rows
    write_bench_json("throughput", payload, family="K")

    # The headline claim: >= 10x at the widest measured width, and the
    # bit-sliced path never loses anywhere in the sweep range.
    assert max(r["speedup_x"] for r in rows) >= 10.0, rows
    assert all(r["speedup_x"] >= 2.0 for r in rows), rows


_SIM_WIDTHS = (256, 1024, 2048)
_SIM_BATCH = 256
_SIM_TOKENS = 256  # legacy token baseline is O(tokens x depth) Python hops
_SIM_REPS = 3


def _legacy_sort_walker(net, values: np.ndarray) -> np.ndarray:
    """The pre-substrate per-layer comparator walker (PR-9 deleted it from
    ``sim/sort_sim``; kept inline here as the bench baseline): one fancy
    gather / ``np.sort`` / fancy scatter per width group per layer, plus a
    zeroed full-state allocation per call."""
    from repro.core.compiled import compile_network

    comp = compile_network(net)
    state = np.zeros((comp.num_wires, values.shape[0]), dtype=values.dtype)
    state[comp.input_idx] = values.T
    for layer in comp.layers:
        for group in layer:
            vals = state[group.in_idx]  # (k, p, B)
            state[group.out_idx] = np.sort(vals, axis=1)[:, ::-1]
    return state[comp.output_idx].T


def _median_seconds(fn, reps: int = _SIM_REPS) -> float:
    fn()  # warmup: plan lowering, scratch pool, numpy lazy init
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2]


def test_sim_semantics_throughput(save_table):
    """Legacy-walker vs plan-substrate wall clock for the sort and
    token-quiescent semantics at the headline widths.

    The sort rows are the gated claim: budgets.json holds a hard >=3x floor
    at width 2048 (``throughput_sim``), enforced by check_budgets.py against
    the ``sim_rows`` section merged into BENCH_throughput.json.  The token
    rows are informational — the legacy baseline there is the step-granular
    :class:`~repro.sim.TokenSimulator` draining one balancer hop per Python
    iteration, so its speedups are absurd (10^3-10^5 x) and budget-gating
    them would test the interpreter, not the kernels.
    """
    from repro.obs.export import read_bench_json, repo_root
    from repro.sim import TokenSimulator, evaluate_comparators, quiescent_counts

    rng = np.random.default_rng(0)
    rows = []
    for w in _SIM_WIDTHS:
        factors = [2] * int(np.log2(w))
        net = k_network(factors)

        x = rng.integers(0, 10_000, size=(_SIM_BATCH, w)).astype(np.int64)
        legacy_out = _legacy_sort_walker(net, x)
        plan_out = evaluate_comparators(net, x)
        assert np.array_equal(legacy_out, plan_out)  # same semantics, faster
        t_legacy = _median_seconds(lambda: _legacy_sort_walker(net, x))
        t_plan = _median_seconds(lambda: evaluate_comparators(net, x))
        rows.append(
            {
                "semantics": "sort",
                "width": w,
                "batch": _SIM_BATCH,
                "legacy_ms": round(t_legacy * 1e3, 3),
                "plan_ms": round(t_plan * 1e3, 3),
                "speedup_x": round(t_legacy / max(t_plan, 1e-9), 1),
            }
        )

        counts = np.zeros(w, dtype=np.int64)
        counts[: _SIM_TOKENS % w if w > _SIM_TOKENS else w] = 1
        counts[0] += max(_SIM_TOKENS - int(counts.sum()), 0)

        def _legacy_token():
            sim = TokenSimulator(net, seed=0)
            sim.inject(counts)
            return sim.run("random").output_counts

        legacy_tok = _legacy_token()
        plan_tok = quiescent_counts(net, counts)
        assert np.array_equal(legacy_tok, plan_tok)  # schedule independence
        t_legacy = _median_seconds(_legacy_token, reps=1)
        t_plan = _median_seconds(lambda: quiescent_counts(net, counts))
        rows.append(
            {
                "semantics": "token",
                "width": w,
                "tokens": _SIM_TOKENS,
                "legacy_ms": round(t_legacy * 1e3, 3),
                "plan_ms": round(t_plan * 1e3, 3),
                "speedup_x": round(t_legacy / max(t_plan, 1e-9), 1),
            }
        )

    save_table("E15_sim_semantics_throughput", rows)
    # Merge into the shared throughput bench file, preserving whatever the
    # other bench tests wrote this session (same pattern as backend_rows).
    payload = {"width": 64, "rows": [], "wall_rows": []}
    bench_path = repo_root() / "BENCH_throughput.json"
    if bench_path.exists():
        prior = read_bench_json(bench_path)
        for key in ("width", "rows", "wall_rows", "backend_rows"):
            if key in prior:
                payload[key] = prior[key]
    payload["sim_rows"] = rows
    write_bench_json("throughput", payload, family="K")

    sort_2048 = next(
        r for r in rows if r["semantics"] == "sort" and r["width"] == 2048
    )
    assert sort_2048["speedup_x"] >= 3.0, rows


def test_latency_monotone_in_depth_when_uncontended():
    nets = _family_nets(64)
    lat = [
        (net.depth, ContentionSimulator(net).run(1, 2).mean_latency) for _, net in nets
    ]
    lat.sort()
    depths = [d for d, _ in lat]
    latencies = [l for _, l in lat]
    assert all(a <= b for a, b in zip(latencies, latencies[1:])), list(zip(depths, latencies))


def test_threaded_counter_scaling(save_table):
    """Real threads on three family members plus the single-lock baseline:
    correctness at every scale and the measured ops/s trend.  Under
    CPython's GIL the plain lock wins on raw ops/s (serialization is
    already global, so the network only adds hops); the parallel-hardware
    story where the network wins is the ContentionSimulator's job."""
    import time

    from repro.sim import SingleLockCounter, ThreadedCounter

    rows = []
    cases = [("single-lock", None, SingleLockCounter())]
    for factors in ([8, 8], [4, 4, 4], [2, 2, 2, 2, 2, 2]):
        net = k_network(factors)
        cases.append(("x".join(map(str, factors)), net, ThreadedCounter(net)))
    for label, net, counter in cases:
        t0 = time.perf_counter()
        stats = counter.run_threads(n_threads=8, ops_per_thread=200)
        dt = time.perf_counter() - t0
        assert sorted(stats.all_values()) == list(range(1600))
        rows.append(
            {
                "counter": label,
                "depth": net.depth if net else 0,
                "ops": stats.total_ops,
                "ops_per_sec": int(stats.total_ops / dt),
            }
        )
    save_table("E13b_threaded_counter", rows)


def test_bench_contention_model(benchmark):
    net = k_network([4, 4, 4])
    sim = ContentionSimulator(net)
    benchmark(lambda: sim.run(n_procs=32, ops_per_proc=4))
