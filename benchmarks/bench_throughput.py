"""E13 — the shared-memory throughput experiment motivated by Felten,
LaMarca and Ladner [9] (cited in paper §1).

For a fixed width, the discrete-event contention model sweeps the K family
across concurrency levels.  Expected shape (and the paper's stated reason
for wanting a *family*): at low concurrency the shallow wide-balancer
networks win; as concurrency grows, contention on wide balancers dominates
and an intermediate balancer size becomes optimal.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_family
from repro.networks import k_network
from repro.obs import write_bench_json
from repro.sim import ContentionSimulator


def _family_nets(w: int):
    return [(e.factors, k_network(list(e.factors))) for e in build_family(w, "K")]


def test_throughput_sweep(save_table):
    w = 64
    nets = _family_nets(w)
    rows = []
    winners: dict[int, tuple] = {}
    for procs in (1, 4, 16, 64):
        best = None
        for factors, net in nets:
            stats = ContentionSimulator(net).run(
                n_procs=procs, ops_per_proc=6, collect_latencies=True
            )
            rows.append(
                {
                    "procs": procs,
                    "factors": "x".join(map(str, factors)),
                    "depth": net.depth,
                    "max_balancer": net.max_balancer_width,
                    "throughput": round(stats.throughput, 4),
                    "mean_latency": round(stats.mean_latency, 2),
                    "p95_latency": round(stats.latency_percentile(95), 2),
                }
            )
            if best is None or stats.throughput > best[0]:
                best = (stats.throughput, factors, net)
        winners[procs] = best
    save_table("E13_throughput_w64", rows)
    # Machine-readable trajectory: BENCH_throughput.json at the repo root.
    write_bench_json("throughput", {"width": w, "rows": rows}, family="K")

    # Low concurrency: the single balancer (depth 1) is unbeatable.
    assert winners[1][2].depth == 1
    # High concurrency: the winner is an intermediate member — neither the
    # 1-factor network nor the all-binary one.
    hi = winners[64][1]
    assert 1 < len(hi) < 6, hi


def test_latency_monotone_in_depth_when_uncontended():
    nets = _family_nets(64)
    lat = [
        (net.depth, ContentionSimulator(net).run(1, 2).mean_latency) for _, net in nets
    ]
    lat.sort()
    depths = [d for d, _ in lat]
    latencies = [l for _, l in lat]
    assert all(a <= b for a, b in zip(latencies, latencies[1:])), list(zip(depths, latencies))


def test_threaded_counter_scaling(save_table):
    """Real threads on three family members plus the single-lock baseline:
    correctness at every scale and the measured ops/s trend.  Under
    CPython's GIL the plain lock wins on raw ops/s (serialization is
    already global, so the network only adds hops); the parallel-hardware
    story where the network wins is the ContentionSimulator's job."""
    import time

    from repro.sim import SingleLockCounter, ThreadedCounter

    rows = []
    cases = [("single-lock", None, SingleLockCounter())]
    for factors in ([8, 8], [4, 4, 4], [2, 2, 2, 2, 2, 2]):
        net = k_network(factors)
        cases.append(("x".join(map(str, factors)), net, ThreadedCounter(net)))
    for label, net, counter in cases:
        t0 = time.perf_counter()
        stats = counter.run_threads(n_threads=8, ops_per_thread=200)
        dt = time.perf_counter() - t0
        assert sorted(stats.all_values()) == list(range(1600))
        rows.append(
            {
                "counter": label,
                "depth": net.depth if net else 0,
                "ops": stats.total_ops,
                "ops_per_sec": int(stats.total_ops / dt),
            }
        )
    save_table("E13b_threaded_counter", rows)


def test_bench_contention_model(benchmark):
    net = k_network([4, 4, 4])
    sim = ContentionSimulator(net)
    benchmark(lambda: sim.run(n_procs=32, ops_per_proc=4))
