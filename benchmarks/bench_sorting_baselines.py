"""E20 — the arbitrary-width *sorting* landscape around the paper.

The paper's K/L families sort any factored width; so do several classic
wide-comparator schemes.  This bench lines them all up at matching widths
(depth, size, widest comparator, does-it-count) — the sorting-side
companion to the E12 counting comparison.  Expected shape: columnsort is
unbeatable on depth where its tall-matrix condition applies; K matches or
beats shearsort while also counting; binary-comparator schemes pay
O(log² w) depth but the narrowest hardware.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    batcher_any_network,
    columnsort_network,
    columnsort_valid,
    multiway_network,
    shearsort_network,
)
from repro.networks import k_network, r_network
from repro.verify import find_counting_violation, find_sorting_violation


def _row(name, net):
    return {
        "network": name,
        "width": net.width,
        "depth": net.depth,
        "size": net.size,
        "max_comparator": net.max_balancer_width,
        "counts": find_counting_violation(net) is None,
    }


def test_sorting_landscape_table(save_table):
    rows = []
    # Width 24 = 8 x 3 mesh = 4*3*2 factors.
    rows.append(_row("K(4,3,2)", k_network([4, 3, 2])))
    rows.append(_row("R(4,6)", r_network(4, 6)))
    rows.append(_row("Shearsort[8x3]", shearsort_network(8, 3)))
    rows.append(_row("Columnsort[8x3]", columnsort_network(8, 3)))
    rows.append(_row("Multiway(4,3,2)", multiway_network([4, 3, 2])))
    rows.append(_row("BatcherAny[24]", batcher_any_network(24)))
    # Width 30 — not a power of two, no bitonic exists.
    rows.append(_row("K(5,3,2)", k_network([5, 3, 2])))
    rows.append(_row("R(5,6)", r_network(5, 6)))
    rows.append(_row("Shearsort[10x3]", shearsort_network(10, 3)))
    rows.append(_row("Columnsort[10x3]", columnsort_network(10, 3)))
    rows.append(_row("BatcherAny[30]", batcher_any_network(30)))
    save_table("E20_sorting_landscape", rows)

    by = {r["network"]: r for r in rows}
    # Columnsort is the depth champion where it applies...
    assert by["Columnsort[8x3]"]["depth"] <= by["Shearsort[8x3]"]["depth"]
    assert by["Columnsort[8x3]"]["depth"] <= by["BatcherAny[24]"]["depth"]
    # ...but only the paper's constructions also count.
    assert by["K(4,3,2)"]["counts"] and by["R(4,6)"]["counts"]
    assert not by["Columnsort[8x3]"]["counts"]
    assert not by["BatcherAny[24]"]["counts"]
    # Binary comparators cost depth.
    assert by["BatcherAny[30]"]["depth"] > by["K(5,3,2)"]["depth"]


def test_all_landscape_networks_sort():
    nets = [
        k_network([4, 3, 2]),
        r_network(4, 6),
        shearsort_network(8, 3),
        columnsort_network(8, 3),
        multiway_network([4, 3, 2]),
    ]
    for net in nets:
        assert find_sorting_violation(net) is None, net.name


def test_columnsort_condition_boundary(save_table):
    rows = []
    for r, s in [(2, 2), (8, 3), (18, 4), (32, 5)]:
        ok = columnsort_valid(r, s)
        rows.append({"r": r, "s": s, "width": r * s, "condition_r>=2(s-1)^2": ok})
        if ok:
            assert find_sorting_violation(columnsort_network(r, s)) is None
    save_table("E20b_columnsort_domain", rows)


def test_bench_shearsort_eval(benchmark):
    import numpy as np

    from repro.sim import evaluate_comparators

    net = shearsort_network(8, 8)
    batch = np.random.default_rng(0).integers(0, 1000, size=(1024, 64))
    benchmark(lambda: evaluate_comparators(net, batch))


def test_bench_columnsort_build(benchmark):
    benchmark(lambda: columnsort_network(32, 5))
