"""E2 — Proposition 3: depth(M(p0..pn-1)) = d + (n-2)·depth(S).

Sweeps merger factorizations, comparing measured depth against the
proposition with d = 1 and depth(S) = 3 (opt_rescan) / 4 (opt_bitonic with
a 1-balancer base).
"""

from __future__ import annotations

import numpy as np
import pytest

from math import prod

from repro.networks import merger_network
from repro.networks.depth_formulas import merger_depth, staircase_depth
from repro.verify import verify_merger

SWEEP = [
    [2, 2],
    [2, 3],
    [2, 2, 2],
    [3, 2, 2],
    [2, 3, 2],
    [2, 2, 2, 2],
    [2, 2, 2, 2, 2],
    [3, 2, 2, 2, 2],
]


def test_proposition_3_table(save_table):
    rows = []
    for variant in ("opt_rescan", "opt_bitonic"):
        ds = staircase_depth(variant, d=1)
        for factors in SWEEP:
            n = len(factors)
            net = merger_network(factors, variant=variant)
            predicted = merger_depth(n, d=1, depth_s=ds)
            rows.append(
                {
                    "variant": variant,
                    "factors": "x".join(map(str, factors)),
                    "n": n,
                    "measured_depth": net.depth,
                    "prop3_predicted": predicted,
                }
            )
            assert net.depth <= predicted, (variant, factors)
            if variant == "opt_rescan":
                assert net.depth == predicted, (variant, factors)
            # And the merger contract holds.
            lengths = [prod(factors[:-1])] * factors[-1]
            assert verify_merger(net, lengths, trials=64) is None
    save_table("E2_proposition3_depth_m", rows)


def test_bench_merge_step_inputs(benchmark, rng=np.random.default_rng(0)):
    from repro.sim import propagate_counts
    from repro.verify import merger_inputs

    net = merger_network([2, 2, 2, 2])
    batch = merger_inputs([8, 8], 512, rng)
    benchmark(lambda: propagate_counts(net, batch))
