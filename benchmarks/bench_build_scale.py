"""E15 — construction cost: network size and build/evaluation scaling.

The paper's practicality claim rests on small constants; this harness
records how balancer count, depth, and wall-clock build/evaluate costs grow
with width for the K and L families.

Each row carries before/after pairs for the flat-plan engine:

* ``eval64_legacy_ms`` — the pre-plan evaluator (per-layer WidthGroup sweep
  over :func:`compile_network` output, fresh state array per call), kept
  here as the measured baseline;
* ``eval64_ms`` — the :class:`~repro.core.plan.PlanExecutor` fast path (the
  number the perf budget tracks);
* ``build_ms`` / ``build_warm_ms`` — cold construction vs a
  :class:`~repro.core.cache.PlanCache` hit that loads the stored plan.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np
import pytest

from repro.analysis import balanced_factorization, prime_factors
from repro.core.cache import PlanCache, cached_plan
from repro.core.compiled import compile_network
from repro.core.plan import PlanExecutor, plan_executor
from repro.networks import k_network, l_network
from repro.networks.counting import clear_construction_cache
from repro.obs import write_bench_json
from repro.sim import propagate_counts


#: The last pre-plan BENCH_build_scale.json numbers at width 2048 — the
#: baseline the flat-plan acceptance bars are measured against.
_COMMITTED_EVAL64_MS_2048 = 720.9
_COMMITTED_BUILD_MS_2048 = 741.4


def _legacy_eval(net, x):
    """The pre-plan evaluation loop (WidthGroup sweep, fresh state array)."""
    comp = compile_network(net)
    state = np.zeros((comp.num_wires, x.shape[0]), dtype=np.int64)
    state[comp.input_idx] = x.T
    for layer in comp.layers:
        for group in layer:
            p = group.width
            totals = state[group.in_idx].sum(axis=1, keepdims=True)
            state[group.out_idx] = (totals - group.offsets + p - 1) // p
    return state[comp.output_idx].T


def test_scaling_table(save_table):
    rows = []
    cache = PlanCache(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    for w in (16, 64, 256, 1024, 2048):
        factors = list(prime_factors(w))
        clear_construction_cache()
        t0 = time.perf_counter()
        net = k_network(factors)
        build = time.perf_counter() - t0
        cache.put_network("K", factors, net)
        cache.put_plan("K", factors, plan_executor(net).plan)
        t0 = time.perf_counter()
        plan = cached_plan("K", factors, lambda: k_network(factors), cache=cache)
        build_warm = time.perf_counter() - t0
        ex = PlanExecutor(plan)

        x = np.random.default_rng(0).integers(0, 100, size=(64, w))
        legacy = _legacy_eval(net, x)
        t0 = time.perf_counter()
        legacy = _legacy_eval(net, x)
        evaluate_legacy = time.perf_counter() - t0
        ex.run(x)  # warm the scratch pool: steady state is what serving sees
        t0 = time.perf_counter()
        out = ex.run(x)
        evaluate = time.perf_counter() - t0
        assert np.array_equal(out, legacy)
        assert bool(np.all(out[:, :-1] >= out[:, 1:]))
        rows.append(
            {
                "width": w,
                "factors": "x".join(map(str, factors)),
                "depth": net.depth,
                "size": net.size,
                "build_ms": round(build * 1e3, 1),
                "build_warm_ms": round(build_warm * 1e3, 2),
                "eval64_ms": round(evaluate * 1e3, 2),
                "eval64_legacy_ms": round(evaluate_legacy * 1e3, 1),
            }
        )
    # Parallel sharding on the widest network, one row of its own.
    net = k_network(prime_factors(2048))
    ex = plan_executor(net)
    big = np.random.default_rng(1).integers(0, 100, size=(256, 2048))
    serial = ex.run(big)
    # Warm the pool (fork + per-worker plan materialization + first-call
    # scratch allocation) so the row records steady-state sharded cost.
    assert np.array_equal(ex.run_parallel(big, workers=4), serial)
    t0 = time.perf_counter()
    assert np.array_equal(ex.run_parallel(big, workers=4), serial)
    workers_ms = (time.perf_counter() - t0) * 1e3
    ex.close_pool()
    rows.append(
        {
            "width": 2048,
            "factors": "batch256-workers4",
            "depth": net.depth,
            "size": net.size,
            "build_ms": None,
            "build_warm_ms": None,
            "eval64_ms": round(workers_ms, 2),
            "eval64_legacy_ms": None,
        }
    )
    save_table("E15_build_scale_k", rows)
    # Machine-readable trajectory: BENCH_build_scale.json at the repo root.
    write_bench_json("build_scale", {"family": "K", "rows": rows})
    # Size grows roughly like w * depth / mean-balancer-width: superlinear
    # in w but far from quadratic blow-up.
    sizes = {r["width"]: r["size"] for r in rows if r["build_ms"] is not None}
    assert sizes[2048] < 2048 * k_network(prime_factors(2048)).depth
    # The flat plan must actually pay off where it matters.  The acceptance
    # bars are against the committed pre-plan trajectory (which, like any
    # fresh process, paid compile_network on its one evaluation): >= 3x on
    # eval, >= 5x on warm-cache build.  The warm in-process legacy sweep is
    # also recorded above and must not beat the plan.
    wide = next(r for r in rows if r["width"] == 2048 and r["build_ms"] is not None)
    assert wide["eval64_ms"] * 3 <= _COMMITTED_EVAL64_MS_2048
    assert wide["build_warm_ms"] * 5 <= _COMMITTED_BUILD_MS_2048
    assert wide["eval64_ms"] < wide["eval64_legacy_ms"]


def test_searched_vs_stock_table(save_table):
    """Depth + serve-latency columns comparing stock vs searched-base K
    (repro.search registry substitution), merged into
    BENCH_build_scale.json as ``searched_rows``."""
    import asyncio

    from repro.obs.export import read_bench_json, repo_root
    from repro.serve import CountingService, LoadGenerator

    def serve_p50_ms(net) -> float:
        async def run():
            service = CountingService(net, max_batch=32, max_delay=0.0005)
            gen = LoadGenerator(mode="closed", clients=8, ops=40, seed=0)
            async with service:
                return await gen.run_service(service)

        report = asyncio.run(run())
        assert report.exactly_once
        return round(report.latency_percentile(50) * 1e3, 3)

    rows = []
    for factors in ([2, 2, 2, 2], [2, 2, 2, 2, 2], [4, 4, 2, 2]):
        stock = k_network(factors)
        searched = k_network(factors, variant="searched")
        rows.append(
            {
                "width": stock.width,
                "factors": "x".join(map(str, factors)),
                "depth_stock": stock.depth,
                "depth_searched": searched.depth,
                "depth_delta": stock.depth - searched.depth,
                "size_stock": stock.size,
                "size_searched": searched.size,
                "serve_p50_stock_ms": serve_p50_ms(stock),
                "serve_p50_searched_ms": serve_p50_ms(searched),
            }
        )
    save_table("E15d_searched_vs_stock_k", rows)
    # Merge into the build-scale bench file: keep the stock scaling rows the
    # earlier test wrote (if it ran this session), add the comparison.
    payload = {"family": "K", "rows": []}
    bench_path = repo_root() / "BENCH_build_scale.json"
    if bench_path.exists():
        prior = read_bench_json(bench_path)
        payload["family"] = prior.get("family", "K")
        payload["rows"] = prior.get("rows", [])
    payload["searched_rows"] = rows
    write_bench_json("build_scale", payload)
    # Acceptance: searched-base K is strictly shallower for at least one
    # factorization (the registry's bitonic-16 beats the stock C(2,2,2,2)
    # prefix), and never deeper anywhere.
    assert any(r["depth_delta"] > 0 for r in rows)
    assert all(r["depth_delta"] >= 0 for r in rows)


def test_l_scaling_table(save_table):
    rows = []
    for w, cap in ((24, 4), (60, 5), (128, 4), (360, 6)):
        factors = list(balanced_factorization(w, cap))
        t0 = time.perf_counter()
        net = l_network(factors)
        build = time.perf_counter() - t0
        rows.append(
            {
                "width": w,
                "factors": "x".join(map(str, factors)),
                "depth": net.depth,
                "size": net.size,
                "max_balancer": net.max_balancer_width,
                "build_ms": round(build * 1e3, 1),
            }
        )
        assert net.max_balancer_width <= cap
    save_table("E15b_build_scale_l", rows)
    write_bench_json("build_scale_l", {"family": "L", "rows": rows})


@pytest.mark.parametrize("w", [64, 256, 1024])
def test_bench_build_k_width(benchmark, w):
    factors = list(prime_factors(w))
    benchmark(lambda: k_network(factors))


def test_bench_eval_wide(benchmark):
    net = k_network(prime_factors(1024))
    x = np.random.default_rng(0).integers(0, 100, size=(32, 1024))
    benchmark(lambda: propagate_counts(net, x))


def test_eval_rate_vs_numpy(save_table):
    """Honesty table: values/second through the vectorized network
    evaluator vs np.sort.  The network is software-slower (it does more
    comparisons and they are oblivious); its value is the data-independent
    schedule, not software speed."""
    import numpy as np

    from repro.sim import evaluate_comparators

    rows = []
    rng = np.random.default_rng(0)
    for factors in ([4, 4], [4, 4, 4], [2, 2, 2, 2, 2, 2]):
        net = k_network(factors)
        batch = rng.integers(0, 10_000, size=(2000, net.width))
        t0 = time.perf_counter()
        out = evaluate_comparators(net, batch)
        t_net = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref = np.sort(batch, axis=1)[:, ::-1]
        t_np = time.perf_counter() - t0
        assert np.array_equal(out, ref)
        values = batch.size
        rows.append(
            {
                "network": net.name,
                "width": net.width,
                "net_Mvals_per_s": round(values / t_net / 1e6, 2),
                "numpy_Mvals_per_s": round(values / t_np / 1e6, 2),
                "overhead_x": round(t_net / t_np, 1),
            }
        )
    save_table("E15c_eval_rate_vs_numpy", rows)
