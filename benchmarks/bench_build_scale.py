"""E15 — construction cost: network size and build/evaluation scaling.

The paper's practicality claim rests on small constants; this harness
records how balancer count, depth, and wall-clock build/evaluate costs grow
with width for the K and L families.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import balanced_factorization, prime_factors
from repro.networks import k_network, l_network
from repro.obs import write_bench_json
from repro.sim import propagate_counts


def test_scaling_table(save_table):
    rows = []
    for w in (16, 64, 256, 1024, 2048):
        factors = list(prime_factors(w))
        t0 = time.perf_counter()
        net = k_network(factors)
        build = time.perf_counter() - t0
        x = np.random.default_rng(0).integers(0, 100, size=(64, w))
        t0 = time.perf_counter()
        out = propagate_counts(net, x)
        evaluate = time.perf_counter() - t0
        assert bool(np.all(out[:, :-1] >= out[:, 1:]))
        rows.append(
            {
                "width": w,
                "factors": "x".join(map(str, factors)),
                "depth": net.depth,
                "size": net.size,
                "build_ms": round(build * 1e3, 1),
                "eval64_ms": round(evaluate * 1e3, 1),
            }
        )
    save_table("E15_build_scale_k", rows)
    # Machine-readable trajectory: BENCH_build_scale.json at the repo root.
    write_bench_json("build_scale", {"family": "K", "rows": rows})
    # Size grows roughly like w * depth / mean-balancer-width: superlinear
    # in w but far from quadratic blow-up.
    sizes = {r["width"]: r["size"] for r in rows}
    assert sizes[2048] < 2048 * k_network(prime_factors(2048)).depth


def test_l_scaling_table(save_table):
    rows = []
    for w, cap in ((24, 4), (60, 5), (128, 4), (360, 6)):
        factors = list(balanced_factorization(w, cap))
        t0 = time.perf_counter()
        net = l_network(factors)
        build = time.perf_counter() - t0
        rows.append(
            {
                "width": w,
                "factors": "x".join(map(str, factors)),
                "depth": net.depth,
                "size": net.size,
                "max_balancer": net.max_balancer_width,
                "build_ms": round(build * 1e3, 1),
            }
        )
        assert net.max_balancer_width <= cap
    save_table("E15b_build_scale_l", rows)
    write_bench_json("build_scale_l", {"family": "L", "rows": rows})


@pytest.mark.parametrize("w", [64, 256, 1024])
def test_bench_build_k_width(benchmark, w):
    factors = list(prime_factors(w))
    benchmark(lambda: k_network(factors))


def test_bench_eval_wide(benchmark):
    net = k_network(prime_factors(1024))
    x = np.random.default_rng(0).integers(0, 100, size=(32, 1024))
    benchmark(lambda: propagate_counts(net, x))


def test_eval_rate_vs_numpy(save_table):
    """Honesty table: values/second through the vectorized network
    evaluator vs np.sort.  The network is software-slower (it does more
    comparisons and they are oblivious); its value is the data-independent
    schedule, not software speed."""
    import numpy as np

    from repro.sim import evaluate_comparators

    rows = []
    rng = np.random.default_rng(0)
    for factors in ([4, 4], [4, 4, 4], [2, 2, 2, 2, 2, 2]):
        net = k_network(factors)
        batch = rng.integers(0, 10_000, size=(2000, net.width))
        t0 = time.perf_counter()
        out = evaluate_comparators(net, batch)
        t_net = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref = np.sort(batch, axis=1)[:, ::-1]
        t_np = time.perf_counter() - t0
        assert np.array_equal(out, ref)
        values = batch.size
        rows.append(
            {
                "network": net.name,
                "width": net.width,
                "net_Mvals_per_s": round(values / t_net / 1e6, 2),
                "numpy_Mvals_per_s": round(values / t_np / 1e6, 2),
                "overhead_x": round(t_net / t_np, 1),
            }
        )
    save_table("E15c_eval_rate_vs_numpy", rows)
