#!/usr/bin/env python
"""CI perf gate: compare BENCH_*.json files against benchmarks/budgets.json.

Usage::

    python benchmarks/check_budgets.py [BENCH_build_scale.json] [budgets.json] [BENCH_throughput.json] [BENCH_serve_scale.json]

Exits nonzero when any measured metric exceeds ``regression_factor`` times
its budget — i.e. a >2x regression of build or evaluation cost fails CI
while ordinary runner noise does not.  Budgets are plain expected values,
so tightening them is a one-line diff reviewed like any other.

A ``throughput_backends`` section gates *minimum* speedups instead: the
bit-sliced exhaustive proof must stay at least ``budget /
regression_factor`` times faster than the int64 path (10.0 / 2.0 = a hard
5x floor against runner noise, with 10x the expected steady number).

``throughput_sim`` and ``cluster`` are hard floors with no slack: both are
acceptance criteria stated as speedup ratios measured in one process, so
runner speed divides out.
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT_BENCH = "BENCH_build_scale.json"
DEFAULT_BUDGETS = pathlib.Path(__file__).parent / "budgets.json"
DEFAULT_THROUGHPUT = "BENCH_throughput.json"
DEFAULT_SERVE_SCALE = "BENCH_serve_scale.json"


def check_backend_speedups(throughput_path, spec) -> list[str]:
    """Min-bound gate: measured ``speedup_x`` per width in ``backend_rows``
    must stay above ``min_speedup_x / regression_factor``."""
    budgets = spec.get("throughput_backends")
    if not budgets:
        return []
    path = pathlib.Path(throughput_path)
    if not path.exists():
        return [f"throughput_backends budget set but {throughput_path} missing"]
    factor = float(spec.get("regression_factor", 2.0))
    bench = json.loads(path.read_text())
    rows = {str(r["width"]): r for r in bench.get("backend_rows", [])}
    failures = []
    for width, budget in budgets.items():
        row = rows.get(width)
        if row is None:
            failures.append(f"width {width}: no backend_rows entry in {throughput_path}")
            continue
        floor = float(budget["min_speedup_x"]) / factor
        measured = float(row["speedup_x"])
        if measured < floor:
            failures.append(
                f"width {width}: bitsliced speedup_x={measured} below "
                f"floor {floor:g} (budget {budget['min_speedup_x']} / {factor})"
            )
        else:
            print(
                f"ok width {width} speedup_x={measured} "
                f"(budget {budget['min_speedup_x']}, floor {floor:g})"
            )
    return failures


def check_sim_speedups(throughput_path, spec) -> list[str]:
    """Hard gate on the simulator-substrate sweep.

    The ``sim_rows`` sort-semantics speedup (plan executor vs the retired
    per-layer walker) at each budgeted width must meet ``min_speedup_x``
    with no regression_factor slack — it is the substrate PR's acceptance
    criterion verbatim, and both timings run on the same machine in the
    same process, so runner speed cancels out of the ratio.
    """
    budgets = spec.get("throughput_sim")
    if not budgets:
        return []
    path = pathlib.Path(throughput_path)
    if not path.exists():
        return [f"throughput_sim budget set but {throughput_path} missing"]
    bench = json.loads(path.read_text())
    rows = {
        str(r["width"]): r
        for r in bench.get("sim_rows", [])
        if r.get("semantics") == "sort"
    }
    failures = []
    for width, budget in budgets.items():
        row = rows.get(width)
        if row is None:
            failures.append(
                f"sim width {width}: no sort-semantics sim_rows entry in {throughput_path}"
            )
            continue
        floor = float(budget["min_speedup_x"])
        measured = float(row["speedup_x"])
        if measured < floor:
            failures.append(
                f"sim width {width}: sort plan speedup_x={measured} "
                f"below hard floor {floor:g}"
            )
        else:
            print(f"ok sim width {width} sort speedup_x={measured} (floor {floor:g})")
    return failures


def check_cluster_rows(serve_scale_path, spec) -> list[str]:
    """Hard gate on the cluster weak-scaling sweep.

    Unlike the timing budgets, these are the PR's acceptance criteria
    verbatim: the ``cluster_rows`` speedup at each budgeted shard count
    must meet ``min_speedup_x`` with no regression_factor slack, and every
    cluster row — whatever its shard count — must report ``exactly_once``
    (a fast cluster that double-issues values is not a cluster).
    """
    budgets = spec.get("cluster")
    if not budgets:
        return []
    path = pathlib.Path(serve_scale_path)
    if not path.exists():
        return [f"cluster budget set but {serve_scale_path} missing"]
    bench = json.loads(path.read_text())
    rows = bench.get("cluster_rows", [])
    failures = []
    for row in rows:
        if not row.get("exactly_once"):
            failures.append(
                f"cluster shards={row.get('shards')}: exactly_once is false "
                f"(duplicates={row.get('duplicates')}, gaps={row.get('gap_total')})"
            )
    by_shards = {str(r["shards"]): r for r in rows}
    for shards, budget in budgets.items():
        row = by_shards.get(shards)
        if row is None:
            failures.append(f"cluster shards={shards}: no cluster_rows entry in {serve_scale_path}")
            continue
        floor = float(budget["min_speedup_x"])
        measured = float(row.get("speedup_vs_1shard", 0.0))
        if measured < floor:
            failures.append(
                f"cluster shards={shards}: speedup_vs_1shard={measured} "
                f"below hard floor {floor:g}"
            )
        else:
            print(f"ok cluster shards={shards} speedup_vs_1shard={measured} (floor {floor:g})")
    return failures


def check(
    bench_path,
    budgets_path,
    throughput_path=DEFAULT_THROUGHPUT,
    serve_scale_path=DEFAULT_SERVE_SCALE,
) -> list[str]:
    bench = json.loads(pathlib.Path(bench_path).read_text())
    spec = json.loads(pathlib.Path(budgets_path).read_text())
    factor = float(spec.get("regression_factor", 2.0))
    budgets = spec["build_scale"]
    rows = {
        str(r["width"]): r
        for r in bench["rows"]
        if r.get("build_ms") is not None  # skip the workers/aggregate rows
    }
    failures = []
    for width, budget in budgets.items():
        row = rows.get(width)
        if row is None:
            failures.append(f"width {width}: no measured row in {bench_path}")
            continue
        for metric, limit in budget.items():
            measured = row.get(metric)
            if measured is None:
                failures.append(f"width {width}: metric {metric} missing")
            elif float(measured) > factor * float(limit):
                failures.append(
                    f"width {width}: {metric}={measured} exceeds "
                    f"{factor}x budget {limit}"
                )
            else:
                print(
                    f"ok width {width} {metric}={measured} "
                    f"(budget {limit}, limit {factor * float(limit):g})"
                )
    failures.extend(check_backend_speedups(throughput_path, spec))
    failures.extend(check_sim_speedups(throughput_path, spec))
    failures.extend(check_cluster_rows(serve_scale_path, spec))
    return failures


def main(argv: list[str]) -> int:
    bench = argv[1] if len(argv) > 1 else DEFAULT_BENCH
    budgets = argv[2] if len(argv) > 2 else DEFAULT_BUDGETS
    throughput = argv[3] if len(argv) > 3 else DEFAULT_THROUGHPUT
    serve_scale = argv[4] if len(argv) > 4 else DEFAULT_SERVE_SCALE
    failures = check(bench, budgets, throughput, serve_scale)
    for f in failures:
        print(f"PERF REGRESSION: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
