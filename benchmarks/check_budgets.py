#!/usr/bin/env python
"""CI perf gate: compare BENCH_build_scale.json against benchmarks/budgets.json.

Usage::

    python benchmarks/check_budgets.py [BENCH_build_scale.json] [budgets.json]

Exits nonzero when any measured metric exceeds ``regression_factor`` times
its budget — i.e. a >2x regression of build or evaluation cost fails CI
while ordinary runner noise does not.  Budgets are plain expected values,
so tightening them is a one-line diff reviewed like any other.
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT_BENCH = "BENCH_build_scale.json"
DEFAULT_BUDGETS = pathlib.Path(__file__).parent / "budgets.json"


def check(bench_path, budgets_path) -> list[str]:
    bench = json.loads(pathlib.Path(bench_path).read_text())
    spec = json.loads(pathlib.Path(budgets_path).read_text())
    factor = float(spec.get("regression_factor", 2.0))
    budgets = spec["build_scale"]
    rows = {
        str(r["width"]): r
        for r in bench["rows"]
        if r.get("build_ms") is not None  # skip the workers/aggregate rows
    }
    failures = []
    for width, budget in budgets.items():
        row = rows.get(width)
        if row is None:
            failures.append(f"width {width}: no measured row in {bench_path}")
            continue
        for metric, limit in budget.items():
            measured = row.get(metric)
            if measured is None:
                failures.append(f"width {width}: metric {metric} missing")
            elif float(measured) > factor * float(limit):
                failures.append(
                    f"width {width}: {metric}={measured} exceeds "
                    f"{factor}x budget {limit}"
                )
            else:
                print(
                    f"ok width {width} {metric}={measured} "
                    f"(budget {limit}, limit {factor * float(limit):g})"
                )
    return failures


def main(argv: list[str]) -> int:
    bench = argv[1] if len(argv) > 1 else DEFAULT_BENCH
    budgets = argv[2] if len(argv) > 2 else DEFAULT_BUDGETS
    failures = check(bench, budgets)
    for f in failures:
        print(f"PERF REGRESSION: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
