"""E19 — ablation: what the family trade-off costs on binary hardware.

The paper's wide balancers are one shared-memory operation each, so depth
in *balancer layers* is the right metric there.  On binary comparator
hardware every p-comparator must itself be built from 2-comparators; this
bench expands each family member of width 64 and measures the resulting
2-comparator depth.  Finding: expansion collapses the trade-off — the
coarsest factorization (whose expansion *is* Batcher's network) is
shallowest, and expanded depth grows monotonically with n.  The family's
value is therefore tied to the cost model: native wide balancers
(shared-memory words, crossbar stages) yes; binary gates no.  This is the
quantified version of why the paper targets counting networks rather than
VLSI sorters.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_family
from repro.baselines import batcher_any_network
from repro.networks import expand_comparators, k_network
from repro.verify import find_sorting_violation


def test_expanded_family_table(save_table):
    rows = []
    entries = build_family(64, "K")
    expanded = {}
    for e in entries:
        net = k_network(list(e.factors))
        exp = expand_comparators(net)
        expanded[e.factors] = exp
        rows.append(
            {
                "factors": "x".join(map(str, e.factors)),
                "n": e.n,
                "balancer_layers": net.depth,
                "expanded_2comp_depth": exp.depth,
                "expanded_size": exp.size,
            }
        )
    save_table("E19_expanded_family_w64", rows)

    # Monotone collapse: expanded depth increases with n.
    by_n: dict[int, list[int]] = {}
    for r in rows:
        by_n.setdefault(r["n"], []).append(r["expanded_2comp_depth"])
    ns = sorted(by_n)
    for a, b in zip(ns, ns[1:]):
        assert max(by_n[a]) <= min(by_n[b]) or a == 1

    # The 1-factor member expands to exactly Batcher's network.
    one = expanded[(64,)]
    ref = batcher_any_network(64)
    assert one.depth == ref.depth
    assert one.size == ref.size


def test_expanded_networks_still_sort():
    for factors in ([8, 8], [4, 4, 4]):
        exp = expand_comparators(k_network(factors))
        assert find_sorting_violation(exp) is None


def test_bench_expansion(benchmark):
    net = k_network([4, 4, 4])
    benchmark(lambda: expand_comparators(net))
