"""Tests for factorization utilities."""

from __future__ import annotations

from math import prod

import pytest

from repro.analysis import balanced_factorization, canonical, divisors, factorizations, prime_factors


class TestPrimeFactors:
    def test_basic(self):
        assert prime_factors(12) == [2, 2, 3]
        assert prime_factors(1) == []
        assert prime_factors(13) == [13]
        assert prime_factors(360) == [2, 2, 2, 3, 3, 5]

    def test_product_recovers(self):
        for w in range(2, 200):
            assert prod(prime_factors(w)) == w

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            prime_factors(0)


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(49) == [1, 7, 49]

    def test_count_matches_brute_force(self):
        for w in range(1, 100):
            assert divisors(w) == [d for d in range(1, w + 1) if w % d == 0]


class TestFactorizations:
    def test_twelve(self):
        assert factorizations(12) == [(12,), (4, 3), (6, 2), (3, 2, 2)]

    def test_prime(self):
        assert factorizations(7) == [(7,)]

    def test_every_entry_multiplies_to_w(self):
        for w in (24, 36, 60, 64):
            for f in factorizations(w):
                assert prod(f) == w
                assert all(x >= 2 for x in f)
                assert list(f) == sorted(f, reverse=True)

    def test_no_duplicates(self):
        for w in (48, 96):
            fs = factorizations(w)
            assert len(fs) == len(set(fs))

    def test_known_counts(self):
        # Multiplicative partition counts (OEIS A001055): 2^6 -> 11.
        assert len(factorizations(64)) == 11
        assert len(factorizations(30)) == 5

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            factorizations(1)


class TestCanonical:
    def test_sorts_and_strips(self):
        assert canonical([2, 1, 3, 2]) == (3, 2, 2)

    def test_idempotent(self):
        assert canonical(canonical([4, 2, 8])) == (8, 4, 2)


class TestBalanced:
    def test_respects_cap(self):
        f = balanced_factorization(64, 8)
        assert prod(f) == 64
        assert max(f) <= 8

    def test_exact_product(self):
        for w in (24, 60, 128, 210):
            f = balanced_factorization(w, 16)
            assert prod(f) == w

    def test_impossible_cap_raises(self):
        with pytest.raises(ValueError):
            balanced_factorization(26, 5)  # 13 is prime > 5

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            balanced_factorization(8, 1)
