"""Tests for the linearizability analysis (paper §6)."""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import (
    LinearizabilityViolation,
    Operation,
    check_history,
    find_nonlinearizable_execution,
    run_sequential_history,
)
from repro.baselines import bitonic_network
from repro.core import single_balancer_network
from repro.networks import k_network, l_network


class TestCheckHistory:
    def test_empty_and_singleton(self):
        assert check_history([]) is None
        assert check_history([Operation(0, 0, 1, 0)]) is None

    def test_ordered_history_passes(self):
        ops = [Operation(i, 2 * i, 2 * i + 1, i) for i in range(5)]
        assert check_history(ops) is None

    def test_overlapping_out_of_order_allowed(self):
        # Overlapping operations may be reordered: no constraint applies.
        ops = [Operation(0, 0, 10, 5), Operation(1, 1, 9, 0)]
        assert check_history(ops) is None

    def test_violation_detected(self):
        ops = [Operation(0, 0, 1, 7), Operation(1, 5, 6, 2)]
        v = check_history(ops)
        assert v is not None
        assert v.first.token_id == 0 and v.second.token_id == 1
        assert "non-linearizable" in str(v)


class TestSequentialExecutions:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: single_balancer_network(3),
            lambda: k_network([2, 2, 2]),
            lambda: l_network([2, 2]),
            lambda: bitonic_network(8),
        ],
    )
    def test_sequential_always_linearizable(self, net_fn):
        """One-at-a-time executions hand out 0, 1, 2, ... in real-time
        order on any counting network."""
        net = net_fn()
        ops = run_sequential_history(net, 3 * net.width)
        assert check_history(ops) is None
        assert sorted(o.value for o in ops) == list(range(3 * net.width))
        by_end = sorted(ops, key=lambda o: o.end)
        assert [o.value for o in by_end] == list(range(3 * net.width))


class TestNonLinearizability:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: single_balancer_network(2),
            lambda: single_balancer_network(4),
            lambda: k_network([2, 2, 2]),
            lambda: k_network([4, 4]),
            lambda: l_network([2, 2]),
            lambda: bitonic_network(8),
        ],
    )
    def test_counting_networks_are_not_linearizable(self, net_fn):
        """The §6 phenomenon: every one of these counting networks admits a
        stalled-token execution where a later, non-overlapping operation
        receives a smaller value."""
        net = net_fn()
        found = find_nonlinearizable_execution(net)
        assert found is not None
        violation, ops = found
        # The witness is internally consistent.
        assert violation.first.end < violation.second.start
        assert violation.first.value > violation.second.value
        # And the history is a valid counter outcome: distinct values.
        values = [o.value for o in ops]
        assert len(values) == len(set(values))

    def test_violation_values_still_form_a_range_at_quiescence(self):
        """Even the non-linearizable execution hands out an exact value
        range once everything drains — counting is preserved, only
        real-time order is lost."""
        net = k_network([2, 2])
        _, ops = find_nonlinearizable_execution(net)
        assert sorted(o.value for o in ops) == list(range(len(ops)))
