"""Tests for the deployment planner."""

from __future__ import annotations

from math import prod

import pytest

from repro.analysis import best_factorization, next_factorable_width, plan_network
from repro.verify import find_counting_violation


class TestBestFactorization:
    def test_exact_width_within_budget(self):
        f = best_factorization(64, 16, "K")
        assert f == (4, 4, 4)

    def test_generous_budget_picks_single_balancer(self):
        assert best_factorization(24, 24, "K") in [(24,), (12, 2), (8, 3), (6, 4)]
        net_factors = best_factorization(24, 24, "K")
        from repro.networks import k_network

        assert k_network(list(net_factors)).depth == 1

    def test_tight_budget(self):
        f = best_factorization(16, 4, "K")
        assert f is not None
        assert prod(f) == 16
        from repro.networks import k_network

        assert k_network(list(f)).max_balancer_width <= 4

    def test_impossible_returns_none(self):
        assert best_factorization(34, 8, "K") is None  # 17 is prime
        assert best_factorization(6, 4, "K") is None  # K(3,2) is a 6-balancer

    def test_l_family_uses_factor_bound(self):
        f = best_factorization(30, 5, "L")
        assert f is not None and max(f) <= 5

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            best_factorization(8, 4, "Z")


class TestNextFactorableWidth:
    def test_already_factorable(self):
        assert next_factorable_width(64, 2) == 64

    def test_skips_bad_primes(self):
        assert next_factorable_width(17, 8) == 18  # 17 prime, 18 = 2*3*3

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            next_factorable_width(10, 1)

    def test_limit(self):
        with pytest.raises(ValueError):
            next_factorable_width(5, 2, limit=5)  # 5 prime, no room


class TestPlanNetwork:
    def test_exact_plan(self):
        plan = plan_network(64, 16, "K")
        assert not plan.padded
        assert plan.depth == 5
        assert plan.max_balancer_width <= 16

    def test_padded_plan(self):
        plan = plan_network(34, 8, "K")
        assert plan.padded
        assert plan.width >= 34
        assert plan.max_balancer_width <= 8

    def test_padding_disabled_raises(self):
        with pytest.raises(ValueError, match="factorization"):
            plan_network(34, 8, "K", allow_padding=False)

    def test_built_network_counts(self):
        plan = plan_network(12, 6, "K")
        net = plan.build()
        assert net.width == plan.width
        assert find_counting_violation(net) is None

    def test_l_plan_builds(self):
        plan = plan_network(12, 3, "L")
        net = plan.build()
        assert net.max_balancer_width <= 3

    def test_small_width_validation(self):
        with pytest.raises(ValueError):
            plan_network(1, 4)

    def test_depth_preferred_over_size(self):
        """Within budget, the plan takes the shallowest member."""
        plan = plan_network(64, 64, "K")
        assert plan.depth == 1


class TestKBudgetGuard:
    def test_narrow_budget_rejected_for_k(self):
        with pytest.raises(ValueError, match="family='L'"):
            plan_network(8, 2, "K")

    def test_narrow_budget_fine_for_l(self):
        plan = plan_network(8, 2, "L")
        assert plan.max_balancer_width <= 2

    def test_tiny_width_within_budget_still_k(self):
        # width <= budget: the single balancer is legal for K.
        plan = plan_network(3, 3, "K")
        assert plan.factors == (3,)
