"""Tests for structural audits."""

from __future__ import annotations

import pytest

from repro.analysis import critical_path, layer_profile, occupancy
from repro.baselines import bitonic_network
from repro.core import identity_network, single_balancer_network
from repro.networks import k_network, l_network


class TestLayerProfile:
    def test_one_profile_per_layer(self):
        net = k_network([2, 2, 2])
        profiles = layer_profile(net)
        assert len(profiles) == net.depth
        assert [p.layer for p in profiles] == list(range(net.depth))

    def test_balancer_totals(self):
        net = k_network([2, 3, 2])
        profiles = layer_profile(net)
        assert sum(p.balancers for p in profiles) == net.size
        assert sum(p.total_fanin for p in profiles) == sum(b.width for b in net.balancers)

    def test_coverage_bounded(self):
        for net in (k_network([2, 2, 2]), l_network([2, 2])):
            for p in layer_profile(net):
                assert 0 < p.coverage <= 1.0

    def test_identity_empty(self):
        assert layer_profile(identity_network(3)) == []


class TestOccupancy:
    def test_full_balancer_is_total(self):
        assert occupancy(single_balancer_network(4)) == 1.0

    def test_bitonic_layers_are_full(self):
        """Every bitonic layer is a perfect matching: occupancy 1."""
        assert occupancy(bitonic_network(16)) == pytest.approx(1.0)

    def test_l_networks_have_idle_wires(self):
        """R's degenerate quadrants leave some wires idle in some layers,
        so L's occupancy dips below 1 (ASAP packing keeps K at 1)."""
        assert occupancy(l_network([3, 2])) < 1.0
        assert occupancy(k_network([2, 2, 2, 2])) == pytest.approx(1.0)

    def test_identity_zero(self):
        assert occupancy(identity_network(4)) == 0.0


class TestCriticalPath:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: k_network([2, 2, 2]),
            lambda: l_network([2, 2]),
            lambda: bitonic_network(8),
            lambda: single_balancer_network(3),
        ],
    )
    def test_length_equals_depth(self, net_fn):
        net = net_fn()
        assert len(critical_path(net)) == net.depth

    def test_path_is_connected(self):
        net = k_network([2, 2, 2])
        path = critical_path(net)
        for a, b in zip(path, path[1:]):
            assert set(a.outputs) & set(b.inputs)

    def test_identity(self):
        assert critical_path(identity_network(2)) == []
