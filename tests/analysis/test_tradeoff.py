"""Tests for the factorization family trade-off (experiment E11)."""

from __future__ import annotations

import pytest

from repro.analysis import build_family, pareto_frontier


class TestBuildFamily:
    def test_one_entry_per_factorization(self):
        from repro.analysis import factorizations

        fam = build_family(24, "K")
        assert len(fam) == len(factorizations(24))

    def test_widths_constant(self):
        for e in build_family(36, "K"):
            assert e.stats.width == 36

    def test_depth_grows_with_n(self):
        """More factors -> more depth: the core trade-off direction."""
        fam = build_family(64, "K")
        by_n = {}
        for e in fam:
            by_n.setdefault(e.n, []).append(e.stats.depth)
        ns = sorted(by_n)
        for a, b in zip(ns, ns[1:]):
            assert max(by_n[a]) <= min(by_n[b])

    def test_max_balancer_shrinks_with_n(self):
        fam = build_family(64, "K")
        finest = min(fam, key=lambda e: e.stats.max_balancer_width)
        coarsest = max(fam, key=lambda e: e.stats.max_balancer_width)
        assert finest.n > coarsest.n

    def test_l_family_balancer_bound(self):
        for e in build_family(24, "L", max_factors=3):
            assert e.stats.max_balancer_width <= max(e.factors)

    def test_max_members_truncates(self):
        fam = build_family(64, "K", max_members=3)
        assert len(fam) == 3

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            build_family(8, "Z")

    def test_as_dict_round_trip(self):
        e = build_family(12, "K")[0]
        d = e.as_dict()
        assert d["width"] == 12
        assert "x" in d["factors"] or d["factors"] == "12"


class TestPareto:
    def test_frontier_subset(self):
        fam = build_family(64, "K")
        front = pareto_frontier(fam)
        assert set(f.factors for f in front) <= set(e.factors for e in fam)

    def test_no_dominated_entries(self):
        fam = build_family(64, "K")
        front = pareto_frontier(fam)
        for f in front:
            for other in fam:
                strictly_better = (
                    other.stats.depth <= f.stats.depth
                    and other.stats.max_balancer_width <= f.stats.max_balancer_width
                    and (
                        other.stats.depth < f.stats.depth
                        or other.stats.max_balancer_width < f.stats.max_balancer_width
                    )
                )
                assert not strictly_better

    def test_frontier_sorted(self):
        front = pareto_frontier(build_family(36, "K"))
        widths = [f.stats.max_balancer_width for f in front]
        assert widths == sorted(widths)
