"""Tests for the related-work comparison table (experiment E12)."""

from __future__ import annotations

from repro.analysis import comparison_table, power_of_two


class TestPowerOfTwo:
    def test_values(self):
        assert power_of_two(1)
        assert power_of_two(64)
        assert not power_of_two(0)
        assert not power_of_two(24)


class TestComparisonTable:
    def test_power_of_two_width_has_baselines(self):
        rows = comparison_table([16])
        names = [r["construction"] for r in rows]
        assert any("Bitonic" in n for n in names)
        assert any("Periodic" in n for n in names)
        assert any(n.startswith("K(") for n in names)
        assert any(n.startswith("L(") for n in names)

    def test_arbitrary_width_has_no_baselines(self):
        rows = comparison_table([30])
        names = [r["construction"] for r in rows]
        assert not any("Bitonic" in n for n in names)
        assert any(n.startswith("K(") for n in names)

    def test_l_rows_have_smallest_balancers(self):
        rows = comparison_table([24])
        l_row = next(r for r in rows if r["construction"].startswith("L("))
        k_row = next(r for r in rows if r["construction"].startswith("K(primes"))
        assert l_row["max_balancer"] <= k_row["max_balancer"]

    def test_widths_column_correct(self):
        rows = comparison_table([8, 12])
        assert {r["width"] for r in rows} == {8, 12}

    def test_large_width_skips_l(self):
        rows = comparison_table([64], max_l_width=10)
        assert not any(r["construction"].startswith("L(") for r in rows)


class TestStatsHelpers:
    def test_format_table_alignment(self):
        from repro.analysis import format_table

        text = format_table([{"a": 1, "bb": 22}, {"a": 333, "bb": 4}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_empty(self):
        from repro.analysis import format_table

        assert "no rows" in format_table([])

    def test_network_stats_fields(self):
        from repro.analysis import network_stats
        from repro.networks import k_network

        s = network_stats(k_network([2, 3]))
        assert s.width == 6
        assert s.total_fanin == 6
        assert s.as_dict()["depth"] == 1
