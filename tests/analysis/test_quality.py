"""Tests for the prefix-quality (load-balancing over time) analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import measure_prefix_quality, prefix_counts, prefix_quality
from repro.baselines import bitonic_network
from repro.core import identity_network
from repro.networks import k_network
from repro.sim import run_tokens


class TestPrefixCounts:
    def test_shape_and_monotonicity(self):
        net = k_network([2, 2])
        result = run_tokens(net, [5, 3, 0, 0], seed=1)
        counts = prefix_counts(result)
        assert counts.shape == (9, 4)
        assert (np.diff(counts.sum(axis=1)) == 1).all()
        assert list(counts[-1]) == list(result.output_counts)

    def test_empty_run(self):
        net = k_network([2, 2])
        result = run_tokens(net, [0, 0, 0, 0])
        q = prefix_quality(result)
        assert q.exits == 0
        assert q.max_smoothness == 0


class TestQualityMeasures:
    def test_counting_network_stays_balanced_under_skew(self):
        """All tokens on one wire: a counting network's exit stream stays
        nearly even at every prefix."""
        q = measure_prefix_quality(k_network([2, 2, 2]), 64, skew="single", seed=2)
        assert q.final_smoothness <= 1
        assert q.max_smoothness <= 8  # bounded by in-flight tokens, small

    def test_identity_degrades_under_skew(self):
        q_id = measure_prefix_quality(identity_network(8), 64, skew="single", seed=2)
        q_cnt = measure_prefix_quality(k_network([2, 2, 2]), 64, skew="single", seed=2)
        assert q_id.max_smoothness > 4 * q_cnt.max_smoothness
        assert q_id.final_smoothness == 64  # everything stayed on wire 0

    def test_half_skew(self):
        q = measure_prefix_quality(bitonic_network(8), 40, skew="half", seed=0)
        assert q.final_smoothness <= 1
        assert q.exits == 40

    def test_balanced_final_zero(self):
        q = measure_prefix_quality(k_network([2, 2]), 40, skew="balanced", seed=0)
        assert q.final_smoothness == 0

    def test_unknown_skew(self):
        with pytest.raises(ValueError):
            measure_prefix_quality(k_network([2, 2]), 8, skew="diagonal")

    def test_gap_to_ideal_nonnegative(self):
        q = measure_prefix_quality(k_network([2, 2]), 16, seed=5)
        assert q.max_gap_to_ideal >= 0


class TestWorstCaseSearch:
    def test_counting_network_bounded_under_adversity(self):
        from repro.analysis import worst_case_prefix

        q = worst_case_prefix(k_network([2, 2, 2]), 40, attempts=5)
        assert q.final_smoothness <= 1  # quiescent guarantee survives
        assert q.max_smoothness <= 10  # mid-flight stays modest

    def test_worse_than_single_run(self):
        """The adversarial search never reports better than any single
        run it contains."""
        from repro.analysis import measure_prefix_quality, worst_case_prefix

        net = k_network([2, 2])
        single = measure_prefix_quality(net, 24, scheduler="random", seed=0)
        worst = worst_case_prefix(net, 24, attempts=3)
        assert worst.max_smoothness >= single.max_smoothness
