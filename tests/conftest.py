"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng() -> np.random.Generator:
    return np.random.default_rng(999)
