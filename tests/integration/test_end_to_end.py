"""Cross-module integration scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ThreadedCounter,
    fetch_and_increment_values,
    k_network,
    l_network,
    propagate_counts,
    run_tokens,
    sorted_outputs,
)
from repro.core.sequences import is_step
from repro.verify import all_zero_one, find_counting_violation, sorts_batch


class TestIsomorphism:
    """Paper Figure 1/2: counting networks double as sorting networks."""

    @pytest.mark.parametrize("factors", [[2, 3], [2, 2, 2], [3, 2, 2], [5, 3, 2]])
    def test_counting_implies_sorting(self, factors, rng):
        net = k_network(factors)
        assert find_counting_violation(net) is None
        vals = rng.permutation(net.width)
        assert list(sorted_outputs(net, vals)) == sorted(vals)

    def test_figure_2_sizes_two_three_five(self):
        """The paper's running example uses balancers of sizes 2, 3 and 5:
        K(5,3,2) realizes exactly that and both interprets correctly."""
        net = k_network([5, 3, 2])
        widths = set(net.balancer_width_histogram())
        assert widths <= {2, 3, 4, 5, 6, 10, 15}
        assert find_counting_violation(net) is None

    def test_sorting_does_not_imply_counting(self):
        """Paper Figure 3, end to end: bubble sorts every 0-1 input yet has
        a counting violation, and the violation reproduces in the token
        simulator."""
        from repro.baselines import bubble_network

        net = bubble_network(5)
        assert sorts_batch(net, all_zero_one(5)) is None
        v = find_counting_violation(net)
        assert v is not None
        result = run_tokens(net, list(v.input_counts))
        assert not is_step(result.output_counts)


class TestCounterService:
    """Counting network as a concurrent Fetch&Increment counter."""

    def test_token_sim_counter(self, rng):
        net = l_network([3, 2, 2])
        x = list(rng.integers(0, 4, size=net.width))
        result = run_tokens(net, x, scheduler="straggler", seed=11)
        values = fetch_and_increment_values(result)
        assert sorted(values.values()) == list(range(sum(x)))

    def test_threaded_counter_on_family_members(self):
        for factors in ([2, 2, 2], [4, 2]):
            counter = ThreadedCounter(k_network(factors))
            stats = counter.run_threads(n_threads=4, ops_per_thread=10)
            assert sorted(stats.all_values()) == list(range(40))


class TestBatchSortingService:
    def test_sorts_many_batches_vectorized(self, rng):
        net = k_network([4, 4])
        batch = rng.integers(-1000, 1000, size=(256, 16))
        out = sorted_outputs(net, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_float_payloads(self, rng):
        net = k_network([2, 3])
        batch = rng.random((64, 6))
        out = sorted_outputs(net, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))


class TestExhaustiveProofsSmallWidths:
    """For tiny widths we can PROVE the properties, not just sample."""

    def test_k8_counts_all_vectors_up_to_3(self):
        from repro.verify import exhaustive_counts

        net = k_network([2, 2, 2])
        for batch in exhaustive_counts(net.width, 3):
            out = propagate_counts(net, batch)
            assert bool(np.all(out[:, :-1] >= out[:, 1:]))
            assert bool(np.all(out[:, 0] - out[:, -1] <= 1))

    def test_l6_counts_all_vectors_up_to_4(self):
        from repro.verify import exhaustive_counts

        net = l_network([3, 2])
        for batch in exhaustive_counts(net.width, 4):
            out = propagate_counts(net, batch)
            assert bool(np.all(out[:, :-1] >= out[:, 1:]))
            assert bool(np.all(out[:, 0] - out[:, -1] <= 1))


class TestSerialization:
    def test_networks_survive_round_trip_with_semantics(self, rng):
        from repro.core import Network

        net = l_network([2, 3])
        clone = Network.from_dict(net.to_dict())
        x = rng.integers(0, 15, size=net.width)
        assert list(propagate_counts(net, x)) == list(propagate_counts(clone, x))


class TestFamilyEndToEnd:
    def test_every_family_member_of_24_counts(self):
        from repro.analysis import build_family

        for entry in build_family(24, "K"):
            net = k_network(list(entry.factors))
            assert find_counting_violation(net) is None, entry.factors

    def test_width_60_l_family_small_balancers(self):
        """Width 60 = 5*3*2*2: balancers of width at most 5 suffice."""
        net = l_network([5, 3, 2, 2])
        assert net.max_balancer_width <= 5
        assert find_counting_violation(net) is None
