"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, args: list[str] | None = None, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *(args or [])],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "step property holds: True" in out
        assert "none found (counting network)" in out

    def test_concurrent_counter(self):
        out = run_example("concurrent_counter.py")
        assert "exact range" in out
        assert "True" in out

    def test_factorization_tradeoff_small_width(self):
        out = run_example("factorization_tradeoff.py", ["12"])
        assert "Pareto frontier" in out
        assert "3x2x2" in out

    def test_sorting_service(self):
        out = run_example("sorting_service.py")
        assert "results match: True" in out

    def test_network_gallery(self):
        out = run_example("network_gallery.py")
        assert "counting fails" in out
        assert "step property: True" in out

    def test_linearizability_demo(self):
        out = run_example("linearizability_demo.py")
        assert "linearizable: True" in out
        assert "non-linearizable" in out

    def test_load_balancer(self):
        out = run_example("load_balancer.py")
        assert "distributor" in out
        assert "step property" in out

    def test_export_hardware(self, tmp_path):
        out = run_example("export_hardware.py", [str(tmp_path)])
        assert "round-trips" in out
        assert "per-layer resource usage" in out
