"""Tests for the bitonic-converter D(p, q) — paper §4.4, Figure 12."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequences import is_step, make_step
from repro.networks import bitonic_converter
from repro.sim import propagate_counts
from repro.verify import verify_bitonic_converter

SHAPES = [(2, 2), (2, 3), (3, 2), (3, 3), (4, 3), (3, 5), (5, 4), (2, 7), (7, 2)]


class TestStructure:
    @pytest.mark.parametrize("p,q", SHAPES)
    def test_depth_two(self, p, q):
        assert bitonic_converter(p, q).depth <= 2

    @pytest.mark.parametrize("p,q", SHAPES)
    def test_size(self, p, q):
        # p row balancers of width q plus q column balancers of width p.
        net = bitonic_converter(p, q)
        assert net.size == p + q
        assert net.balancer_width_histogram() == ({q: p, p: q} if p != q else {p: p + q})

    def test_degenerate_dims(self):
        assert bitonic_converter(1, 4).depth <= 1
        assert bitonic_converter(4, 1).depth <= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            bitonic_converter(0, 3)


class TestContract:
    @pytest.mark.parametrize("p,q", SHAPES)
    def test_random_bitonic_inputs(self, p, q):
        assert verify_bitonic_converter(bitonic_converter(p, q), trials=400) is None

    @pytest.mark.parametrize("p,q", [(2, 2), (2, 3), (3, 3), (4, 2)])
    def test_exhaustive_rotated_steps(self, p, q):
        """Every rotation of every bounded step sequence — exactly the
        bitonic sequences — converts to a step sequence."""
        w = p * q
        net = bitonic_converter(p, q)
        rows = []
        for total in range(2 * w + 1):
            base = make_step(w, total)
            for shift in range(w):
                rows.append(np.roll(base, shift))
        out = propagate_counts(net, np.stack(rows))
        for row in out:
            assert is_step(row)

    def test_totals_preserved(self):
        net = bitonic_converter(3, 3)
        x = np.roll(make_step(9, 5), 4)
        out = propagate_counts(net, x)
        assert int(out.sum()) == 5
        assert is_step(out)

    def test_non_bitonic_input_can_fail(self):
        """The contract genuinely needs bitonicity: some 2-smooth input
        yields a non-step output."""
        from repro.verify import find_counting_violation

        net = bitonic_converter(3, 3)
        assert find_counting_violation(net) is not None
