"""Tests for the staircase-merger S(r, p, q) — paper §4.3 / §4.3.1."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.sequences import is_step, make_step
from repro.networks import STAIRCASE_VARIANTS, staircase_merger
from repro.networks.depth_formulas import staircase_depth
from repro.sim import propagate_counts
from repro.verify import verify_staircase_merger

SHAPES = [(2, 2, 2), (2, 2, 3), (3, 2, 2), (3, 3, 2), (4, 2, 3), (5, 2, 2), (2, 4, 2), (6, 2, 2), (3, 2, 4)]


class TestAllVariants:
    @pytest.mark.parametrize("variant", STAIRCASE_VARIANTS)
    @pytest.mark.parametrize("r,p,q", SHAPES)
    def test_contract(self, variant, r, p, q):
        net = staircase_merger(r, p, q, variant=variant)
        assert verify_staircase_merger(net, r, p, q, trials=250) is None

    @pytest.mark.parametrize("variant", STAIRCASE_VARIANTS)
    @pytest.mark.parametrize("r,p,q", SHAPES)
    def test_depth_formula_bound(self, variant, r, p, q):
        """Depth per §4.3/§4.3.1 with the default base d = 1 (one
        balancer)."""
        net = staircase_merger(r, p, q, variant=variant)
        assert net.depth <= staircase_depth(variant, d=1)

    @pytest.mark.parametrize("r,p,q", SHAPES)
    def test_opt_rescan_depth_exact(self, r, p, q):
        assert staircase_merger(r, p, q, variant="opt_rescan").depth == 3

    @pytest.mark.parametrize("r,p,q", SHAPES)
    def test_opt_bitonic_depth_exact(self, r, p, q):
        assert staircase_merger(r, p, q, variant="opt_bitonic").depth == 4

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            staircase_merger(2, 2, 2, variant="bogus")


class TestExhaustiveSmall:
    @pytest.mark.parametrize("variant", STAIRCASE_VARIANTS)
    def test_exhaustive_staircase_inputs(self, variant):
        """All step inputs with the p-staircase property for S(2, 2, 2),
        bounded totals — a complete check of the contract's input space up
        to the bound."""
        r, p, q = 2, 2, 2
        ln = r * p
        net = staircase_merger(r, p, q, variant=variant)
        rows = []
        for base_total in range(10):
            for deltas in itertools.product(range(p + 1), repeat=q):
                if sorted(deltas, reverse=True) != list(deltas):
                    continue  # sums must be non-increasing
                row = np.concatenate([make_step(ln, base_total + d) for d in deltas])
                rows.append(row)
        out = propagate_counts(net, np.stack(rows))
        for i, row in enumerate(out):
            assert is_step(row), f"variant={variant} input={rows[i]}"


class TestOddBlockSizes:
    @pytest.mark.parametrize("variant", ("opt_rescan", "opt_bitonic"))
    def test_odd_pq_layer_ell(self, variant):
        """p*q odd leaves a middle element untouched by layer ℓ."""
        net = staircase_merger(3, 3, 3, variant=variant)
        assert verify_staircase_merger(net, 3, 3, 3, trials=250) is None

    @pytest.mark.parametrize("variant", STAIRCASE_VARIANTS)
    def test_odd_r_wrap_layer(self, variant):
        """Odd r exercises the third merge layer / the wrap pair of ℓ."""
        net = staircase_merger(5, 2, 3, variant=variant)
        assert verify_staircase_merger(net, 5, 2, 3, trials=250) is None


class TestStructure:
    def test_width(self):
        assert staircase_merger(3, 2, 4).width == 24

    def test_input_length_validation(self):
        from repro.core import NetworkBuilder
        from repro.networks import build_staircase_merger
        from repro.networks.counting import single_balancer_base

        b = NetworkBuilder(8)
        with pytest.raises(ValueError, match="length"):
            build_staircase_merger(b, [[0, 1, 2], [3, 4, 5, 6]], 2, 2, single_balancer_base)

    def test_small_variant_balancer_bound(self):
        net = staircase_merger(3, 3, 3, variant="small")
        # All balancers at width <= max(2, p, q) = 3 except the base C(p,q);
        # base is one p*q balancer here, so bound is p*q.
        non_base = [b for b in net.balancers if b.width < 9]
        assert all(b.width <= 3 for b in non_base)

    def test_custom_base_is_used(self):
        """Plugging a custom base factory changes the block counting
        layer."""
        calls = []

        def spy_base(b, wires, p, q):
            calls.append((p, q))
            return b.maybe_balancer(wires)

        staircase_merger(3, 2, 2, variant="opt_rescan", base=spy_base)
        # opt_rescan applies the base twice per block: r blocks x 2.
        assert len(calls) == 6
        assert all(c == (2, 2) for c in calls)


class TestContractTightness:
    @pytest.mark.parametrize("variant", ("opt_rescan", "opt_bitonic"))
    def test_staircase_property_is_needed(self, variant):
        """The p-staircase precondition is tight: step inputs whose sums
        differ by more than p break S(4,2,3) (sum gaps of 3 > p = 2
        between consecutive inputs)."""
        r, p, q = 4, 2, 3
        net = staircase_merger(r, p, q, variant=variant)
        ln = r * p
        gap, base = 3, 1
        xs = [make_step(ln, base + gap * (q - 1 - i)) for i in range(q)]
        x = np.concatenate(xs)
        assert not is_step(propagate_counts(net, x))

    def test_step_inputs_are_needed(self):
        """Arbitrary (non-step) inputs break S(3,2,2): the staircase-merger
        is not itself a counting network."""
        from repro.verify import find_counting_violation

        assert find_counting_violation(staircase_merger(3, 2, 2)) is not None

    def test_small_shapes_count_incidentally(self):
        """For r = 2 the two wide base balancers dominate and S happens to
        count for any input — documenting why the negative tests above use
        larger r."""
        from repro.verify import find_counting_violation

        assert find_counting_violation(staircase_merger(2, 2, 2)) is None


class TestWithRBase:
    """The staircase as the L family actually uses it: base C(p,q) = R(p,q)."""

    @pytest.mark.parametrize("variant", ("opt_rescan", "opt_bitonic"))
    @pytest.mark.parametrize("r,p,q", [(2, 2, 3), (3, 2, 2), (2, 3, 3)])
    def test_contract_with_r_base(self, variant, r, p, q):
        from repro.networks.r_network import r_base

        net = staircase_merger(r, p, q, variant=variant, base=r_base)
        assert verify_staircase_merger(net, r, p, q, trials=200) is None

    def test_balancer_bound_with_r_base(self):
        from repro.networks.r_network import r_base

        net = staircase_merger(3, 3, 3, variant="opt_bitonic", base=r_base)
        assert net.max_balancer_width <= 3
