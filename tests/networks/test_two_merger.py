"""Tests for the two-merger T(p, q0, q1) — paper §4.4, Proposition 5."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.sequences import is_step, make_step
from repro.networks import two_merger
from repro.sim import propagate_counts
from repro.verify import verify_two_merger


ALL_SHAPES = [(2, 1, 1), (2, 2, 2), (2, 1, 3), (3, 2, 2), (3, 1, 2), (4, 2, 3), (5, 3, 3), (1, 2, 3)]


class TestStructure:
    @pytest.mark.parametrize("p,q0,q1", ALL_SHAPES)
    def test_depth_at_most_two(self, p, q0, q1):
        assert two_merger(p, q0, q1).depth <= 2

    @pytest.mark.parametrize("p,q0,q1", ALL_SHAPES)
    def test_width(self, p, q0, q1):
        assert two_merger(p, q0, q1).width == p * (q0 + q1)

    def test_balancer_widths(self):
        net = two_merger(4, 3, 2)
        hist = net.balancer_width_histogram()
        assert set(hist) == {4, 5}  # p-balancers and (q0+q1)-balancers
        assert hist[5] == 4  # one per row
        assert hist[4] == 5  # one per column

    def test_zero_q0_passthrough(self):
        net = two_merger(3, 0, 2)
        assert net.width == 6
        assert net.size == 0  # pure passthrough

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            two_merger(2, 0, 0)
        with pytest.raises(ValueError):
            two_merger(2, -1, 2)


class TestContract:
    @pytest.mark.parametrize("p,q0,q1", ALL_SHAPES)
    def test_random_step_inputs(self, p, q0, q1):
        assert verify_two_merger(two_merger(p, q0, q1), p, q0, q1, trials=300) is None

    def test_exhaustive_small(self):
        """All pairs of step inputs with bounded totals for T(2,2,2)."""
        p, q0, q1 = 2, 2, 2
        net = two_merger(p, q0, q1)
        rows = []
        for t0, b0, t1, b1 in itertools.product(range(9), range(2), range(9), range(2)):
            x0 = make_step(p * q0, t0, b0)
            x1 = make_step(p * q1, t1, b1)
            rows.append(np.concatenate([x0, x1]))
        out = propagate_counts(net, np.stack(rows))
        for row_out in out:
            assert is_step(row_out)

    def test_output_total_preserved(self, rng):
        net = two_merger(3, 2, 2)
        x = np.concatenate([make_step(6, 7), make_step(6, 4)])
        out = propagate_counts(net, x)
        assert int(out.sum()) == 11


class TestSmallVariant:
    @pytest.mark.parametrize("p,q", [(2, 2), (3, 2), (3, 3), (4, 3), (2, 4)])
    def test_small_correct(self, p, q):
        net = two_merger(p, q, q, small=True)
        assert verify_two_merger(net, p, q, q, trials=300) is None

    @pytest.mark.parametrize("p,q", [(2, 2), (3, 3), (4, 2)])
    def test_small_balancer_width_bound(self, p, q):
        """The substitution keeps balancers at width <= max(2, p, q) instead
        of 2q."""
        net = two_merger(p, q, q, small=True)
        assert net.max_balancer_width <= max(2, p, q)

    def test_small_depth_bound(self):
        # Nested rows add at most 3 extra layers over the plain T.
        assert two_merger(3, 3, 3, small=True).depth <= 5

    def test_small_requires_equal_halves(self):
        with pytest.raises(ValueError, match="q0 == q1"):
            two_merger(2, 1, 3, small=True)
