"""Tests for the generic C and M constructions — paper §4.1/§4.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequences import is_step
from repro.networks import counting_network, merger_network, normalize_factors
from repro.networks.depth_formulas import counting_depth, merger_depth, staircase_depth
from repro.sim import propagate_counts
from repro.verify import find_counting_violation, verify_merger


class TestNormalizeFactors:
    def test_strips_units(self):
        assert normalize_factors([1, 3, 1, 2]) == [3, 2]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            normalize_factors([2, 0])

    def test_empty_ok(self):
        assert normalize_factors([1, 1]) == []


class TestCountingNetwork:
    @pytest.mark.parametrize(
        "factors", [[2, 2], [3, 2], [2, 2, 2], [2, 3, 2], [4, 3, 2], [2, 2, 2, 2], [3, 2, 2, 2]]
    )
    def test_counts(self, factors):
        assert find_counting_violation(counting_network(factors)) is None

    def test_width_is_product(self):
        assert counting_network([2, 3, 4]).width == 24

    def test_unit_factors_ignored(self):
        a = counting_network([2, 1, 3])
        b = counting_network([2, 3])
        assert a.width == b.width == 6
        assert a.size == b.size

    def test_single_factor_is_one_balancer(self):
        net = counting_network([5])
        assert net.size == 1
        assert net.depth == 1

    def test_width_one(self):
        net = counting_network([1])
        assert net.width == 1
        assert net.size == 0

    def test_mismatched_width_internal_guard(self):
        from repro.core import NetworkBuilder
        from repro.networks import build_counting
        from repro.networks.counting import single_balancer_base

        b = NetworkBuilder(5)
        with pytest.raises(ValueError, match="product"):
            build_counting(b, list(b.inputs), [2, 2], single_balancer_base)

    @pytest.mark.parametrize("variant", ["basic", "small", "opt_rescan", "opt_bitonic"])
    def test_all_staircase_variants_count(self, variant):
        net = counting_network([2, 2, 3], variant=variant)
        assert find_counting_violation(net) is None

    @pytest.mark.parametrize("n,factors", [(2, [2, 3]), (3, [2, 2, 2]), (4, [2, 2, 2, 2]), (5, [2, 2, 2, 2, 2])])
    def test_depth_matches_proposition_1(self, n, factors):
        """Proposition 1 with d = 1 (single-balancer base) and the
        opt_rescan staircase (depth 3)."""
        net = counting_network(factors, variant="opt_rescan")
        assert net.depth == counting_depth(n, d=1, depth_s=staircase_depth("opt_rescan", 1))

    def test_factor_order_preserves_depth(self):
        """Each ordering of a fixed factor set yields the same depth
        (paper §1, final parenthesis)."""
        depths = {
            counting_network(list(perm)).depth
            for perm in ([2, 3, 4], [4, 3, 2], [3, 4, 2], [2, 4, 3])
        }
        assert len(depths) == 1


class TestMergerNetwork:
    @pytest.mark.parametrize("factors", [[2, 3], [3, 2], [2, 2, 2], [2, 3, 2], [3, 2, 2, 2]])
    def test_merges_step_inputs(self, factors):
        from math import prod

        net = merger_network(factors)
        lengths = [prod(factors[:-1])] * factors[-1]
        assert verify_merger(net, lengths, trials=300) is None

    @pytest.mark.parametrize("n,factors", [(2, [2, 3]), (3, [2, 2, 3]), (4, [2, 2, 2, 2]), (5, [2, 2, 2, 2, 2])])
    def test_depth_matches_proposition_3(self, n, factors):
        net = merger_network(factors, variant="opt_rescan")
        assert net.depth == merger_depth(n, d=1, depth_s=3)

    def test_rejects_single_factor(self):
        with pytest.raises(ValueError):
            merger_network([4])

    def test_merger_is_not_necessarily_counting(self):
        """A merger's guarantee only covers step inputs: larger mergers let
        some non-step input through unsorted (this is what distinguishes M
        from C).  Small mergers like M(2,2,2) happen to count because their
        wide base balancers dominate — so the distinction only appears at
        n = 4 or with factor 3 copies."""
        assert find_counting_violation(merger_network([2, 2, 2, 2])) is not None
        assert find_counting_violation(merger_network([3, 3, 2])) is not None

    def test_input_validation(self):
        from repro.core import NetworkBuilder
        from repro.networks import build_merger
        from repro.networks.counting import single_balancer_base

        b = NetworkBuilder(8)
        with pytest.raises(ValueError, match="input sequences"):
            build_merger(b, [[0, 1, 2, 3]], [2, 2, 2], single_balancer_base)


class TestStairwayIntoMerger:
    def test_proposition_2_staircase_property(self, rng):
        """The intermediate Y_i sequences of M satisfy the p(n-1)-staircase
        property (Proposition 2) — verified by slicing an actual run."""
        from math import prod

        from repro.core.sequences import is_staircase, make_step
        from repro.core import NetworkBuilder
        from repro.networks import build_merger
        from repro.networks.counting import single_balancer_base

        factors = [2, 3, 2]  # n = 3: q = 3 copies, p = 2 inputs
        block = prod(factors[:-1])

        captured: list[list[int]] = []

        def capture_staircase(b, inputs, r, p, base, variant="opt_rescan"):
            captured.extend(inputs)
            from repro.networks.staircase import build_staircase_merger

            return build_staircase_merger(b, inputs, r, p, base, variant)

        import repro.networks.counting as counting_mod

        b = NetworkBuilder(block * factors[-1])
        wires = list(b.inputs)
        inputs = [wires[i * block : (i + 1) * block] for i in range(factors[-1])]
        original = counting_mod.build_staircase_merger
        counting_mod.build_staircase_merger = capture_staircase
        try:
            out = build_merger(b, inputs, factors, single_balancer_base)
        finally:
            counting_mod.build_staircase_merger = original
        net = b.finish(out)

        # Feed step inputs and read back the captured Y_i wires.
        x = np.concatenate([make_step(block, int(t)) for t in rng.integers(0, 20, size=factors[-1])])
        from repro.sim.count_sim import propagate_counts_reference
        import numpy as _np

        state = _np.zeros(net.num_wires, dtype=_np.int64)
        for pos, wire in enumerate(net.inputs):
            state[wire] = x[pos]
        for bal in net.balancers:
            total = int(sum(state[w] for w in bal.inputs))
            for j, wire in enumerate(bal.outputs):
                state[wire] = (total - j + bal.width - 1) // bal.width
        ys = [[int(state[w]) for w in y] for y in captured]
        assert is_staircase(ys, factors[-1])


class TestBaseVariantMatrix:
    """Every (base, variant) combination yields a counting network."""

    @pytest.mark.parametrize("variant", ["basic", "small", "opt_rescan", "opt_bitonic"])
    @pytest.mark.parametrize("base_name", ["balancer", "r"])
    def test_all_combinations_count(self, variant, base_name):
        from repro.networks.counting import single_balancer_base
        from repro.networks.r_network import r_base

        base = single_balancer_base if base_name == "balancer" else r_base
        net = counting_network([2, 3, 2], base=base, variant=variant)
        assert find_counting_violation(net) is None, (base_name, variant)

    def test_r_base_keeps_factor_bound_under_every_variant(self):
        from repro.networks.r_network import r_base

        for variant in ("opt_rescan", "opt_bitonic"):
            net = counting_network([3, 2, 2], base=r_base, variant=variant)
            assert net.max_balancer_width <= 3, variant
