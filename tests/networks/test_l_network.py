"""Tests for the L family — paper §5.2, Theorem 7 (the headline result)."""

from __future__ import annotations

import pytest

from repro.networks import l_network
from repro.networks.depth_formulas import l_depth_bound
from repro.verify import find_counting_violation, find_sorting_violation

FACTORIZATIONS = [
    [2, 2],
    [2, 3],
    [3, 4],
    [5, 5],
    [2, 2, 2],
    [2, 3, 4],
    [3, 3, 3],
    [5, 2, 3],
    [2, 2, 2, 2],
    [3, 2, 2, 2],
]


class TestCorrectness:
    @pytest.mark.parametrize("factors", FACTORIZATIONS)
    def test_counts(self, factors):
        assert find_counting_violation(l_network(factors)) is None

    @pytest.mark.parametrize("factors", [[2, 2], [2, 3], [2, 2, 2], [2, 2, 2, 2]])
    def test_sorts_by_zero_one_principle(self, factors):
        assert find_sorting_violation(l_network(factors)) is None


class TestTheorem7:
    @pytest.mark.parametrize("factors", FACTORIZATIONS)
    def test_depth_within_bound(self, factors):
        """depth(L) <= 9.5 n^2 - 12.5 n + 3."""
        assert l_network(factors).depth <= l_depth_bound(len(factors))

    @pytest.mark.parametrize("factors", FACTORIZATIONS)
    def test_balancer_width_at_most_max_factor(self, factors):
        """THE headline property: balancers no wider than max(p_i)."""
        net = l_network(factors)
        assert net.max_balancer_width <= max(factors)

    def test_bound_values(self):
        # 9.5 n^2 - 12.5 n + 3 at n = 2..5.
        assert [l_depth_bound(n) for n in range(2, 6)] == [16, 51, 105, 178]

    def test_depth_well_below_bound_in_practice(self):
        """The bound is loose for small factors — record the slack so
        regressions that blow up depth are caught early."""
        net = l_network([2, 3, 4])
        assert net.depth <= 20

    def test_arbitrary_width_example(self):
        """Width 30 = 2*3*5 — no power-of-two baseline exists at this
        width; L covers it with balancers of width <= 5."""
        net = l_network([5, 3, 2])
        assert net.width == 30
        assert net.max_balancer_width <= 5
        assert find_counting_violation(net) is None


class TestLargePrimeFactors:
    def test_large_prime_factor_respects_bound(self):
        """A big prime factor becomes the balancer budget: L(17,2) uses
        balancers no wider than 17 and still counts."""
        from repro.verify import find_counting_violation

        net = l_network([17, 2])
        assert net.width == 34
        assert net.max_balancer_width <= 17
        assert find_counting_violation(net) is None

    def test_prime_pair(self):
        net = l_network([13, 11])
        assert net.max_balancer_width <= 13
        assert net.depth <= 16  # n = 2: L is just R
