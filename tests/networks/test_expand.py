"""Tests for comparator expansion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import single_balancer_network
from repro.networks import expand_comparators, expanded_depth, k_network
from repro.sim import evaluate_comparators
from repro.verify import find_sorting_violation


class TestExpansion:
    @pytest.mark.parametrize("factors", [[4, 3], [5, 2], [2, 3, 2], [4, 4]])
    def test_expanded_network_sorts(self, factors):
        exp = expand_comparators(k_network(factors))
        assert find_sorting_violation(exp) is None

    def test_only_two_comparators_remain(self):
        exp = expand_comparators(k_network([5, 3, 2]))
        assert exp.max_balancer_width == 2

    def test_same_sorting_function(self, rng):
        net = k_network([3, 2, 2])
        exp = expand_comparators(net)
        batch = rng.integers(-50, 50, size=(30, net.width))
        assert np.array_equal(evaluate_comparators(net, batch), evaluate_comparators(exp, batch))

    def test_two_comparator_networks_unchanged(self):
        from repro.baselines import bitonic_network

        net = bitonic_network(8)
        exp = expand_comparators(net)
        assert exp.size == net.size
        assert exp.depth == net.depth

    def test_threshold_keeps_mid_widths(self):
        net = k_network([4, 3])  # one 12-balancer
        exp4 = expand_comparators(net, threshold=4)
        # The 12-comparator is expanded, but any 3/4-wide pieces would stay.
        assert exp4.max_balancer_width <= 4

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            expand_comparators(single_balancer_network(3), threshold=1)

    def test_expanded_depth_helper(self):
        net = k_network([4, 4])
        assert expanded_depth(net) == expand_comparators(net).depth

    def test_single_wide_comparator_expands_to_batcher(self):
        from repro.baselines import batcher_any_network

        exp = expand_comparators(single_balancer_network(12))
        ref = batcher_any_network(12)
        assert exp.depth == ref.depth
        assert exp.size == ref.size


class TestExpandedFamilyShape:
    def test_coarser_factorization_shallower_after_expansion(self):
        """On binary hardware the trade-off collapses: fewer, wider
        comparators expand to the shallower network."""
        coarse = expanded_depth(k_network([8, 8]))
        fine = expanded_depth(k_network([2, 2, 2, 2, 2, 2]))
        assert coarse < fine

    def test_expansion_never_decreases_depth(self):
        for factors in ([4, 4], [2, 3, 4]):
            net = k_network(factors)
            assert expanded_depth(net) >= net.depth
