"""White-box tests for the R(p, q) quadrant construction (§5.3)."""

from __future__ import annotations

from math import isqrt

import numpy as np
import pytest

from repro.core import NetworkBuilder
from repro.core.sequences import is_step
from repro.networks.r_network import _band, _k_step
from repro.sim import propagate_counts
from repro.verify import random_counts


def close_over(build_fn, width):
    """Build a standalone network around a builder-level helper."""
    b = NetworkBuilder(width)
    out = build_fn(b, list(b.inputs))
    return b.finish(out)


class TestKStepHelper:
    @pytest.mark.parametrize("factors,width", [([2, 2], 4), ([3, 2, 2], 12), ([1, 3, 3], 9)])
    def test_outputs_step_for_any_input(self, factors, width, rng):
        net = close_over(lambda b, w: _k_step(b, w, factors), width)
        outs = propagate_counts(net, random_counts(width, 128, rng))
        for row in outs:
            assert is_step(row)

    def test_empty_wires(self):
        b = NetworkBuilder(2)
        assert _k_step(b, [], [2, 2]) == []


class TestBandHelper:
    @pytest.mark.parametrize("h,cols", [(2, 3), (2, 1), (3, 2), (1, 4), (2, 5)])
    def test_band_counts(self, h, cols, rng):
        width = h * h * cols
        net = close_over(lambda b, w: _band(b, w, h, cols), width)
        outs = propagate_counts(net, random_counts(width, 128, rng))
        for row in outs:
            assert is_step(row)

    @pytest.mark.parametrize("h,cols", [(2, 3), (3, 2), (2, 5)])
    def test_band_balancer_width(self, h, cols):
        """Band balancers stay within the §5.3 budget: K pieces use widths
        <= max(h², ceil(cols/2)*h) and the two-merger adds h² and cols."""
        width = h * h * cols
        net = close_over(lambda b, w: _band(b, w, h, cols), width)
        c1 = cols - cols // 2
        bound = max(h * h, c1 * h, cols)
        assert net.max_balancer_width <= bound

    def test_band_empty(self):
        b = NetworkBuilder(2)
        assert _band(b, [], 2, 0) == []


class TestQuadrantAccounting:
    @pytest.mark.parametrize("p,q", [(5, 7), (6, 10), (11, 13), (8, 9)])
    def test_quadrant_sizes_partition_the_width(self, p, q):
        ph, qh = isqrt(p), isqrt(q)
        pb, qb = p - ph * ph, q - qh * qh
        sizes = [ph * ph * qh * qh, ph * ph * qb, pb * qh * qh, pb * qb]
        assert sum(sizes) == p * q

    @pytest.mark.parametrize("p,q", [(5, 5), (7, 10), (12, 12)])
    def test_d_quadrant_block_sizes(self, p, q):
        ph, qh = isqrt(p), isqrt(q)
        pb, qb = p - ph * ph, q - qh * qh
        p0_, p1_ = pb // 2, pb - pb // 2
        q0_, q1_ = qb // 2, qb - qb // 2
        assert p0_ * q0_ + p0_ * q1_ + p1_ * q0_ + p1_ * q1_ == pb * qb
        # Eq. 3 guarantees each D block fits one balancer of the budget.
        m = max(p, q)
        for size in (p0_ * q0_, p0_ * q1_, p1_ * q0_, p1_ * q1_):
            assert size <= m


class TestRDepthTightness:
    def test_depth_16_requires_nonsquare_both(self):
        """Depth 16 arises when both p and q have remainders (full quadrant
        cascade); perfect squares short-circuit to the A path."""
        from repro.networks import r_network

        assert r_network(9, 9).depth < 16  # both perfect squares
        assert r_network(6, 6).depth == 16  # both with remainders

    def test_square_times_nonsquare(self):
        from repro.networks import r_network

        net = r_network(9, 8)
        assert net.depth <= 16
        assert net.max_balancer_width <= 9
