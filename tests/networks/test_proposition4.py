"""Proof-tracing tests for Proposition 4 (paper §4.3.1).

Proposition 4: after the 2-balancer layer ℓ, the inter-block discrepancy
spans a single block A_i, and that block satisfies the bitonic property.
These tests build layer ℓ *standalone* and drive it with exactly the
configurations of the proof's case analysis (cases (a)/(b), adjacent and
wrap-around), checking the claimed post-state block by block.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import NetworkBuilder
from repro.core.sequences import is_bitonic, is_step, make_step
from repro.networks.staircase import _layer_ell
from repro.sim import propagate_counts


def layer_ell_network(r: int, p: int, q: int):
    """A width r*p*q network consisting of layer ℓ alone; block k occupies
    input positions [k*p*q, (k+1)*p*q)."""
    b = NetworkBuilder(r * p * q)
    wires = list(b.inputs)
    pq = p * q
    blocks = [wires[k * pq : (k + 1) * pq] for k in range(r)]
    _layer_ell(b, blocks, pq // 2)
    return b.finish([w for blk in blocks for w in blk])


def run_blocks(net, blocks: list[np.ndarray]) -> list[np.ndarray]:
    x = np.concatenate(blocks)
    out = propagate_counts(net, x)
    pq = len(blocks[0])
    return [out[k * pq : (k + 1) * pq] for k in range(len(blocks))]


class TestAdjacentCases:
    """Discrepancy spans A_i, A_{i+1} with 0/1 values (proof cases a/b)."""

    @pytest.mark.parametrize("r,p,q", [(3, 2, 2), (4, 2, 3), (3, 3, 3)])
    def test_all_zero_one_splits(self, r, p, q):
        pq = p * q
        net = layer_ell_network(r, p, q)
        for i in range(r - 1):
            # A_i = [1^o_i 0^...], A_{i+1} = [1^o_{i+1} 0^...], o_i >= o_{i+1};
            # blocks above are all-1, below all-0 (the global staircase).
            for o_i, o_i1 in itertools.product(range(pq + 1), repeat=2):
                if o_i < o_i1:
                    continue
                blocks = []
                for k in range(r):
                    if k < i:
                        blocks.append(np.ones(pq, dtype=np.int64))
                    elif k == i:
                        blocks.append(make_step(pq, o_i))
                    elif k == i + 1:
                        blocks.append(make_step(pq, o_i1))
                    else:
                        blocks.append(np.zeros(pq, dtype=np.int64))
                outs = run_blocks(net, blocks)
                # Proposition 4: every block bitonic, at most one
                # non-constant ("the discrepancy spans only one A_i").
                assert all(is_bitonic(o) for o in outs), (i, o_i, o_i1)
                non_const = [k for k, o in enumerate(outs) if o.max() != o.min()]
                assert len(non_const) <= 1, (i, o_i, o_i1, [o.tolist() for o in outs])

    def test_case_a_shape(self):
        """Case (a) of the proof verbatim: o_i + o_{i+1} <= pq moves the 1s
        of A_{i+1} into A_i, leaving A_i = [1^o_i 0^* 1^o_{i+1}]."""
        r, p, q = 2, 2, 2
        pq = 4
        net = layer_ell_network(r, p, q)
        o_i, o_i1 = 2, 1  # o_i + o_i1 = 3 <= 4
        outs = run_blocks(net, [make_step(pq, o_i), make_step(pq, o_i1)])
        assert outs[1].tolist() == [0, 0, 0, 0]
        assert outs[0].tolist() == [1, 1, 0, 1]  # o_i 1s, gap, o_{i+1} 1s

    def test_case_b_shape(self):
        """Case (b): o_i + o_{i+1} > pq fills A_i with 1s and leaves
        A_{i+1} = [0^z_i 1^* 0^*]."""
        r, p, q = 2, 2, 2
        pq = 4
        net = layer_ell_network(r, p, q)
        o_i, o_i1 = 4, 3
        outs = run_blocks(net, [make_step(pq, o_i), make_step(pq, o_i1)])
        assert outs[0].tolist() == [1, 1, 1, 1]
        assert is_bitonic(outs[1])
        assert int(outs[1].sum()) == 3


class TestWrapCase:
    """Discrepancy spans A_{r-1} and A_0 with values {0,1,2} (the i = r-1
    case of the proof)."""

    @pytest.mark.parametrize("r,p,q", [(2, 2, 2), (3, 2, 2)])
    def test_wrap_configurations(self, r, p, q):
        pq = p * q
        net = layer_ell_network(r, p, q)
        # A_0 in {1,2} (t0 twos then ones), A_{r-1} in {0,1} (o ones then
        # zeros), middle blocks all-1; constraint o_{r-1} >= t_0.
        for t0 in range(pq + 1):
            for o_last in range(t0, pq + 1):
                blocks = [make_step(pq, t0, base=1)]
                for _ in range(r - 2):
                    blocks.append(np.ones(pq, dtype=np.int64))
                blocks.append(make_step(pq, o_last))
                outs = run_blocks(net, blocks)
                assert all(is_bitonic(o) for o in outs), (t0, o_last)
                # Total conserved.
                assert sum(int(o.sum()) for o in outs) == pq + t0 + (r - 2) * pq + o_last

    def test_wrap_case_a_shape(self):
        """Wrap case (a): the 2s of A_0 meet the 0s of A_{r-1}; both become
        1s, leaving A_0 all-1 and A_{r-1} bitonic."""
        r, p, q = 2, 2, 2
        pq = 4
        net = layer_ell_network(r, p, q)
        t0, o_last = 1, 2  # t0 + o_last = 3 <= 4
        outs = run_blocks(net, [make_step(pq, t0, base=1), make_step(pq, o_last)])
        assert outs[0].tolist() == [1, 1, 1, 1]
        assert is_bitonic(outs[1])
        assert int(outs[1].sum()) == o_last + t0  # gained the former 2s


class TestFollowedByRepair:
    """After ℓ, a single bitonic-converter layer finishes the job — the
    full opt_bitonic staircase path, traced block by block."""

    def test_bitonic_repair_completes(self):
        from repro.networks import bitonic_converter
        from repro.core import parallel, serial

        r, p, q = 3, 2, 2
        pq = p * q
        ell = layer_ell_network(r, p, q)
        repair = parallel(*[bitonic_converter(p, q) for _ in range(r)])
        net = serial(ell, repair)
        for o_i, o_i1 in itertools.product(range(pq + 1), repeat=2):
            if o_i < o_i1:
                continue
            blocks = [make_step(pq, o_i), make_step(pq, o_i1), np.zeros(pq, dtype=np.int64)]
            out = propagate_counts(net, np.concatenate(blocks))
            assert is_step(out), (o_i, o_i1)
