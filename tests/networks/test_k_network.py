"""Tests for the K family — paper §5.1, Proposition 6."""

from __future__ import annotations

import itertools

import pytest

from repro.networks import k_network
from repro.networks.depth_formulas import k_depth
from repro.verify import find_counting_violation, find_sorting_violation

FACTORIZATIONS = [
    [2, 2],
    [2, 3],
    [5, 4],
    [2, 2, 2],
    [2, 3, 4],
    [3, 3, 3],
    [5, 2, 3],
    [2, 2, 2, 2],
    [3, 2, 2, 2],
    [2, 3, 2, 2],
]


class TestCorrectness:
    @pytest.mark.parametrize("factors", FACTORIZATIONS)
    def test_counts(self, factors):
        assert find_counting_violation(k_network(factors)) is None

    @pytest.mark.parametrize("factors", [[2, 2], [2, 2, 2], [2, 3], [2, 2, 2, 2]])
    def test_sorts_by_zero_one_principle(self, factors):
        assert find_sorting_violation(k_network(factors)) is None


class TestDepth:
    @pytest.mark.parametrize("factors", FACTORIZATIONS)
    def test_proposition_6_exact(self, factors):
        """depth(K) = 1.5 n^2 - 3.5 n + 2 — exact, not just a bound, for
        non-degenerate factor lists."""
        assert k_network(factors).depth == k_depth(len(factors))

    def test_formula_values(self):
        assert [k_depth(n) for n in range(2, 7)] == [1, 5, 12, 22, 35]

    def test_depth_independent_of_factor_order(self):
        for perm in itertools.permutations([2, 3, 4]):
            assert k_network(list(perm)).depth == k_depth(3)

    def test_formula_rejects_small_n(self):
        with pytest.raises(ValueError):
            k_depth(1)


class TestBalancerWidths:
    @pytest.mark.parametrize("factors", FACTORIZATIONS)
    def test_max_balancer_at_most_pairwise_product(self, factors):
        """K uses balancers of width at most max(p_i * p_j) (§5.1)."""
        net = k_network(factors)
        max_pair = max(a * b for a, b in itertools.combinations_with_replacement(factors, 2))
        assert net.max_balancer_width <= max_pair

    def test_two_balancers_present_from_layer_ell(self):
        hist = k_network([2, 3, 4]).balancer_width_histogram()
        assert 2 in hist  # layer ℓ 2-balancers

    def test_width(self):
        assert k_network([2, 3, 4]).width == 24
