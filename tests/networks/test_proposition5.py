"""Proof-tracing tests for Proposition 5 (paper §4.4, the two-merger).

The proof's key lemma: arrange step input X0 as a p x q0 column-major
matrix and step input X1 as a p x q1 reverse-column-major matrix, side by
side; then the row sums of the combined matrix form a 1-smooth sequence,
so after the row balancers at most one column is mixed, and the column
balancers finish.  We check the lemma itself (pure arithmetic) and the
intermediate state after only the first layer.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import NetworkBuilder
from repro.core.sequences import is_smooth, make_step
from repro.sim import propagate_counts


def combined_matrix(x0: np.ndarray, x1: np.ndarray, p: int) -> np.ndarray:
    """The p x (q0+q1) matrix of Proposition 5."""
    q0, q1 = len(x0) // p, len(x1) // p
    m = np.zeros((p, q0 + q1), dtype=np.int64)
    for k, v in enumerate(x0):  # column-major
        m[k % p, k // p] = v
    for k, v in enumerate(x1):  # reverse column-major, shifted
        m[p - 1 - (k % p), q0 + (q1 - 1 - (k // p))] = v
    return m


class TestRowSumLemma:
    @pytest.mark.parametrize("p,q0,q1", [(2, 2, 2), (3, 2, 4), (4, 3, 3), (5, 1, 2)])
    def test_row_sums_are_1_smooth(self, p, q0, q1):
        for t0, t1 in itertools.product(range(0, 3 * p * max(q0, 1), 3), repeat=2):
            x0 = make_step(p * q0, t0)
            x1 = make_step(p * q1, t1)
            m = combined_matrix(x0, x1, p)
            assert is_smooth(m.sum(axis=1), 1), (t0, t1)

    def test_forward_arrangement_breaks_the_lemma(self):
        """Dropping the reversal of X1 (both column-major) breaks
        1-smoothness of the row sums for some inputs — the reversal is
        load-bearing."""
        p, q0, q1 = 3, 2, 2
        broken = []
        for t0, t1 in itertools.product(range(3 * p * q0), repeat=2):
            x0 = make_step(p * q0, t0)
            x1 = make_step(p * q1, t1)
            m = np.zeros((p, q0 + q1), dtype=np.int64)
            for k, v in enumerate(x0):
                m[k % p, k // p] = v
            for k, v in enumerate(x1):  # forward column-major (wrong)
                m[k % p, q0 + k // p] = v
            if not is_smooth(m.sum(axis=1), 1):
                broken.append((t0, t1))
        assert broken, "expected the forward arrangement to fail somewhere"


class TestAfterRowLayer:
    def test_at_most_one_mixed_column(self):
        """After the (q0+q1)-balancer rows, all columns are constant except
        at most one, which is 1-smooth, and columns decrease left to
        right."""
        p, q0, q1 = 3, 2, 2
        b = NetworkBuilder(p * (q0 + q1))
        wires = list(b.inputs)
        # Build ONLY the row layer, with the paper's arrangement.
        cell = [[-1] * (q0 + q1) for _ in range(p)]
        for k, w in enumerate(wires[: p * q0]):
            cell[k % p][k // p] = w
        for k, w in enumerate(wires[p * q0 :]):
            cell[p - 1 - (k % p)][q0 + (q1 - 1 - (k // p))] = w
        for r in range(p):
            cell[r] = b.balancer(cell[r])
        order = [cell[r][c] for r in range(p) for c in range(q0 + q1)]
        net = b.finish(order)  # row-major read-out of the matrix

        cols = q0 + q1
        for t0, t1 in itertools.product(range(0, 2 * p * q0 + 1, 2), repeat=2):
            x = np.concatenate([make_step(p * q0, t0), make_step(p * q1, t1)])
            out = propagate_counts(net, x).reshape(p, cols)
            mixed = [c for c in range(cols) if out[:, c].max() != out[:, c].min()]
            assert len(mixed) <= 1, (t0, t1, out)
            for c in range(cols):
                assert out[:, c].max() - out[:, c].min() <= 1
            col_means = out.mean(axis=0)
            assert all(col_means[i] >= col_means[i + 1] - 1e-9 for i in range(cols - 1))
