"""Tests for the closed-form depth predictions."""

from __future__ import annotations

import pytest

from repro.networks.depth_formulas import (
    K_BASE_DEPTH,
    R_DEPTH_BOUND,
    counting_depth,
    k_depth,
    l_depth_bound,
    merger_depth,
    r_depth_bound,
    staircase_depth,
)


class TestStaircase:
    def test_variants(self):
        assert staircase_depth("basic", 1) == 7
        assert staircase_depth("small", 1) == 10
        assert staircase_depth("opt_rescan", 1) == 3
        assert staircase_depth("opt_bitonic", 16) == 19

    def test_unknown(self):
        with pytest.raises(ValueError):
            staircase_depth("x", 1)


class TestMerger:
    def test_proposition_3(self):
        assert merger_depth(2, 1, 3) == 1
        assert merger_depth(3, 1, 3) == 4
        assert merger_depth(5, 16, 19) == 16 + 3 * 19

    def test_rejects_n1(self):
        with pytest.raises(ValueError):
            merger_depth(1, 1, 3)


class TestCounting:
    def test_proposition_1_reduces_to_d_at_n2(self):
        assert counting_depth(2, 7, 99) == 7

    def test_proposition_1_telescopes(self):
        """depth(C, n) = depth(C, n-1) + depth(M, n) — the recurrence the
        proposition solves."""
        d, s = 1, 3
        for n in range(3, 10):
            assert counting_depth(n, d, s) == counting_depth(n - 1, d, s) + merger_depth(n, d, s)

    def test_k_consistency(self):
        """Proposition 6 = Proposition 1 with d = 1, depth(S) = 3."""
        for n in range(2, 10):
            assert k_depth(n) == counting_depth(n, K_BASE_DEPTH, 3)

    def test_l_consistency(self):
        """Theorem 7 = Proposition 1 with d = 16, depth(S) = 19."""
        for n in range(2, 10):
            assert l_depth_bound(n) == counting_depth(n, 16, 19)


class TestConstants:
    def test_r_bound(self):
        assert r_depth_bound() == R_DEPTH_BOUND == 16


class TestSearchedPredictor:
    """The searched-variant predictor (min-rule substitution) in isolation
    — synthetic registries only; the cross-check against the built
    networks lives in tests/search/test_searched_variant.py."""

    def test_empty_registry_reduces_to_stock_k(self):
        from repro.networks.depth_formulas import searched_k_depth

        for n in range(2, 8):
            assert searched_k_depth([2] * n, lambda w: None) == k_depth(n)

    def test_root_substitution_wins_outright(self):
        from repro.networks.depth_formulas import searched_k_depth

        # A full-width registry entry caps the whole construction.
        assert searched_k_depth([2, 2, 2, 2], lambda w: 3 if w == 16 else None) == 3

    def test_base_site_substitution_composes(self):
        from repro.networks.depth_formulas import searched_counting_depth

        # Registry at width 4 (the C(2,2) base sites) only: every site's
        # depth-1 balancer already beats a depth-3 entry, so nothing
        # changes for the K family...
        reg4 = lambda w: 3 if w == 4 else None
        assert searched_counting_depth([2, 2, 2], "opt_rescan", 1, reg4) == k_depth(3)
        # ...but a deep base (the L family's R networks) does get replaced.
        assert searched_counting_depth([2, 2], "opt_bitonic", 16, reg4) == 3

    def test_rejects_unknown_variant(self):
        from repro.networks.depth_formulas import searched_counting_depth

        with pytest.raises(ValueError):
            searched_counting_depth([2, 2], "small", 1, lambda w: None)
