"""Tests for R(p, q) — paper §5.3."""

from __future__ import annotations

from math import isqrt

import pytest

from repro.networks import r_network
from repro.networks.depth_formulas import R_DEPTH_BOUND
from repro.verify import find_counting_violation, find_sorting_violation

PAIRS = [(2, 2), (2, 3), (3, 2), (3, 3), (4, 4), (4, 5), (5, 4), (5, 5), (6, 4), (6, 6), (7, 3), (8, 5), (9, 9), (10, 7), (12, 11)]


class TestCorrectness:
    @pytest.mark.parametrize("p,q", PAIRS)
    def test_counts(self, p, q):
        assert find_counting_violation(r_network(p, q)) is None

    @pytest.mark.parametrize("p,q", [(2, 2), (2, 3), (3, 3), (4, 4), (4, 5)])
    def test_sorts_small(self, p, q):
        assert find_sorting_violation(r_network(p, q)) is None


class TestBounds:
    @pytest.mark.parametrize("p,q", PAIRS)
    def test_depth_at_most_16(self, p, q):
        assert r_network(p, q).depth <= R_DEPTH_BOUND

    @pytest.mark.parametrize("p,q", PAIRS)
    def test_balancer_width_at_most_max(self, p, q):
        assert r_network(p, q).max_balancer_width <= max(p, q)

    def test_full_sweep_bounds(self):
        """Exhaustive sweep over 2 <= p, q <= 15: the two §5.3 guarantees."""
        for p in range(2, 16):
            for q in range(2, 16):
                net = r_network(p, q)
                assert net.depth <= R_DEPTH_BOUND, (p, q)
                assert net.max_balancer_width <= max(p, q), (p, q)

    def test_degenerate_one_dim(self):
        assert r_network(1, 5).size == 1
        assert r_network(5, 1).size == 1
        assert r_network(1, 1).size == 0


class TestPaperInequalities:
    """The appendix inequalities that make R's balancer widths legal."""

    def test_equations_1_2_3(self):
        for p in range(2, 60):
            for q in range(2, 60):
                m = max(p, q)
                ph, qh = isqrt(p), isqrt(q)
                pb, qb = p - ph * ph, q - qh * qh
                r = max(ph, qh)
                s = max(pb, qb)
                assert r * r <= m, (p, q)  # Eq. 1
                assert r * -(-s // 2) <= m, (p, q)  # Eq. 2: r * ceil(s/2) <= m
                assert (s // 2) * -(-s // 2) <= m, (p, q)  # Eq. 3

    def test_remainder_bound(self):
        # s < 2*sqrt(m) - 1 (appendix Eq. 4)
        for p in range(2, 200):
            ph = isqrt(p)
            assert p - ph * ph < 2 * (p ** 0.5) - 1 + 1e-9


class TestQuadrantEdgeCases:
    def test_perfect_squares(self):
        """p̄ = q̄ = 0: only quadrant A exists."""
        net = r_network(4, 9)
        assert find_counting_violation(net) is None
        assert net.max_balancer_width <= 9

    def test_remainder_one(self):
        """p̄ = 1 exercises the single-column band path."""
        net = r_network(5, 5)  # 5 = 2^2 + 1
        assert find_counting_violation(net) is None

    def test_small_primes(self):
        """p = 2, 3 give p̂ = 1 (unit hat factors everywhere)."""
        for p, q in [(2, 5), (3, 7), (2, 11), (3, 13)]:
            net = r_network(p, q)
            assert find_counting_violation(net) is None
            assert net.max_balancer_width <= max(p, q)

    def test_wire_count_validation(self):
        from repro.core import NetworkBuilder
        from repro.networks import build_r_network

        b = NetworkBuilder(5)
        with pytest.raises(ValueError, match="expected"):
            build_r_network(b, list(b.inputs), 2, 3)


class TestLargePrimes:
    @pytest.mark.parametrize("p,q", [(17, 2), (2, 17), (13, 11), (19, 3)])
    def test_prime_heavy_shapes(self, p, q):
        net = r_network(p, q)
        assert net.depth <= R_DEPTH_BOUND
        assert net.max_balancer_width <= max(p, q)
        assert find_counting_violation(net) is None
