"""The best-known registry: seed validation, kind filtering, JSON
round-trip, auto-classification, and every load-time rejection path."""

from __future__ import annotations

import pytest

from repro.search import (
    REGISTRY_VERSION,
    Registry,
    RegistryEntry,
    ValidationError,
    comparator_network,
    default_registry,
    reset_default_registry,
)
from repro.search.seeds import _N4_D3, bitonic_comparators, seed_records
from repro.sim import evaluate_comparators
from repro.verify import find_counting_violation, find_sorting_violation

import numpy as np


class TestComparatorNetwork:
    def test_fixed_rail_semantics(self):
        # (a, b): top output (largest value) continues on rail a.
        net = comparator_network(2, [(0, 1)])
        x = np.array([[3, 9]])
        assert evaluate_comparators(net, x).tolist() == [[9, 3]]
        net = comparator_network(2, [(1, 0)])
        assert evaluate_comparators(net, x).tolist() == [[3, 9]]

    def test_depth_is_asap(self):
        # (0,1) and (2,3) are disjoint -> same layer; (1,2) depends on both.
        net = comparator_network(4, [(0, 1), (2, 3), (1, 2)])
        assert net.depth == 2
        assert net.size == 3

    @pytest.mark.parametrize("bad", [(0, 0), (0, 4), (-1, 2)])
    def test_rejects_non_rail_pairs(self, bad):
        with pytest.raises(ValidationError):
            comparator_network(4, [bad])


class TestSeeds:
    def test_all_seeds_validate(self):
        reg = Registry.seeded()
        assert len(reg) == len(seed_records())
        assert set(reg.widths()) == {4, 8, 12, 16}

    def test_every_entry_sorts(self):
        for entry in Registry.seeded():
            assert find_sorting_violation(entry.network(), exhaustive_limit=20) is None

    def test_counting_entries_count(self):
        reg = Registry.seeded()
        counting = [e for e in reg if e.kind == "counting"]
        assert {e.width for e in counting} == {4, 8, 16}
        for entry in counting:
            cv = find_counting_violation(entry.network(), rng=np.random.default_rng(1))
            assert cv is None

    def test_best_known_depths(self):
        reg = Registry.seeded()
        # Best-known sorting depths at these widths (Knuth 5.3.4).
        assert reg.best(4, kind="sorting").depth == 3
        assert reg.best(8, kind="sorting").depth == 6
        assert reg.best(12, kind="sorting").depth == 8
        # AHS bitonic counting networks match them at powers of two.
        assert reg.best(4, kind="counting").depth == 3
        assert reg.best(8, kind="counting").depth == 6
        assert reg.best(16, kind="counting").depth == 10


class TestBestFiltering:
    def test_counting_kind_excludes_sorting_only(self):
        reg = Registry.seeded()
        # Width 12 only has a sorting-only entry: no counting substitute.
        assert reg.best(12, kind="sorting") is not None
        assert reg.best(12, kind="counting") is None

    def test_sorting_kind_admits_counting_entries(self):
        # Every counting network sorts, so kind="sorting" picks the
        # shallowest of either kind.
        reg = Registry.from_records(
            [
                {
                    "width": 4,
                    "kind": "counting",
                    "comparators": [list(c) for c in bitonic_comparators(4)],
                    "origin": "bitonic",
                }
            ]
        )
        assert reg.best(4, kind="sorting").origin == "bitonic"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Registry.seeded().best(4, kind="mystery")

    def test_missing_width_is_none(self):
        assert Registry.seeded().best(6) is None


class TestJsonRoundTrip:
    def test_save_load(self, tmp_path):
        reg = Registry.seeded()
        p = reg.save(tmp_path / "registry.json")
        loaded = Registry.load(p)
        assert [e.as_dict() for e in loaded] == [e.as_dict() for e in reg]

    def test_version_gate(self):
        newer = '{"version": %d, "entries": []}' % (REGISTRY_VERSION + 1)
        with pytest.raises(ValidationError, match="newer"):
            Registry.from_json(newer)

    def test_not_json(self):
        with pytest.raises(ValidationError):
            Registry.from_json("{nope")

    def test_not_an_object(self):
        with pytest.raises(ValidationError):
            Registry.from_json("[1, 2]")


class TestAdd:
    def test_auto_classifies_counting(self):
        reg = Registry()
        entry = reg.add(4, bitonic_comparators(4), origin="test")
        assert entry.kind == "counting"
        assert entry.depth == 3

    def test_auto_classifies_sorting_only(self):
        # The optimal depth-3 width-4 sorter is NOT a counting network.
        reg = Registry()
        entry = reg.add(4, _N4_D3, origin="test")
        assert entry.kind == "sorting"

    def test_rejects_non_sorter(self):
        with pytest.raises(ValidationError):
            Registry().add(4, [(0, 1)], origin="test")

    def test_rejects_false_counting_claim(self):
        with pytest.raises(ValidationError, match="counting"):
            Registry().add(4, _N4_D3, kind="counting", origin="test")


class TestValidationRejections:
    def _record(self, **overrides):
        rec = {
            "width": 4,
            "kind": "sorting",
            "comparators": [list(c) for c in _N4_D3],
            "origin": "test",
        }
        rec.update(overrides)
        return rec

    def test_declared_depth_mismatch(self):
        with pytest.raises(ValidationError, match="depth"):
            Registry.from_records([self._record(depth=99)])

    def test_declared_size_mismatch(self):
        with pytest.raises(ValidationError, match="size"):
            Registry.from_records([self._record(size=99)])

    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            Registry.from_records([self._record(kind="magic")])

    def test_malformed_record(self):
        with pytest.raises(ValidationError, match="malformed"):
            Registry.from_records([{"width": 4}])

    def test_width_too_small(self):
        with pytest.raises(ValidationError, match="width"):
            Registry.from_records([self._record(width=1, comparators=[])])


class TestDefaultRegistry:
    def test_singleton_and_reset(self):
        first = default_registry()
        assert default_registry() is first
        prev = reset_default_registry(Registry())
        try:
            assert len(default_registry()) == 0
        finally:
            reset_default_registry(prev)
        assert default_registry() is first

    def test_entries_are_frozen(self):
        entry = default_registry().best(4)
        assert isinstance(entry, RegistryEntry)
        with pytest.raises(AttributeError):
            entry.width = 5
