"""Beam search: deterministic rediscovery, impossibility, budgets, and
the validated-result contract."""

from __future__ import annotations

import pytest

from repro.search import beam_search
from repro.search.beam import _apply_layer, _sorted_masks, _useful_pairs
from repro.verify import find_sorting_violation


class TestRediscovery:
    def test_finds_depth3_width4(self):
        # Depth 3 is optimal for width 4; a small budget suffices.
        result = beam_search(4, 3, max_expansions=200, seed=0)
        assert result.found
        assert result.depth == 3
        assert result.network is not None
        assert find_sorting_violation(result.network, exhaustive_limit=20) is None

    def test_deterministic_under_fixed_seed(self):
        a = beam_search(4, 3, max_expansions=200, seed=0)
        b = beam_search(4, 3, max_expansions=200, seed=0)
        assert a.layers == b.layers
        assert a.expansions == b.expansions

    def test_finds_width5_depth5(self):
        result = beam_search(5, 5, seed=0)
        assert result.found and result.depth <= 5

    def test_size_objective_not_larger(self):
        by_depth = beam_search(4, 3, seed=0, objective="depth")
        by_size = beam_search(4, 3, seed=0, objective="size")
        assert by_size.found
        assert by_size.size <= by_depth.size

    def test_progress_callback_runs(self):
        calls = []
        beam_search(4, 3, seed=0, on_progress=lambda d, r, e: calls.append((d, r, e)))
        assert calls and calls[-1][1] == 0  # residue reaches zero


class TestImpossibleAndBudget:
    def test_depth2_width4_impossible(self):
        # No width-4 sorter of depth 2 exists; the search must say so.
        result = beam_search(4, 2, seed=0)
        assert not result.found
        assert result.network is None

    def test_budget_exhaustion_returns_not_found(self):
        result = beam_search(6, 5, max_expansions=3, seed=0)
        assert not result.found
        assert result.expansions <= 3


class TestValidation:
    def test_width_too_small(self):
        with pytest.raises(ValueError):
            beam_search(1, 3)

    def test_depth_too_small(self):
        with pytest.raises(ValueError):
            beam_search(4, 0)

    def test_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            beam_search(4, 3, objective="luck")


class TestMaskSemantics:
    def test_sorted_masks_are_prefix_ones(self):
        assert _sorted_masks(3) == frozenset({0b000, 0b001, 0b011, 0b111})

    def test_apply_layer_swaps_inversions_only(self):
        # Bit i = value on rail i; comparator (0, 1) moves a 1 down to rail 0.
        masks = frozenset({0b10, 0b01, 0b00})
        out = _apply_layer(masks, [(0, 1)])
        assert out == frozenset({0b01, 0b00})

    def test_useful_pairs_skip_sorted_masks(self):
        sorted_set = _sorted_masks(2)
        assert _useful_pairs(2, sorted_set, sorted_set) == []
        pairs = _useful_pairs(2, frozenset({0b10}), sorted_set)
        assert [(i, j) for i, j, _ in pairs] == [(0, 1)]
