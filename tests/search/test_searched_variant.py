"""The ``variant="searched"`` construction path: correctness (exhaustive
0-1 and differential against stock), the depth-formula predictions, the
fault-injection kill matrix, and variant plumbing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequences import make_step
from repro.faults import run_conformance
from repro.networks import NETWORK_VARIANTS, counting_network, k_network, l_network
from repro.networks.counting import clear_construction_cache
from repro.networks.depth_formulas import searched_counting_depth, searched_k_depth
from repro.networks.r_network import r_base
from repro.search import default_registry
from repro.sim import propagate_counts
from repro.verify import find_counting_violation, find_sorting_violation

SMALL_FACTORIZATIONS = [
    [2, 2],
    [2, 2, 2],
    [2, 2, 2, 2],
    [2, 3],
    [3, 2],
    [2, 2, 3],
    [4, 2],
    [3, 3],
]


def _registry_depth(width):
    entry = default_registry().best(width, kind="counting")
    return None if entry is None else entry.depth


class TestStillSortsAndCounts:
    """Exhaustive 0-1 proof at small widths: the substituted construction
    must keep both properties, not just produce plausible outputs."""

    @pytest.mark.parametrize("factors", SMALL_FACTORIZATIONS, ids=lambda f: "x".join(map(str, f)))
    @pytest.mark.parametrize("family", [k_network, l_network])
    def test_searched_family_exhaustive(self, family, factors):
        net = family(factors, variant="searched")
        assert find_sorting_violation(net, exhaustive_limit=20) is None
        assert find_counting_violation(net, rng=np.random.default_rng(0)) is None

    def test_searched_c_family(self):
        net = counting_network([2, 2, 2], searched=True)
        assert find_sorting_violation(net, exhaustive_limit=20) is None


class TestDifferentialVsStock:
    """Quiescent counting outputs depend only on the total token count, so
    stock and searched variants must agree *exactly* — a stronger oracle
    than step-property spot checks, and it scales past exhaustive widths."""

    @given(total=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_step_inputs_agree(self, total):
        factors = [2, 2, 2, 2]
        x = make_step(16, total)
        assert np.array_equal(
            propagate_counts(k_network(factors), x),
            propagate_counts(k_network(factors, variant="searched"), x),
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_count_vectors_agree_wide(self, seed):
        # Width 32: past the exhaustive 0-1 limit; stock K is the oracle.
        factors = [2, 2, 2, 2, 2]
        x = np.random.default_rng(seed).integers(0, 50, size=32)
        assert np.array_equal(
            propagate_counts(k_network(factors), x),
            propagate_counts(k_network(factors, variant="searched"), x),
        )

    def test_l_family_agrees(self):
        factors = [3, 2, 2]
        x = np.random.default_rng(7).integers(0, 30, size=(4, 12))
        assert np.array_equal(
            propagate_counts(l_network(factors), x),
            propagate_counts(l_network(factors, variant="searched"), x),
        )


class TestDepthPredictions:
    """Satellite: the closed-form searched predictor must match the
    measured depth of the actual construction, factorization by
    factorization — and the searched depths must never exceed stock."""

    @pytest.mark.parametrize(
        "factors",
        [[2, 2], [2, 2, 2], [2, 2, 2, 2], [2, 2, 2, 2, 2], [4, 4, 2, 2], [2, 3], [3, 3, 2]],
        ids=lambda f: "x".join(map(str, f)),
    )
    def test_searched_k_depth_exact(self, factors):
        measured = k_network(factors, variant="searched").depth
        assert searched_k_depth(factors, _registry_depth) == measured
        assert measured <= k_network(factors).depth

    @pytest.mark.parametrize("factors", [[2, 2], [2, 2, 2], [2, 2, 2, 2], [3, 2, 2]], ids=lambda f: "x".join(map(str, f)))
    def test_searched_l_depth_exact(self, factors):
        def r_depth(p, q):
            return counting_network([p, q], base=r_base, variant="opt_bitonic").depth

        measured = l_network(factors, variant="searched").depth
        predicted = searched_counting_depth(factors, "opt_bitonic", r_depth, _registry_depth)
        assert predicted == measured

    def test_headline_deltas(self):
        # The measured wins this PR records in BENCH_build_scale.json.
        assert k_network([2, 2, 2, 2]).depth == 12
        assert k_network([2, 2, 2, 2], variant="searched").depth == 10
        assert l_network([2, 2, 2]).depth == 12
        assert l_network([2, 2, 2], variant="searched").depth == 6

    def test_registry_depths_of_entries_match(self):
        # The predictor's registry hook must see the same depths the
        # networks module substitutes.
        for w in (4, 8, 16):
            entry = default_registry().best(w, kind="counting")
            assert entry is not None
            assert entry.network().depth == entry.depth == _registry_depth(w)

    def test_predictor_variant_validation(self):
        with pytest.raises(ValueError):
            searched_counting_depth([2, 2], "basic", 1, _registry_depth)


class TestFaultKillMatrix:
    """Satellite: the verifier stack must catch injected faults in a
    searched-base network exactly as it does for stock constructions."""

    def test_searched_network_kill_matrix_complete(self):
        km = run_conformance(
            networks=[l_network([2, 2, 2], variant="searched")],
            seed=11,
            sites_per_fault=2,
        )
        assert km.trials
        assert km.escapes() == []
        assert km.complete()


class TestVariantPlumbing:
    def test_variants_tuple(self):
        assert NETWORK_VARIANTS == ("stock", "searched")

    @pytest.mark.parametrize("family", [k_network, l_network])
    def test_unknown_variant_rejected(self, family):
        with pytest.raises(ValueError, match="variant"):
            family([2, 2], variant="bogus")

    def test_searched_name_suffix(self):
        assert "[searched]" in k_network([2, 2], variant="searched").name
        assert "[searched]" not in k_network([2, 2]).name

    def test_registry_swap_changes_construction(self):
        # With an empty registry there is nothing to substitute: the
        # searched variant degrades to the stock construction.
        from repro.search import Registry, reset_default_registry

        stock_depth = k_network([2, 2, 2, 2]).depth
        prev = reset_default_registry(Registry())
        clear_construction_cache()
        try:
            assert k_network([2, 2, 2, 2], variant="searched").depth == stock_depth
        finally:
            reset_default_registry(prev)
            clear_construction_cache()
