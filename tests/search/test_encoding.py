"""The CNF placement encoding: clause helpers, structure, decoding, the
pure-python counterexample simulator, and pysat gating.

Everything except :class:`TestWithPysat` runs without ``pysat`` — the
encoding itself is dependency-free by design (DIMACS export feeds any
external solver)."""

from __future__ import annotations

import pytest

from repro.search import (
    CNF,
    ComparatorPlacementEncoding,
    SearchDependencyError,
    at_most_one,
    have_pysat,
    implies,
    sat_search,
    variables_same,
)
from repro.search.encoding import _simulate_failures


class TestClauseHelpers:
    def test_implies(self):
        assert implies(3, 7) == [-3, 7]

    def test_variables_same(self):
        assert variables_same(1, 2) == [[-1, 2], [1, -2]]

    def test_variables_same_conditional(self):
        # Guarded by literal 5 (which may itself be negative).
        assert variables_same(1, 2, condition=5) == [[-5, -1, 2], [-5, 1, -2]]
        assert variables_same(1, 2, condition=-5) == [[5, -1, 2], [5, 1, -2]]

    def test_at_most_one(self):
        assert at_most_one([1, 2, 3]) == [[-1, -2], [-1, -3], [-2, -3]]
        assert at_most_one([1]) == []


class TestCnf:
    def test_fresh_vars_and_names(self):
        cnf = CNF()
        a = cnf.new_var("a")
        b = cnf.new_var()
        assert (a, b) == (1, 2)
        assert cnf.names == {1: "a"}

    def test_rejects_empty_clause(self):
        with pytest.raises(ValueError):
            CNF().add([])

    def test_dimacs_header(self):
        cnf = CNF()
        x, y = cnf.new_var(), cnf.new_var()
        cnf.add([x, -y])
        text = cnf.to_dimacs()
        assert text.startswith("p cnf 2 1\n")
        assert "1 -2 0" in text


class TestEncodingStructure:
    def test_variable_counts(self):
        enc = ComparatorPlacementEncoding(4, 3)
        n_pairs = 6  # C(4, 2)
        assert len(enc.place) == 3 * n_pairs
        assert len(enc.used) == 3 * 4
        assert enc.cnf.num_vars == 3 * n_pairs + 3 * 4

    def test_counterexample_adds_value_columns(self):
        enc = ComparatorPlacementEncoding(4, 3)
        before = enc.cnf.num_vars
        enc.add_counterexample(0b0010)
        # One value variable per rail per layer boundary.
        assert enc.cnf.num_vars == before + 4 * (3 + 1)
        assert enc.counterexamples == [0b0010]

    def test_counterexample_mask_range(self):
        enc = ComparatorPlacementEncoding(4, 2)
        with pytest.raises(ValueError):
            enc.add_counterexample(1 << 4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ComparatorPlacementEncoding(1, 3)
        with pytest.raises(ValueError):
            ComparatorPlacementEncoding(4, 0)

    def test_decode_synthetic_model(self):
        enc = ComparatorPlacementEncoding(4, 2)
        chosen = [enc.place[(0, 0, 1)], enc.place[(0, 2, 3)], enc.place[(1, 1, 2)]]
        model = [v if v in chosen else -v for v in range(1, enc.cnf.num_vars + 1)]
        assert enc.decode(model) == [[(0, 1), (2, 3)], [(1, 2)]]

    def test_to_dimacs_is_cnf(self):
        text = ComparatorPlacementEncoding(3, 2).to_dimacs()
        header = text.splitlines()[0].split()
        assert header[:2] == ["p", "cnf"]


class TestSimulator:
    def test_empty_network_fails_on_inversions(self):
        failures = _simulate_failures(3, [], limit=100)
        # Exactly the non-sorted 0-1 vectors of width 3.
        assert failures == [0b010, 0b100, 0b101, 0b110]

    def test_valid_sorter_has_no_failures(self):
        from repro.search.seeds import _N4_D3

        layers = [[(0, 2), (1, 3)], [(0, 1), (2, 3)], [(1, 2)]]
        assert [c for l in layers for c in l] == list(_N4_D3)
        assert _simulate_failures(4, layers, limit=100) == []

    def test_limit_respected(self):
        assert len(_simulate_failures(4, [], limit=2)) == 2


class TestGating:
    @pytest.mark.skipif(have_pysat(), reason="pysat installed: gate not reachable")
    def test_sat_search_raises_dependency_error(self):
        with pytest.raises(SearchDependencyError, match="pysat"):
            sat_search(4, 3)

    def test_width_cap(self):
        if have_pysat():
            with pytest.raises(ValueError, match="width"):
                sat_search(13, 3)
        else:
            # Dependency gate fires first by design: the message must not
            # be masked by the width complaint.
            with pytest.raises(SearchDependencyError):
                sat_search(13, 3)


@pytest.mark.skipif(not have_pysat(), reason="needs the 'search' extra (pysat)")
class TestWithPysat:
    def test_sat_finds_depth3_width4(self):
        result = sat_search(4, 3)
        assert result.found
        assert result.network is not None and result.network.depth <= 3

    def test_unsat_proves_depth2_width4_impossible(self):
        result = sat_search(4, 2)
        assert result.status == "unsat"
