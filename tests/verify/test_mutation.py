"""Mutation testing of the verifiers.

The counting/sorting searches are only useful if they actually catch
broken networks.  These tests apply mutants from :mod:`repro.faults`
(the mutation operators live there now — see ``tests/faults/`` for the
operators' own tests and the full conformance kill-matrix) to known-good
counting networks and assert the verifiers flag (nearly) all of them.
"""

from __future__ import annotations

import pytest

from repro.faults import drop_balancer, flip_balancer
from repro.core import Network
from repro.networks import k_network, r_network
from repro.verify import find_counting_violation, find_sorting_violation


def _final_layer_indices(net: Network) -> list[int]:
    return [b.index for b in net.layers()[-1]]


class TestDroppedBalancers:
    @pytest.mark.parametrize("factors", [[2, 3, 2], [2, 2, 3]])
    def test_final_layer_drops_detected(self, factors):
        """For these shapes the final staircase repair layer is
        load-bearing: dropping any of its balancers is caught."""
        net = k_network(factors)
        for i in _final_layer_indices(net):
            assert find_counting_violation(drop_balancer(net, i)) is not None, i

    @pytest.mark.parametrize("factors", [[2, 2, 2], [2, 3, 2]])
    def test_some_drops_detected_overall(self, factors):
        net = k_network(factors)
        caught = sum(
            1 for i in range(net.size) if find_counting_violation(drop_balancer(net, i)) is not None
        )
        assert caught >= len(_final_layer_indices(net))

    def test_dropping_the_only_balancer(self):
        net = k_network([2, 2])
        assert find_counting_violation(drop_balancer(net, 0)) is not None

    def test_equivalent_mutants_exist(self):
        """Document the redundancy the formulas do not see: dropping a
        front C(2,2) copy of K(2,2,2) leaves a network that still counts
        (the downstream merger alone is a counting network at this size),
        and even its final repair layer is redundant for p = q = 2 blocks.
        The paper's depth formulas are exact for the *construction*, not
        lower bounds for the width.  The conformance harness classifies
        these as equivalent mutants and excludes them from the kill score
        (see repro.faults.harness.semantically_equivalent)."""
        net = k_network([2, 2, 2])
        assert find_counting_violation(drop_balancer(net, 0)) is None
        for i in _final_layer_indices(net):
            assert find_counting_violation(drop_balancer(net, i)) is None


class TestFlippedBalancers:
    def test_flipped_top_balancer_detected(self):
        net = k_network([2, 2])
        mutant = flip_balancer(net, 0)
        assert find_counting_violation(mutant) is not None

    @pytest.mark.parametrize("factors", [[2, 2, 2], [2, 3, 2]])
    def test_final_layer_flips_detected(self, factors):
        net = k_network(factors)
        for i in _final_layer_indices(net):
            mutant = flip_balancer(net, i)
            assert (
                find_counting_violation(mutant) is not None
                or find_sorting_violation(mutant) is not None
            ), i

    def test_flip_detection_majority(self):
        net = k_network([2, 2, 2])
        caught = sum(
            1
            for i in range(net.size)
            if find_counting_violation(flip_balancer(net, i)) is not None
            or find_sorting_violation(flip_balancer(net, i)) is not None
        )
        assert caught >= net.size // 2, f"{caught}/{net.size}"


class TestMutantsStillConserve:
    def test_mutants_conserve_tokens(self, rng):
        """Mutations break ordering, never conservation — a cross-check
        that the mutant builders themselves are sound."""
        from repro.sim import propagate_counts

        net = r_network(3, 3)
        for i in (0, net.size // 2, net.size - 1):
            for mutant in (drop_balancer(net, i), flip_balancer(net, i)):
                x = rng.integers(0, 10, size=net.width)
                assert int(propagate_counts(mutant, x).sum()) == int(x.sum())
