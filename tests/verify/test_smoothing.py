"""Tests for the smoothing-property verification."""

from __future__ import annotations

import pytest

from repro.baselines import odd_even_network, periodic_network
from repro.core import identity_network, single_balancer_network
from repro.networks import k_network
from repro.verify import find_smoothing_violation, is_smoother, observed_smoothness


class TestSmoothers:
    def test_counting_network_is_1_smoother(self):
        assert is_smoother(k_network([2, 2, 2]), 1)

    def test_single_balancer_is_1_smoother(self):
        assert is_smoother(single_balancer_network(5), 1)

    def test_identity_is_not_a_smoother(self):
        v = find_smoothing_violation(identity_network(4), 10)
        assert v is not None
        assert v.smoothness > 10
        assert "smoothing violation" in str(v)

    def test_odd_even_smooths_better_than_it_counts(self):
        """Odd-even fails counting but is still a decent smoother: its
        observed smoothness is far below the identity's."""
        net = odd_even_network(8)
        sm = observed_smoothness(net)
        assert sm >= 2  # not a counting network...
        assert sm <= 4  # ...but a reasonable smoother

    def test_truncated_periodic_block_smooths(self):
        """One block of the periodic network does not count, yet smooths
        substantially (the basis of its k-round convergence)."""
        one_block = periodic_network(8, blocks=1)
        sm = observed_smoothness(one_block)
        full = observed_smoothness(periodic_network(8))
        assert full <= 1
        assert 1 < sm < observed_smoothness(identity_network(8))

    def test_observed_never_exceeds_verified(self):
        net = k_network([3, 2])
        assert observed_smoothness(net) <= 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            find_smoothing_violation(k_network([2, 2]), -1)


class TestMonotoneInK:
    def test_smoother_hierarchy(self):
        """k-smoother implies (k+1)-smoother."""
        net = odd_even_network(8)
        sm = observed_smoothness(net)
        assert is_smoother(net, sm + 3)
        assert not is_smoother(net, max(0, sm - 1))
