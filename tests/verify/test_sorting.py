"""Unit tests for sorting verification (0-1 principle)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brick_network, bubble_network
from repro.core import identity_network, single_balancer_network
from repro.networks import k_network, l_network
from repro.verify import find_sorting_violation, is_sorting_network, sorts_batch


class TestSortsBatch:
    def test_single_comparator(self):
        net = single_balancer_network(3)
        assert sorts_batch(net, np.array([[3, 1, 2]])) is None

    def test_identity_fails(self):
        v = sorts_batch(identity_network(2), np.array([[0, 1]]))
        assert v is not None
        assert list(v.input_values) == [0, 1]


class TestZeroOnePrinciple:
    def test_constructions_sort_exhaustively(self):
        """Every construction is also a sorting network (the
        counting -> sorting direction of the isomorphism), proven via the
        0-1 principle for small widths."""
        for net in (k_network([2, 2, 2]), k_network([2, 3]), k_network([2, 2, 2, 2])):
            assert find_sorting_violation(net) is None

    def test_l_network_sorts_exhaustively(self):
        assert find_sorting_violation(l_network([2, 2, 2])) is None

    def test_classic_sorters_pass(self):
        assert is_sorting_network(bubble_network(5))
        assert is_sorting_network(brick_network(6))

    def test_broken_network_caught(self):
        # Bubble with the last pass removed misses some orderings.
        from repro.core import NetworkBuilder

        b = NetworkBuilder(4)
        wires = list(b.inputs)
        for length in range(3, 1, -1):  # stop early: incomplete bubble
            for i in range(length):
                top, bottom = b.balancer([wires[i], wires[i + 1]])
                wires[i], wires[i + 1] = top, bottom
        net = b.finish(wires)
        v = find_sorting_violation(net)
        assert v is not None

    def test_sampled_path_for_wide_networks(self):
        """Width above the exhaustive limit exercises the sampling branch."""
        net = k_network([2, 2, 2])
        assert find_sorting_violation(net, exhaustive_limit=4, samples=500) is None

    def test_sampled_path_catches_identity(self):
        assert find_sorting_violation(identity_network(25), exhaustive_limit=4) is not None
