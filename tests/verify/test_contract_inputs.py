"""Property tests: the contract input generators satisfy their preconditions.

``verify/contracts.py`` verifies each family's *conclusion* (step outputs)
over inputs its generators promise satisfy the *precondition* (step inputs,
the p-staircase property, bitonicity, ...).  If a generator quietly drifted
off its precondition, every downstream contract check would be vacuous —
so the generators themselves get hypothesis properties here, across random
shapes and seeds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequences import is_step
from repro.verify.contracts import (
    bitonic_inputs,
    merger_inputs,
    staircase_inputs,
    two_merger_inputs,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
batches = st.integers(min_value=1, max_value=8)


def is_bitonic_counts(row: np.ndarray) -> bool:
    """A count vector is bitonic here iff it is a rotation of a step
    sequence (the generator's documented characterization)."""
    w = len(row)
    return any(is_step(np.roll(row, k)) for k in range(w))


class TestMergerInputs:
    @settings(max_examples=40, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4),
        batch=batches,
        seed=seeds,
    )
    def test_every_block_is_a_step_sequence(self, lengths, batch, seed):
        out = merger_inputs(lengths, batch, np.random.default_rng(seed))
        assert out.shape == (batch, sum(lengths))
        assert np.all(out >= 0)
        for row in out:
            pos = 0
            for ln in lengths:
                assert is_step(row[pos : pos + ln]), (lengths, row.tolist())
                pos += ln


class TestStaircaseInputs:
    @settings(max_examples=40, deadline=None)
    @given(
        r=st.integers(min_value=1, max_value=4),
        p=st.integers(min_value=2, max_value=5),
        q=st.integers(min_value=1, max_value=5),
        batch=batches,
        seed=seeds,
    )
    def test_p_staircase_property(self, r, p, q, batch, seed):
        out = staircase_inputs(r, p, q, batch, np.random.default_rng(seed))
        ln = r * p
        assert out.shape == (batch, ln * q)
        for row in out:
            blocks = [row[i * ln : (i + 1) * ln] for i in range(q)]
            # Each X_i is a step sequence...
            assert all(is_step(b) for b in blocks)
            sums = [int(b.sum()) for b in blocks]
            # ...with sums S_0 >= S_1 >= ... >= S_{q-1} >= S_0 - p.
            assert all(sums[i] >= sums[i + 1] for i in range(q - 1)), sums
            assert sums[-1] >= sums[0] - p, (sums, p)


class TestTwoMergerInputs:
    @settings(max_examples=40, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=4),
        q0=st.integers(min_value=1, max_value=4),
        q1=st.integers(min_value=1, max_value=4),
        batch=batches,
        seed=seeds,
    )
    def test_two_step_blocks(self, p, q0, q1, batch, seed):
        out = two_merger_inputs(p, q0, q1, batch, np.random.default_rng(seed))
        assert out.shape == (batch, p * (q0 + q1))
        for row in out:
            assert is_step(row[: p * q0])
            assert is_step(row[p * q0 :])


class TestBitonicInputs:
    @settings(max_examples=40, deadline=None)
    @given(width=st.integers(min_value=1, max_value=12), batch=batches, seed=seeds)
    def test_rows_are_rotated_step_sequences(self, width, batch, seed):
        out = bitonic_inputs(width, batch, np.random.default_rng(seed))
        assert out.shape == (batch, width)
        assert np.all(out >= 0)
        for row in out:
            assert is_bitonic_counts(row), row.tolist()

    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(min_value=2, max_value=12), seed=seeds)
    def test_rows_are_one_smooth(self, width, seed):
        # Rotations of step sequences are exactly the 1-smooth sequences
        # with at most two cyclic transitions; check the smoothness half.
        out = bitonic_inputs(width, 16, np.random.default_rng(seed))
        assert int((out.max(axis=1) - out.min(axis=1)).max()) <= 1


class TestDeterminism:
    def test_same_seed_same_batch(self):
        a = merger_inputs([3, 4], 5, np.random.default_rng(123))
        b = merger_inputs([3, 4], 5, np.random.default_rng(123))
        assert np.array_equal(a, b)
        c = staircase_inputs(2, 3, 4, 5, np.random.default_rng(7))
        d = staircase_inputs(2, 3, 4, 5, np.random.default_rng(7))
        assert np.array_equal(c, d)
