"""Unit tests for contract generators and verifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import identity_network
from repro.core.sequences import is_bitonic, is_staircase, is_step
from repro.networks import bitonic_converter, merger_network, staircase_merger, two_merger
from repro.verify import (
    bitonic_inputs,
    merger_inputs,
    staircase_inputs,
    two_merger_inputs,
    verify_bitonic_converter,
    verify_merger,
    verify_staircase_merger,
    verify_two_merger,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestGenerators:
    def test_merger_inputs_are_step(self, rng):
        batch = merger_inputs([4, 4, 4], 50, rng)
        assert batch.shape == (50, 12)
        for row in batch:
            for i in range(3):
                assert is_step(row[i * 4 : (i + 1) * 4])

    def test_staircase_inputs_satisfy_contract(self, rng):
        r, p, q = 3, 2, 4
        batch = staircase_inputs(r, p, q, 50, rng)
        ln = r * p
        for row in batch:
            xs = [row[i * ln : (i + 1) * ln] for i in range(q)]
            assert all(is_step(x) for x in xs)
            assert is_staircase(xs, p)

    def test_two_merger_inputs_shapes(self, rng):
        batch = two_merger_inputs(3, 2, 4, 10, rng)
        assert batch.shape == (10, 18)

    def test_bitonic_inputs_are_bitonic(self, rng):
        batch = bitonic_inputs(9, 60, rng)
        for row in batch:
            assert is_bitonic(row)


class TestVerifiers:
    def test_two_merger_passes(self):
        assert verify_two_merger(two_merger(3, 2, 2), 3, 2, 2) is None

    def test_two_merger_violation_on_identity(self):
        v = verify_two_merger(identity_network(8), 2, 2, 2)
        assert v is not None
        assert "two_merger" in str(v)

    def test_merger_passes(self):
        net = merger_network([2, 3])
        assert verify_merger(net, [2, 2, 2]) is None

    def test_staircase_passes(self):
        net = staircase_merger(2, 2, 3)
        assert verify_staircase_merger(net, 2, 2, 3) is None

    def test_bitonic_converter_passes(self):
        assert verify_bitonic_converter(bitonic_converter(3, 3)) is None

    def test_bitonic_converter_violation_on_identity(self):
        assert verify_bitonic_converter(identity_network(6)) is not None
