"""The promoted exhaustive tier: both verification backends must return
byte-identical verdicts and witnesses on every input they cover, the packed
input generator must enumerate exactly ``all_zero_one`` order, and the
widths the int64 path already proved must stay proven on both engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitplan import pack_zero_one
from repro.faults.mutator import flip_balancer, stuck_balancer, swap_outputs
from repro.networks import k_network, l_network
from repro.search.registry import EXHAUSTIVE_WIDTH_LIMIT
from repro.verify import (
    EXHAUSTIVE_LIMITS,
    ZERO_ONE_EXHAUSTIVE_WIDTH,
    all_zero_one,
    exhaustive_sorting_witness,
    find_counting_violation,
    find_sorting_violation,
    iter_packed_zero_one,
)


def _violation_bytes(v):
    if v is None:
        return None
    if hasattr(v, "input_values"):
        return (v.input_values.tobytes(), v.output_values.tobytes())
    return (v.input_counts.tobytes(), v.output_counts.tobytes())


# ---------------------------------------------------------------------------
# The packed generator is the exhaustive tier's foundation: cross-validate
# it against the materialized input set it replaces.
# ---------------------------------------------------------------------------


class TestPackedGenerator:
    @pytest.mark.parametrize("width", list(range(1, 11)))
    def test_matches_all_zero_one_packing(self, width):
        expected, batch = pack_zero_one(all_zero_one(width))
        chunks = list(iter_packed_zero_one(width, lanes_per_batch=256))
        got = np.concatenate([p for p, _ in chunks], axis=1)
        bases = [b for _, b in chunks]
        assert bases == [256 * i for i in range(len(bases))]
        if width < 6:
            # One word whose low 2^w lanes are the real inputs.
            mask = np.uint64((1 << (1 << width)) - 1)
            assert np.array_equal(got[:, 0] & mask, expected[:, 0])
        else:
            assert got.shape == expected.shape
            assert got.tobytes() == expected.tobytes()

    def test_batching_covers_all_words_once(self):
        width = 9  # 512 inputs = 8 words, batches of 4 words
        seen = []
        for packed, base in iter_packed_zero_one(width, lanes_per_batch=256):
            assert base % 64 == 0
            seen.extend(range(base // 64, base // 64 + packed.shape[1]))
        assert seen == list(range((1 << width) // 64))

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError, match="width"):
            next(iter_packed_zero_one(0))


# ---------------------------------------------------------------------------
# Verdict identity across backends — pristine and broken networks alike.
# ---------------------------------------------------------------------------


def _mutants(base):
    yield base
    yield flip_balancer(base, base.layers()[-1][0].index)
    yield swap_outputs(base, 0, base.width - 1)
    yield stuck_balancer(base, base.balancers[0].index)


class TestBackendIdentity:
    @pytest.mark.parametrize("factors", [[2, 2], [2, 3], [3, 2], [2, 2, 2]])
    def test_sorting_verdicts_identical(self, factors):
        for net in _mutants(k_network(factors)):
            a = find_sorting_violation(net, backend="int64")
            b = find_sorting_violation(net, backend="bitsliced")
            assert _violation_bytes(a) == _violation_bytes(b), net.name

    @pytest.mark.parametrize("factors", [[2, 2], [2, 3], [2, 2, 2]])
    def test_counting_verdicts_identical(self, factors):
        for net in _mutants(k_network(factors)):
            a = find_counting_violation(net, backend="int64")
            b = find_counting_violation(net, backend="bitsliced")
            assert _violation_bytes(a) == _violation_bytes(b), net.name

    def test_auto_means_bitsliced_for_sorting(self):
        net = flip_balancer(k_network([2, 2, 2]), 0)
        assert _violation_bytes(find_sorting_violation(net)) == _violation_bytes(
            find_sorting_violation(net, backend="bitsliced")
        )

    def test_unknown_backend_rejected(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError, match="unknown backend"):
            find_sorting_violation(net, backend="gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            find_counting_violation(net, backend="gpu")

    def test_witness_is_lexicographically_first(self):
        # The packed sweep must report the same minimal witness the int64
        # enumeration finds, not merely *a* witness.
        net = swap_outputs(k_network([2, 2]), 0, 3)
        wit = exhaustive_sorting_witness(net)
        vecs = all_zero_one(net.width)
        legacy = None
        from repro.verify import sorts_batch

        for row in vecs:
            if sorts_batch(net, row[None, :]) is not None:
                legacy = row
                break
        assert legacy is not None
        assert np.array_equal(wit, legacy)


# ---------------------------------------------------------------------------
# Ceiling regression: everything proved at the old limits stays proved, and
# the promoted limits actually hold.
# ---------------------------------------------------------------------------


class TestCeilings:
    def test_limits_promoted(self):
        assert EXHAUSTIVE_LIMITS["int64"] == 20
        assert EXHAUSTIVE_LIMITS["bitsliced"] >= 24
        assert EXHAUSTIVE_WIDTH_LIMIT >= 24
        assert ZERO_ONE_EXHAUSTIVE_WIDTH >= 16

    @pytest.mark.parametrize(
        "factors", [[2, 2], [2, 2, 2], [2, 2, 3], [2, 7]]
    )  # widths 4, 8, 12, 14
    def test_old_widths_prove_on_both_backends(self, factors):
        net = k_network(factors)
        for backend in ("int64", "bitsliced"):
            assert (
                find_sorting_violation(net, exhaustive_limit=net.width, backend=backend)
                is None
            ), (net.name, backend)

    def test_width_16_exhaustive_proof_bitsliced(self):
        # 2^16 inputs in 1024 words per wire — the tier the bit-sliced
        # backend promotes from "overnight" to "unit test".
        net = k_network([2, 2, 2, 2])
        assert net.width == 16
        assert exhaustive_sorting_witness(net) is None
        assert find_sorting_violation(net, exhaustive_limit=16, backend="bitsliced") is None

    def test_width_16_broken_network_caught(self):
        net = k_network([2, 2, 2, 2])
        bad = flip_balancer(net, net.layers()[-1][0].index)
        v = find_sorting_violation(bad, exhaustive_limit=16, backend="bitsliced")
        assert v is not None

    def test_l_family_agrees_at_width_12(self):
        net = l_network([2, 2, 3])
        a = find_sorting_violation(net, exhaustive_limit=12, backend="int64")
        b = find_sorting_violation(net, exhaustive_limit=12, backend="bitsliced")
        assert a is None and b is None
