"""Unit tests for verification input generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import all_zero_one, exhaustive_counts, random_counts, structured_counts


class TestExhaustive:
    def test_covers_space(self):
        batches = list(exhaustive_counts(3, 2, batch=5))
        rows = np.concatenate(batches)
        assert rows.shape == (27, 3)
        assert len({tuple(r) for r in rows}) == 27

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            list(exhaustive_counts(30, 10))


class TestStructured:
    def test_contains_heavy_wire_vectors(self):
        batch = structured_counts(4, heavy=9)
        rows = {tuple(r) for r in batch}
        assert (9, 0, 0, 0) in rows
        assert (0, 0, 0, 9) in rows

    def test_all_non_negative(self):
        assert (structured_counts(6) >= 0).all()

    def test_width_respected(self):
        assert structured_counts(5).shape[1] == 5


class TestRandom:
    def test_shape_and_bounds(self, rng):
        batch = random_counts(4, 100, rng, max_count=7)
        assert batch.shape == (100, 4)
        assert batch.min() >= 0
        assert batch.max() <= 7

    def test_sparse_half_present(self, rng):
        batch = random_counts(8, 200, rng)
        # The sparse half should contribute rows with many zeros.
        zero_fracs = (batch == 0).mean(axis=1)
        assert (zero_fracs > 0.5).any()

    def test_tiny_batch(self, rng):
        assert random_counts(3, 1, rng).shape == (1, 3)


class TestZeroOne:
    def test_all_vectors(self):
        zo = all_zero_one(3)
        assert zo.shape == (8, 3)
        assert len({tuple(r) for r in zo}) == 8
        assert set(np.unique(zo)) <= {0, 1}

    def test_msb_first_encoding(self):
        zo = all_zero_one(3)
        assert list(zo[5]) == [1, 0, 1]

    def test_width_limit(self):
        with pytest.raises(ValueError):
            all_zero_one(23)
