"""Unit tests for counting-property verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import bubble_network, odd_even_network
from repro.core import identity_network, single_balancer_network
from repro.networks import k_network
from repro.verify import check_step_batch, find_counting_violation, step_mask, verify_counting


class TestStepMask:
    def test_accepts_steps(self):
        batch = np.array([[2, 2, 1, 1], [0, 0, 0, 0], [3, 3, 3, 2]])
        assert step_mask(batch).all()

    def test_rejects_non_steps(self):
        batch = np.array([[1, 2, 1, 1], [3, 1, 1, 1]])
        assert not step_mask(batch).any()

    def test_1d_input(self):
        assert step_mask(np.array([1, 1, 0]))[0]


class TestCheckStepBatch:
    def test_balancer_always_counts(self):
        net = single_balancer_network(4)
        batch = np.array([[9, 0, 0, 0], [1, 2, 3, 4]])
        assert check_step_batch(net, batch) is None

    def test_identity_violates(self):
        net = identity_network(3)
        v = check_step_batch(net, np.array([[0, 5, 0]]))
        assert v is not None
        assert list(v.input_counts) == [0, 5, 0]
        assert "violation" in str(v)


class TestFindViolation:
    def test_k_networks_pass(self):
        for factors in ([2, 2], [2, 3], [2, 2, 2], [3, 2, 2]):
            assert find_counting_violation(k_network(factors)) is None

    def test_bubble_fails(self):
        v = find_counting_violation(bubble_network(4))
        assert v is not None
        # The witness must actually reproduce.
        from repro.sim import propagate_counts

        out = propagate_counts(bubble_network(4), v.input_counts)
        assert not step_mask(out)[0]

    def test_odd_even_fails(self):
        assert find_counting_violation(odd_even_network(8)) is not None

    def test_identity_fails_immediately(self):
        assert find_counting_violation(identity_network(4)) is not None

    def test_verify_counting_wrapper(self):
        assert verify_counting(k_network([2, 2]))
        assert not verify_counting(bubble_network(4))

    def test_exhaustive_bound_respected(self):
        # Tiny width triggers the exhaustive sweep path.
        assert find_counting_violation(k_network([2, 2]), exhaustive_bound=10_000) is None

    def test_custom_rng(self):
        rng = np.random.default_rng(42)
        assert find_counting_violation(k_network([2, 3]), rng=rng) is None
