"""Property tests: the verification input generators and the smoothing
checker hold their invariants across random shapes and seeds.

Mirrors ``test_contract_inputs.py``: if a generator quietly drifted off its
documented shape/dtype/coverage guarantees, every downstream verifier run
would silently weaken — so the generators themselves get hypothesis
properties here.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import odd_even_network
from repro.core.sequences import is_step
from repro.networks import k_network
from repro.sim.count_sim import propagate_counts
from repro.verify.inputs import all_zero_one, exhaustive_counts, random_counts, structured_counts
from repro.verify.smoothing import find_smoothing_violation, is_smoother, observed_smoothness

seeds = st.integers(min_value=0, max_value=2**32 - 1)
widths = st.integers(min_value=2, max_value=12)


class TestStructuredCounts:
    @settings(max_examples=40, deadline=None)
    @given(width=widths, heavy=st.integers(min_value=1, max_value=100))
    def test_shape_dtype_bounds(self, width, heavy):
        out = structured_counts(width, heavy)
        assert out.ndim == 2 and out.shape[1] == width
        assert out.dtype == np.int64
        assert np.all(out >= 0)
        # Largest entries: heavy itself, or a width-ramp base bumped by heavy//2.
        assert int(out.max()) <= max(heavy, width + heavy // 2)

    @settings(max_examples=20, deadline=None)
    @given(width=widths)
    def test_coverage_of_adversarial_shapes(self, width):
        """The documented families are all present: every single-heavy-wire
        vector, the zero vector, the all-equal vector, both ramps."""
        heavy = 50
        rows = {tuple(r) for r in structured_counts(width, heavy)}
        for k in range(width):
            one_hot = np.zeros(width, dtype=np.int64)
            one_hot[k] = heavy
            assert tuple(one_hot) in rows
        assert tuple(np.zeros(width, dtype=np.int64)) in rows
        assert tuple(np.full(width, heavy, dtype=np.int64)) in rows
        assert tuple(np.arange(width)) in rows
        assert tuple(np.arange(width)[::-1]) in rows

    def test_deterministic(self):
        assert np.array_equal(structured_counts(7), structured_counts(7))


class TestRandomCounts:
    @settings(max_examples=40, deadline=None)
    @given(
        width=widths,
        batch=st.integers(min_value=1, max_value=64),
        max_count=st.integers(min_value=1, max_value=100),
        seed=seeds,
    )
    def test_shape_dtype_range(self, width, batch, max_count, seed):
        out = random_counts(width, batch, np.random.default_rng(seed), max_count)
        assert out.shape == (batch, width)
        assert out.dtype == np.int64
        assert np.all((out >= 0) & (out <= max_count))

    @settings(max_examples=20, deadline=None)
    @given(width=widths, seed=seeds)
    def test_sparse_half_present(self, width, seed):
        """The second half is sparsified — it must contain strictly more
        zeros than pure uniform sampling would essentially ever produce."""
        out = random_counts(width, 64, np.random.default_rng(seed), 64)
        sparse = out[32:]
        assert (sparse == 0).mean() > 0.35

    @settings(max_examples=20, deadline=None)
    @given(width=widths, batch=st.integers(min_value=1, max_value=32), seed=seeds)
    def test_same_seed_same_batch(self, width, batch, seed):
        a = random_counts(width, batch, np.random.default_rng(seed))
        b = random_counts(width, batch, np.random.default_rng(seed))
        assert np.array_equal(a, b)


class TestExhaustiveCounts:
    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(min_value=1, max_value=4), max_count=st.integers(min_value=0, max_value=3))
    def test_full_coverage_no_duplicates(self, width, max_count):
        batches = list(exhaustive_counts(width, max_count, batch=64))
        all_rows = np.concatenate(batches) if batches else np.empty((0, width))
        assert all_rows.shape == ((max_count + 1) ** width, width)
        assert len({tuple(r) for r in all_rows}) == all_rows.shape[0]
        assert np.all((all_rows >= 0) & (all_rows <= max_count))


class TestAllZeroOne:
    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(min_value=1, max_value=12))
    def test_all_patterns_exactly_once(self, width):
        out = all_zero_one(width)
        assert out.shape == (1 << width, width)
        assert out.dtype == np.int8
        assert set(np.unique(out)) <= {0, 1}
        assert len({tuple(r) for r in out}) == 1 << width


class TestSmoothingProperties:
    @settings(max_examples=10, deadline=None)
    @given(factors=st.lists(st.sampled_from([2, 3]), min_size=2, max_size=3), seed=seeds)
    def test_counting_networks_are_1_smooth(self, factors, seed):
        net = k_network(factors)
        rng = np.random.default_rng(seed)
        assert find_smoothing_violation(net, 1, rng=rng, random_batches=2) is None
        assert is_smoother(net, 1, rng=np.random.default_rng(seed), random_batches=2)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_violation_witness_is_faithful(self, seed):
        """Any returned witness really exceeds the target smoothness."""
        net = odd_even_network(8)  # sorts but does not count
        v = find_smoothing_violation(net, 0, rng=np.random.default_rng(seed))
        if v is not None:
            out = propagate_counts(net, np.asarray(v.input_counts))
            assert int(out.max() - out.min()) == v.smoothness > v.target

    def test_monotone_in_k(self):
        """k-smooth implies (k+1)-smooth: violations can only shrink as k
        grows, and observed_smoothness is the crossover point."""
        net = odd_even_network(8)
        k_obs = observed_smoothness(net)
        assert find_smoothing_violation(net, k_obs) is None
        if k_obs > 0:
            assert find_smoothing_violation(net, k_obs - 1) is not None

    def test_negative_k_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            find_smoothing_violation(k_network([2, 2]), -1)
