"""Integration tests: instrumentation hooks, profiler, and the no-op mode.

Covers the acceptance criterion that with observability disabled the
simulators produce byte-identical results and record nothing, and that with
it enabled the profiler yields coherent hot-spot tables and a valid
``BENCH_profile.json`` + JSON-lines trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.networks import k_network
from repro.sim import ContentionSimulator, ThreadedCounter, propagate_counts, run_tokens


@pytest.fixture
def net():
    return k_network([2, 3, 5])


class TestByteIdenticalResults:
    def test_propagate_counts_identical_on_and_off(self, net):
        x = np.random.default_rng(0).integers(0, 50, size=(32, net.width))
        obs.disable()
        off = propagate_counts(net, x)
        with obs.capture():
            on = propagate_counts(net, x)
        assert off.dtype == on.dtype
        assert np.array_equal(off, on)
        assert off.tobytes() == on.tobytes()

    def test_token_sim_identical_on_and_off(self, net):
        counts = [3] * net.width
        obs.disable()
        off = run_tokens(net, counts, "random", seed=11)
        with obs.capture():
            on = run_tokens(net, counts, "random", seed=11)
        assert off.exit_order == on.exit_order
        assert off.steps == on.steps
        assert np.array_equal(off.output_counts, on.output_counts)

    def test_contention_sim_identical_on_and_off(self, net):
        obs.disable()
        off = ContentionSimulator(net).run(8, 3, collect_latencies=True)
        with obs.capture():
            on = ContentionSimulator(net).run(8, 3, collect_latencies=True)
        assert off.ops == on.ops
        assert off.makespan == on.makespan
        assert off.total_latency == on.total_latency
        assert off.total_wait == on.total_wait
        assert np.array_equal(off.latencies, on.latencies)

    def test_nothing_recorded_while_disabled(self, net):
        obs.disable()
        reg, tr = obs.MetricsRegistry(), obs.Tracer()
        prev_reg = obs.set_default_registry(reg)
        prev_tr = obs.set_default_tracer(tr)
        try:
            x = np.random.default_rng(1).integers(0, 9, size=(4, net.width))
            propagate_counts(net, x)
            run_tokens(net, [2] * net.width, "fifo", seed=0)
            ContentionSimulator(net).run(4, 2)
            ThreadedCounter(net).run_threads(2, 10)
        finally:
            obs.set_default_registry(prev_reg)
            obs.set_default_tracer(prev_tr)
        assert reg.names() == []
        assert len(tr) == 0


class TestInstrumentationHooks:
    def test_build_and_compile_events(self):
        with obs.capture() as (reg, tr):
            net = k_network([2, 3])
            propagate_counts(net, np.zeros(net.width, dtype=np.int64))
        builds = tr.events("build")
        assert builds, "NetworkBuilder.finish should trace builds"
        assert any(e.fields["network"] == "K(2,3)" for e in builds)
        assert reg.get("core.builds").value >= 1
        # compile happened (fresh compile or cache hit from an equal network)
        assert (
            reg.get("core.compiles") is not None
            or reg.get("core.compile_cache_hits") is not None
        )

    def test_token_visit_counters_match_hops(self, net):
        total = 4 * net.width
        with obs.capture() as (reg, tr):
            result = run_tokens(net, [4] * net.width, "random", seed=3)
        visits = reg.get("sim.token.balancer_visits").values
        assert visits.shape[0] == net.size
        # every token exits; hops = sum of per-balancer visits
        assert int(reg.get("sim.token.exits").value) == total
        assert int(reg.get("sim.token.hops").value) == int(visits.sum())
        assert int(visits.sum()) + total == result.steps
        # latency histogram saw one observation per token
        assert reg.get("sim.token.latency_steps").total == total
        (run_ev,) = tr.events("token_run")
        assert run_ev.fields["tokens"] == total

    def test_contention_vectors_and_latency(self, net):
        with obs.capture() as (reg, tr):
            stats = ContentionSimulator(net).run(8, 3, collect_latencies=True)
        visits = reg.get("sim.contention.balancer_visits").values
        waits = reg.get("sim.contention.balancer_wait").values
        # every op crosses at least one and at most depth balancers
        assert stats.ops <= int(visits.sum()) <= stats.ops * net.depth
        assert waits.sum() == pytest.approx(stats.total_wait)
        assert reg.get("sim.contention.latency").total == stats.ops
        assert len(tr.events("contention_run")) == 1

    def test_threaded_counter_publishes_visits(self, net):
        with obs.capture() as (reg, _):
            counter = ThreadedCounter(net)
            stats = counter.run_threads(n_threads=4, ops_per_thread=25)
        assert sorted(stats.all_values()) == list(range(100))
        visits = reg.get("sim.threaded.balancer_visits").values
        assert 100 <= int(visits.sum()) <= 100 * net.depth
        assert int(reg.get("sim.threaded.ops").value) == 100

    def test_counts_layer_timing(self, net):
        x = np.random.default_rng(0).integers(0, 99, size=(16, net.width))
        with obs.capture() as (reg, tr):
            propagate_counts(net, x)
        times = reg.get("sim.counts.layer_seconds").values
        assert times.shape[0] == net.depth
        assert np.all(times >= 0)
        assert len(tr.events("count_layer")) == net.depth
        assert reg.get("sim.counts.batch_size").total == 1
        assert int(reg.get("sim.counts.vectors").value) == 16


class TestProfiler:
    @pytest.mark.parametrize("workload", ["tokens", "contention", "counts"])
    def test_workloads_produce_coherent_rows(self, workload):
        report = obs.profile_network(
            lambda: k_network([2, 3, 5]), workload=workload, tokens=60, procs=4, ops=2,
            batch=8,
        )
        net = k_network([2, 3, 5])
        assert report.network["width"] == 30
        assert len(report.layer_rows) == net.depth
        assert len(report.balancer_rows) == net.size
        # balancer rows are sorted hottest-first (contention ranks by wait)
        if workload == "tokens":
            v = [r["visits"] for r in report.balancer_rows]
            assert v == sorted(v, reverse=True)
        elif workload == "contention":
            w = [(r["wait"], r["visits"]) for r in report.balancer_rows]
            assert w == sorted(w, reverse=True)
        # tables render
        assert "layer" in report.layer_table()
        assert "balancer" in report.balancer_table(5)

    def test_profile_summary_and_payload(self):
        report = obs.profile_network(lambda: k_network([2, 3]), workload="tokens")
        assert report.summary["build_s"] is not None
        assert report.summary["steps"] > 0
        payload = report.bench_payload()
        text = json.dumps(payload)  # JSON-serializable
        assert '"workload": "tokens"' in text
        assert payload["metrics"]

    def test_profile_restores_global_state(self):
        before_reg = obs.default_registry()
        obs.profile_network(lambda: k_network([2, 2]), workload="counts", batch=4)
        assert obs.default_registry() is before_reg
        assert not obs.enabled()

    def test_existing_network_accepted(self, net):
        report = obs.profile_network(net, workload="counts", batch=4)
        assert report.network["name"] == net.name

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            obs.profile_network(lambda: k_network([2, 2]), workload="nope")

    def test_build_must_be_network(self):
        with pytest.raises(TypeError):
            obs.profile_network(lambda: 42, workload="counts")


class TestBenchExport:
    def test_write_bench_json(self, tmp_path):
        path = obs.write_bench_json(
            "unittest", {"rows": [{"a": 1, "b": np.int64(2)}]}, directory=tmp_path
        )
        assert path.name == "BENCH_unittest.json"
        data = json.loads(path.read_text())
        assert data["bench"] == "unittest"
        assert data["schema"] == obs.export.BENCH_SCHEMA_VERSION
        assert data["rows"] == [{"a": 1, "b": 2}]
        assert "created_unix" in data and "repro_version" in data
        assert "git_commit" in data and "family" in data  # schema-2 stamps

    def test_write_jsonl(self, tmp_path):
        path = obs.write_jsonl(tmp_path / "x.jsonl", [{"a": 1}, {"b": np.float64(2.5)}])
        lines = path.read_text().splitlines()
        assert [json.loads(l) for l in lines] == [{"a": 1}, {"b": 2.5}]

    def test_repo_root_finds_pyproject(self):
        assert (obs.repo_root() / "pyproject.toml").exists()
