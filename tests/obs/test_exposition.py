"""Prometheus exposition: render/parse round-trip and finite percentiles."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.exposition import (
    VECTOR_INDEX_LIMIT,
    histogram_from_samples,
    metric_name,
    parse_prometheus,
    percentile_from_buckets,
    render_registries,
    render_registry,
)
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, Histogram, MetricsRegistry


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve.requests").inc(42)
    reg.gauge("serve.queue_depth").set(7)
    h = reg.histogram("serve.request_seconds", DEFAULT_TIME_BUCKETS)
    for v in (1e-4, 2e-4, 3e-3, 0.05, 2.0):
        h.observe(v)
    reg.vector("sim.tokens_per_wire", 4)
    reg.get("sim.tokens_per_wire").add_array(np.array([1, 2, 3, 4]))
    return reg


class TestRender:
    def test_names_are_sanitized_and_prefixed(self):
        assert metric_name("serve.batch_size") == "repro_serve_batch_size"
        assert metric_name("weird name!") == "repro_weird_name_"

    def test_counter_gauge_histogram_vector_render(self):
        text = render_registry(make_registry())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 42" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_serve_request_seconds_count 5" in text
        assert 'repro_sim_tokens_per_wire{index="3"} 4' in text

    def test_histogram_max_gauge_is_exported(self):
        text = render_registry(make_registry())
        assert "repro_serve_request_seconds_max 2" in text

    def test_large_vectors_are_summarized(self):
        reg = MetricsRegistry()
        reg.vector("big", VECTOR_INDEX_LIMIT + 1)
        text = render_registry(reg)
        assert "repro_big_sum 0" in text
        assert f"repro_big_size {VECTOR_INDEX_LIMIT + 1}" in text
        assert 'index="' not in text

    def test_render_registries_earlier_wins_collisions(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(1)
        b.counter("x").inc(99)
        b.counter("y").inc(2)
        text = render_registries([a, b])
        assert "repro_x 1" in text
        assert "repro_x 99" not in text
        assert "repro_y 2" in text


class TestParse:
    def test_round_trip(self):
        series = parse_prometheus(render_registry(make_registry()))
        assert series["repro_serve_requests"]["type"] == "counter"
        assert series["repro_serve_requests"]["samples"] == [({}, 42.0)]
        assert series["repro_serve_request_seconds_bucket"]["type"] == "histogram"
        idx = {
            labels["index"]: v
            for labels, v in series["repro_sim_tokens_per_wire"]["samples"]
        }
        assert idx == {"0": 1.0, "1": 2.0, "2": 3.0, "3": 4.0}

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("this is not a metric line\n")

    def test_malformed_comment_raises(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus("# TIPE foo counter\n")

    def test_histogram_missing_inf_bucket_raises(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            "h_sum 1.5\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(bad)

    def test_histogram_non_cumulative_raises(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_prometheus(bad)

    def test_count_bucket_disagreement_raises(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count disagrees"):
            parse_prometheus(bad)

    def test_histogram_from_samples(self):
        series = parse_prometheus(render_registry(make_registry()))
        got = histogram_from_samples(series, "repro_serve_request_seconds")
        assert got is not None
        bounds, cum, total_sum, count = got
        assert list(bounds) == list(DEFAULT_TIME_BUCKETS)
        assert cum[-1] == count == 5
        assert total_sum == pytest.approx(1e-4 + 2e-4 + 3e-3 + 0.05 + 2.0)
        assert histogram_from_samples(series, "no_such") is None


class TestPercentileFromBuckets:
    def test_interpolates_inside_bucket(self):
        # 10 observations all in (0, 1]: p50 sits mid-bucket.
        p = percentile_from_buckets([1.0, 2.0], [10, 10, 10], 50)
        assert 0.0 < p <= 1.0

    def test_overflow_bucket_clamps_to_max_value(self):
        # Everything beyond the last bound; +Inf must not leak.
        p = percentile_from_buckets([1.0], [0, 5], 99, max_value=7.5)
        assert math.isfinite(p)
        assert 1.0 <= p <= 7.5

    def test_overflow_without_max_clamps_to_last_bound(self):
        p = percentile_from_buckets([1.0, 4.0], [0, 0, 3], 99)
        assert p == 4.0

    def test_non_finite_max_is_ignored(self):
        p = percentile_from_buckets([1.0], [0, 2], 99, max_value=float("inf"))
        assert math.isfinite(p)

    def test_empty_histogram_is_nan(self):
        assert math.isnan(percentile_from_buckets([1.0], [0, 0], 99))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            percentile_from_buckets([1.0], [1], 50)
        with pytest.raises(ValueError):
            percentile_from_buckets([1.0], [1, 1], 150)


class TestHistogramPercentileRegression:
    """Satellite: Histogram.percentile must never return the +inf bound."""

    def test_observe_inf_keeps_percentiles_finite(self):
        h = Histogram("lat", (1.0, 2.0, 4.0))
        h.observe(0.5)
        h.observe(float("inf"))
        for pct in (50, 90, 99, 100):
            assert math.isfinite(h.percentile(pct)), pct

    def test_top_bucket_hit_clamps_to_observed_max(self):
        h = Histogram("lat", (1.0, 2.0))
        for v in (5.0, 6.0, 7.0):
            h.observe(v)
        p99 = h.percentile(99)
        assert math.isfinite(p99)
        assert 2.0 <= p99 <= 7.0

    def test_normal_path_unchanged(self):
        h = Histogram("lat", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert 0.5 <= h.percentile(50) <= 3.0
        assert h.percentile(0) >= 0.5 - 1e-12

    def test_cumulative_counts_shape(self):
        h = Histogram("lat", (1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3]
