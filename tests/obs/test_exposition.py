"""Prometheus exposition: render/parse round-trip and finite percentiles."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.exposition import (
    VECTOR_INDEX_LIMIT,
    histogram_from_samples,
    merge_expositions,
    metric_name,
    parse_prometheus,
    percentile_from_buckets,
    relabel_exposition,
    render_registries,
    render_registry,
)
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, Histogram, MetricsRegistry


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve.requests").inc(42)
    reg.gauge("serve.queue_depth").set(7)
    h = reg.histogram("serve.request_seconds", DEFAULT_TIME_BUCKETS)
    for v in (1e-4, 2e-4, 3e-3, 0.05, 2.0):
        h.observe(v)
    reg.vector("sim.tokens_per_wire", 4)
    reg.get("sim.tokens_per_wire").add_array(np.array([1, 2, 3, 4]))
    return reg


class TestRender:
    def test_names_are_sanitized_and_prefixed(self):
        assert metric_name("serve.batch_size") == "repro_serve_batch_size"
        assert metric_name("weird name!") == "repro_weird_name_"

    def test_counter_gauge_histogram_vector_render(self):
        text = render_registry(make_registry())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 42" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_serve_request_seconds_count 5" in text
        assert 'repro_sim_tokens_per_wire{index="3"} 4' in text

    def test_histogram_max_gauge_is_exported(self):
        text = render_registry(make_registry())
        assert "repro_serve_request_seconds_max 2" in text

    def test_large_vectors_are_summarized(self):
        reg = MetricsRegistry()
        reg.vector("big", VECTOR_INDEX_LIMIT + 1)
        text = render_registry(reg)
        assert "repro_big_sum 0" in text
        assert f"repro_big_size {VECTOR_INDEX_LIMIT + 1}" in text
        assert 'index="' not in text

    def test_render_registries_earlier_wins_collisions(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(1)
        b.counter("x").inc(99)
        b.counter("y").inc(2)
        text = render_registries([a, b])
        assert "repro_x 1" in text
        assert "repro_x 99" not in text
        assert "repro_y 2" in text


class TestParse:
    def test_round_trip(self):
        series = parse_prometheus(render_registry(make_registry()))
        assert series["repro_serve_requests"]["type"] == "counter"
        assert series["repro_serve_requests"]["samples"] == [({}, 42.0)]
        assert series["repro_serve_request_seconds_bucket"]["type"] == "histogram"
        idx = {
            labels["index"]: v
            for labels, v in series["repro_sim_tokens_per_wire"]["samples"]
        }
        assert idx == {"0": 1.0, "1": 2.0, "2": 3.0, "3": 4.0}

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("this is not a metric line\n")

    def test_malformed_comment_raises(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus("# TIPE foo counter\n")

    def test_histogram_missing_inf_bucket_raises(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            "h_sum 1.5\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(bad)

    def test_histogram_non_cumulative_raises(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_prometheus(bad)

    def test_count_bucket_disagreement_raises(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count disagrees"):
            parse_prometheus(bad)

    def test_histogram_from_samples(self):
        series = parse_prometheus(render_registry(make_registry()))
        got = histogram_from_samples(series, "repro_serve_request_seconds")
        assert got is not None
        bounds, cum, total_sum, count = got
        assert list(bounds) == list(DEFAULT_TIME_BUCKETS)
        assert cum[-1] == count == 5
        assert total_sum == pytest.approx(1e-4 + 2e-4 + 3e-3 + 0.05 + 2.0)
        assert histogram_from_samples(series, "no_such") is None


class TestPercentileFromBuckets:
    def test_interpolates_inside_bucket(self):
        # 10 observations all in (0, 1]: p50 sits mid-bucket.
        p = percentile_from_buckets([1.0, 2.0], [10, 10, 10], 50)
        assert 0.0 < p <= 1.0

    def test_overflow_bucket_clamps_to_max_value(self):
        # Everything beyond the last bound; +Inf must not leak.
        p = percentile_from_buckets([1.0], [0, 5], 99, max_value=7.5)
        assert math.isfinite(p)
        assert 1.0 <= p <= 7.5

    def test_overflow_without_max_clamps_to_last_bound(self):
        p = percentile_from_buckets([1.0, 4.0], [0, 0, 3], 99)
        assert p == 4.0

    def test_non_finite_max_is_ignored(self):
        p = percentile_from_buckets([1.0], [0, 2], 99, max_value=float("inf"))
        assert math.isfinite(p)

    def test_empty_histogram_is_nan(self):
        assert math.isnan(percentile_from_buckets([1.0], [0, 0], 99))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            percentile_from_buckets([1.0], [1], 50)
        with pytest.raises(ValueError):
            percentile_from_buckets([1.0], [1, 1], 150)


class TestHistogramPercentileRegression:
    """Satellite: Histogram.percentile must never return the +inf bound."""

    def test_observe_inf_keeps_percentiles_finite(self):
        h = Histogram("lat", (1.0, 2.0, 4.0))
        h.observe(0.5)
        h.observe(float("inf"))
        for pct in (50, 90, 99, 100):
            assert math.isfinite(h.percentile(pct)), pct

    def test_top_bucket_hit_clamps_to_observed_max(self):
        h = Histogram("lat", (1.0, 2.0))
        for v in (5.0, 6.0, 7.0):
            h.observe(v)
        p99 = h.percentile(99)
        assert math.isfinite(p99)
        assert 2.0 <= p99 <= 7.0

    def test_normal_path_unchanged(self):
        h = Histogram("lat", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert 0.5 <= h.percentile(50) <= 3.0
        assert h.percentile(0) >= 0.5 - 1e-12

    def test_cumulative_counts_shape(self):
        h = Histogram("lat", (1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3]


class TestRelabelExposition:
    def test_labels_are_injected_into_every_sample(self):
        text = (
            "# TYPE repro_serve_issued_total counter\n"
            "repro_serve_issued_total 42\n"
            'repro_serve_batches{kind="fast"} 7\n'
        )
        out = relabel_exposition(text, {"shard": "3"})
        assert 'repro_serve_issued_total{shard="3"} 42' in out
        assert 'repro_serve_batches{kind="fast",shard="3"} 7' in out
        assert "# TYPE repro_serve_issued_total counter" in out

    def test_injected_label_wins_collisions(self):
        out = relabel_exposition('m{shard="9"} 1\n', {"shard": "0"})
        assert out == 'm{shard="0"} 1\n'

    def test_empty_labels_is_identity(self):
        text = "repro_x 1\n"
        assert relabel_exposition(text, {}) == text

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            relabel_exposition("not a sample line at all!\n", {"shard": "1"})

    def test_label_values_are_escaped(self):
        out = relabel_exposition("m 1\n", {"path": 'a"b\\c'})
        assert out == 'm{path="a\\"b\\\\c"} 1\n'


class TestMergeExpositions:
    def test_duplicate_type_lines_are_dropped(self):
        a = "# TYPE repro_x counter\nrepro_x{shard=\"0\"} 1\n"
        b = "# TYPE repro_x counter\nrepro_x{shard=\"1\"} 2\n"
        merged = merge_expositions([a, b])
        assert merged.count("# TYPE repro_x counter") == 1
        series = parse_prometheus(merged)
        assert len(series["repro_x"]["samples"]) == 2

    def test_distinct_series_keep_their_types(self):
        merged = merge_expositions(
            ["# TYPE a counter\na 1\n", "# TYPE b gauge\nb 2\n"]
        )
        assert "# TYPE a counter" in merged
        assert "# TYPE b gauge" in merged


class TestMergedHistogramValidation:
    def make_shard_text(self, shard: str, counts: tuple[int, int]) -> str:
        lo, total = counts
        text = (
            "# TYPE repro_serve_request_seconds histogram\n"
            f'repro_serve_request_seconds_bucket{{le="0.001"}} {lo}\n'
            f'repro_serve_request_seconds_bucket{{le="+Inf"}} {total}\n'
            f"repro_serve_request_seconds_sum {total * 0.001}\n"
            f"repro_serve_request_seconds_count {total}\n"
        )
        return relabel_exposition(text, {"shard": shard})

    def test_per_shard_histograms_validate_independently(self):
        # Shard 1's buckets are smaller than shard 0's: interleaved in one
        # scrape they would look non-cumulative unless grouped by labels.
        merged = merge_expositions(
            [self.make_shard_text("0", (90, 100)), self.make_shard_text("1", (3, 5))]
        )
        series = parse_prometheus(merged)  # must not raise
        assert len(series["repro_serve_request_seconds_bucket"]["samples"]) == 4

    def test_grouped_validation_still_catches_bad_shards(self):
        bad = (
            "# TYPE repro_serve_request_seconds histogram\n"
            'repro_serve_request_seconds_bucket{le="0.001",shard="1"} 10\n'
            'repro_serve_request_seconds_bucket{le="+Inf",shard="1"} 4\n'
            'repro_serve_request_seconds_count{shard="1"} 4\n'
        )
        good = self.make_shard_text("0", (90, 100))
        with pytest.raises(ValueError, match="cumulative|non-cumulative|decreas"):
            parse_prometheus(merge_expositions([good, bad]))
