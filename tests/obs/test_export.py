"""Tests for BENCH_*.json envelope stamping: git commit + network family."""

from __future__ import annotations

import json
import re
import subprocess

import pytest

from repro.obs.export import (
    BENCH_SCHEMA_VERSION,
    bench_json_payload,
    git_commit,
    repo_root,
    write_bench_json,
)


def in_git_checkout() -> bool:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root(), capture_output=True, text=True
        )
    except OSError:
        return False
    return out.returncode == 0


class TestGitCommit:
    def test_matches_head_when_in_a_checkout(self):
        sha = git_commit()
        if not in_git_checkout():
            assert sha is None
            return
        assert sha is not None
        assert re.fullmatch(r"[0-9a-f]{40}", sha), sha
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root(), capture_output=True, text=True
        ).stdout.strip()
        assert sha == head

    def test_cached(self):
        assert git_commit() is git_commit()


class TestEnvelope:
    def test_schema_and_stamps_present(self):
        env = bench_json_payload("demo", {"rows": []})
        assert env["schema"] == BENCH_SCHEMA_VERSION == 2
        assert "git_commit" in env
        assert env["family"] is None

    def test_family_argument_stamps(self):
        env = bench_json_payload("demo", {"rows": []}, family="K")
        assert env["family"] == "K"

    def test_family_argument_beats_payload_key(self):
        env = bench_json_payload("demo", {"family": "L"}, family="K")
        assert env["family"] == "K"

    def test_payload_family_used_when_no_argument(self):
        # bench_build_scale passes family inside its payload; it must survive.
        env = bench_json_payload("demo", {"family": "L", "rows": []})
        assert env["family"] == "L"

    def test_payload_keys_preserved(self):
        env = bench_json_payload("demo", {"rows": [1, 2], "summary": {"x": 1}})
        assert env["rows"] == [1, 2]
        assert env["summary"] == {"x": 1}


class TestWriteBenchJson:
    def test_written_file_carries_the_stamps(self, tmp_path):
        path = write_bench_json("stamptest", {"rows": []}, directory=tmp_path, family="R")
        data = json.loads(path.read_text())
        assert path.name == "BENCH_stamptest.json"
        assert data["bench"] == "stamptest"
        assert data["schema"] == 2
        assert data["family"] == "R"
        assert data["git_commit"] == git_commit()
        assert "repro_version" in data and "created_unix" in data

    def test_default_family_is_null_not_missing(self, tmp_path):
        path = write_bench_json("stamptest2", {"rows": []}, directory=tmp_path)
        data = json.loads(path.read_text())
        assert "family" in data and data["family"] is None
