"""The no-op guarantee, asserted mechanically.

The observability layer promises that with ``obs`` disabled the vectorized
hot path of :func:`repro.sim.propagate_counts` does **no** extra
per-balancer Python work: no frames from ``repro/obs`` are entered, and the
number of Python-level function calls is a fixed structural constant — it
must not scale with batch size (the vectorized invariant) and must match a
recorded op-count baseline derived from the compiled layer structure.

Timing assertions are deliberately avoided (noisy under CI); call counting
via ``sys.setprofile`` is exact and deterministic.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

import repro.obs as obs
from repro.core.compiled import compile_network
from repro.networks import k_network
from repro.sim import propagate_counts


def _count_calls(fn):
    """Run ``fn()`` counting Python 'call' events and any frame entered in
    repro/obs code.  Returns (python_calls, obs_calls)."""
    counts = {"py": 0, "obs": 0}
    sep = "repro" + "/".join(["", "obs", ""])  # "repro/obs/"

    def tracer(frame, event, arg):
        if event == "call":
            counts["py"] += 1
            fname = frame.f_code.co_filename.replace("\\", "/")
            if sep in fname:
                counts["obs"] += 1
        return None

    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return counts["py"], counts["obs"]


@pytest.fixture
def net():
    return k_network([2, 3, 5])


class TestDisabledOverhead:
    def test_no_obs_frames_and_batch_independent_call_count(self, net):
        obs.disable()
        comp = compile_network(net)  # warm the compile cache outside the count
        xs = {
            b: np.random.default_rng(0).integers(0, 50, size=(b, net.width))
            for b in (4, 512)
        }
        for x in xs.values():
            # Warm lazy numpy internals and the executor's per-batch-size
            # scratch pool: steady state is the regime the guarantee covers.
            propagate_counts(net, x)

        calls = {}
        for b, x in xs.items():
            py, obs_calls = _count_calls(lambda x=x: propagate_counts(net, x))
            assert obs_calls == 0, "disabled hot path entered repro/obs code"
            calls[b] = py

        # Vectorized invariant: Python work must not scale with batch size.
        assert calls[4] == calls[512], calls

        # Recorded op-count baseline: the sweep's Python-level work is one
        # bounded set of calls per (layer, width-group) plus fixed entry
        # overhead.  Groups for K(2,3,5): one width-group per layer.
        n_groups = sum(len(layer) for layer in comp.layers)
        assert n_groups == comp.depth == 5
        # Entry/validation/plan-lookup plus <= a small constant of calls per
        # group (the semantics kernel dispatch and its offset-column lookup
        # are one Python frame each).  The exact figure may drift with numpy
        # versions; what must NOT happen is per-balancer (26) or per-token
        # scaling, so bound it well below one call per balancer per group.
        assert calls[4] <= 14 + 7 * n_groups, calls

    def test_enabled_path_does_more_but_only_python_side(self, net):
        """Sanity inversion: with obs on, obs frames ARE entered — proving
        the counter above measures what it claims to."""
        x = np.random.default_rng(0).integers(0, 50, size=(8, net.width))
        propagate_counts(net, x)  # warm
        with obs.capture():
            _, obs_calls = _count_calls(lambda: propagate_counts(net, x))
        assert obs_calls > 0

    def test_disabled_results_match_enabled(self, net):
        x = np.random.default_rng(7).integers(0, 100, size=(64, net.width))
        obs.disable()
        off = propagate_counts(net, x)
        with obs.capture():
            on = propagate_counts(net, x)
        assert off.tobytes() == on.tobytes()
