"""Unit tests for the event tracer, ring buffer, and JSONL export."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.obs.tracer import Tracer, default_tracer, set_default_tracer, trace_event


class TestTracer:
    def test_record_sequencing(self):
        tr = Tracer()
        tr.record("a", x=1)
        tr.record("b", y="z")
        evs = tr.events()
        assert [e.kind for e in evs] == ["a", "b"]
        assert evs[0].seq == 0 and evs[1].seq == 1
        assert evs[0].t <= evs[1].t
        assert evs[1].fields == {"y": "z"}

    def test_kind_filter(self):
        tr = Tracer()
        tr.record("hop")
        tr.record("exit")
        tr.record("hop")
        assert len(tr.events("hop")) == 2

    def test_ring_buffer_evicts_oldest(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.record("e", i=i)
        assert len(tr) == 4
        assert [e.fields["i"] for e in tr.events()] == [6, 7, 8, 9]
        assert tr.dropped == 6

    def test_clear(self):
        tr = Tracer(capacity=2)
        for _ in range(5):
            tr.record("e")
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_span_records_duration_and_extras(self):
        tr = Tracer()
        with tr.span("compile", network="K") as extra:
            extra["layers"] = 5
        (ev,) = tr.events("compile")
        assert ev.fields["network"] == "K"
        assert ev.fields["layers"] == 5
        assert ev.fields["dur_s"] >= 0

    def test_span_records_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert len(tr.events("boom")) == 1

    def test_jsonl_roundtrip(self, tmp_path):
        tr = Tracer()
        tr.record("a", n=1)
        tr.record("b", s="t")
        path = tr.export_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        objs = [json.loads(line) for line in lines]
        assert objs[0]["kind"] == "a" and objs[0]["n"] == 1
        assert {"seq", "t", "kind"} <= set(objs[1])

    def test_empty_jsonl(self, tmp_path):
        path = Tracer().export_jsonl(tmp_path / "empty.jsonl")
        assert path.read_text() == ""


class TestModuleLevelHelpers:
    def test_trace_event_noop_when_disabled(self):
        tr = Tracer()
        prev = set_default_tracer(tr)
        try:
            obs.disable()
            assert trace_event("nope") is None
            assert len(tr) == 0
        finally:
            set_default_tracer(prev)

    def test_trace_event_records_when_enabled(self):
        tr = Tracer()
        prev = set_default_tracer(tr)
        try:
            obs.enable()
            ev = trace_event("yes", k=1)
            assert ev is not None and len(tr) == 1
        finally:
            obs.disable()
            set_default_tracer(prev)

    def test_module_span_noop_when_disabled(self):
        tr = Tracer()
        prev = set_default_tracer(tr)
        try:
            obs.disable()
            with obs.span("quiet"):
                pass
            assert len(tr) == 0
        finally:
            set_default_tracer(prev)


class TestCapture:
    def test_capture_swaps_and_restores(self):
        before_tr = default_tracer()
        assert not obs.enabled()
        with obs.capture() as (reg, tr):
            assert obs.enabled()
            assert default_tracer() is tr
            trace_event("inside")
            reg.counter("c").inc()
        assert not obs.enabled()
        assert default_tracer() is before_tr
        assert len(tr.events("inside")) == 1

    def test_capture_restores_on_exception(self):
        before = default_tracer()
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("x")
        assert default_tracer() is before
        assert not obs.enabled()

    def test_nested_capture(self):
        with obs.capture() as (_, outer_tr):
            trace_event("outer")
            with obs.capture() as (_, inner_tr):
                trace_event("inner")
            trace_event("outer")
        assert len(outer_tr) == 2
        assert [e.kind for e in inner_tr.events()] == ["inner"]
