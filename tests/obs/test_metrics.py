"""Unit tests for the metric instruments and registry."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    VectorCounter,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("ops")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_snapshot(self):
        c = Counter("ops")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_tracks_extrema(self):
        g = Gauge("depth")
        for v in (3, 9, 1):
            g.set(v)
        assert g.value == 1
        assert g.max_value == 9
        assert g.min_value == 1
        assert g.updates == 3

    def test_snapshot_before_update(self):
        snap = Gauge("depth").snapshot()
        assert snap["max"] is None and snap["min"] is None


class TestHistogram:
    def test_observe_and_mean(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.total == 4
        assert h.counts == [1, 1, 1, 1]  # one per bucket incl. overflow
        assert h.mean == pytest.approx(555.5 / 4)
        assert h.min_value == 0.5 and h.max_value == 500

    def test_percentiles_monotone_and_bounded(self):
        h = Histogram("lat")
        rng = np.random.default_rng(0)
        vals = rng.exponential(scale=30.0, size=500)
        for v in vals:
            h.observe(v)
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 <= p90 <= p99
        assert h.min_value <= p50 and p99 <= h.max_value
        # Fixed-bucket estimate should land in the right ballpark.
        assert abs(p50 - float(np.percentile(vals, 50))) < 30.0

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram("lat").percentile(95))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5, 1))

    def test_invalid_pct(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)


class TestVectorCounter:
    def test_inc_and_grow(self):
        v = VectorCounter("visits", 3)
        v.inc(1)
        v.inc(2, 5)
        v.grow_to(5)
        assert v.values.tolist() == [0, 1, 5, 0, 0]
        v.grow_to(2)  # never shrinks
        assert v.size == 5

    def test_add_array_grows(self):
        v = VectorCounter("visits", 2)
        v.add_array(np.array([1, 2, 3]))
        assert v.values.tolist() == [1, 2, 3]

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            VectorCounter("visits", 0)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.get("a") is not None
        assert reg.get("missing") is None

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_vector_grows_across_networks(self):
        reg = MetricsRegistry()
        reg.vector("visits", 3).inc(0)
        vec = reg.vector("visits", 6)
        assert vec.size == 6
        assert vec.values[0] == 1

    def test_snapshot_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", DEFAULT_TIME_BUCKETS).observe(0.01)
        reg.vector("v", 2).inc(1)
        text = json.dumps(reg.snapshot())
        assert "bucket_counts" in text

    def test_as_rows_covers_all_types(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(3)
        reg.vector("v", 2).inc(0, 4)
        rows = reg.as_rows()
        assert {r["type"] for r in rows} == {"counter", "gauge", "histogram", "vector"}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        prev = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(prev)
        assert default_registry() is prev
