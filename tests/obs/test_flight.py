"""Flight recorder: stamped payloads, dump files, and directory resolution."""

from __future__ import annotations

import json

import repro.obs as obs
from repro.obs.flight import dump_flight, flight_dir, flight_payload
from repro.obs.spans import SpanRecorder


class TestFlightPayload:
    def test_payload_carries_envelope_and_spans(self):
        rec = SpanRecorder()
        s = rec.start("request", verb="inc")
        s.mark("parsed")
        rec.finish(s)
        reg = obs.MetricsRegistry()
        reg.counter("serve.requests").inc(3)
        payload = flight_payload("test-reason", detail="why", recorder=rec, registry=reg)
        assert payload["bench"] == "flight"
        assert payload["schema"] == 2
        assert payload["reason"] == "test-reason"
        assert payload["detail"] == "why"
        assert payload["spans_dropped"] == 0
        assert len(payload["spans"]) == 1
        assert payload["spans"][0]["kind"] == "request"
        assert payload["metrics"]["serve.requests"]["value"] == 3

    def test_payload_defaults_to_process_globals(self):
        with obs.capture() as (registry, _):
            registry.counter("x").inc()
            rec = obs.default_span_recorder()
            rec.finish(rec.start("batch"))
            payload = flight_payload("r")
        assert len(payload["spans"]) == 1
        assert "x" in payload["metrics"]


class TestDumpFlight:
    def test_dump_writes_stamped_json(self, tmp_path):
        rec = SpanRecorder()
        rec.finish(rec.start("request"))
        path = dump_flight("exactly-once-violation", directory=tmp_path, recorder=rec)
        assert path.parent == tmp_path
        assert path.name.startswith("FLIGHT_exactly-once-violation_")
        data = json.loads(path.read_text())
        assert data["reason"] == "exactly-once-violation"
        assert data["spans"][0]["kind"] == "request"

    def test_reason_is_sanitized_in_filename(self, tmp_path):
        path = dump_flight("weird reason/with:stuff", directory=tmp_path)
        assert "/" not in path.name[len("FLIGHT_") :].rsplit("_", 1)[0]
        assert path.is_file()

    def test_directory_resolution_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "env_dir"))
        assert flight_dir() == tmp_path / "env_dir"
        # Explicit argument wins over the environment.
        assert flight_dir(tmp_path) == tmp_path

    def test_directory_resolution_default_cwd(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert flight_dir() == tmp_path
