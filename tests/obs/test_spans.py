"""SpanRecorder: ring wraparound, linkage fields, and capture() scoping."""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs.spans import DEFAULT_SPAN_CAPACITY, Span, SpanRecorder


class TestSpan:
    def test_marks_are_monotone_offsets(self):
        s = Span(0, "request", verb="inc")
        a = s.mark("parsed")
        b = s.mark("enqueued")
        assert 0 <= a <= b
        assert s.marks["parsed"] == a and s.marks["enqueued"] == b

    def test_to_dict_carries_linkage_and_fields(self):
        rec = SpanRecorder()
        parent = rec.start("batch", size=3)
        child = rec.start("executor", parent_id=parent.span_id, plan="K(2,3)")
        rec.finish(child)
        d = child.to_dict()
        assert d["parent_id"] == parent.span_id
        assert d["kind"] == "executor"
        assert d["plan"] == "K(2,3)"
        assert d["status"] == "ok"
        assert d["dur_s"] >= 0

    def test_finished_property(self):
        rec = SpanRecorder()
        s = rec.start("request")
        assert not s.finished
        rec.finish(s)
        assert s.finished


class TestRingWraparound:
    def test_ring_keeps_newest_and_counts_dropped(self):
        rec = SpanRecorder(capacity=4)
        for i in range(10):
            s = rec.start("request", i=i)
            rec.finish(s)
        assert len(rec) == 4
        assert rec.dropped == 6
        assert rec.started == 10
        # Oldest-first, and only the newest four survive.
        assert [s.fields["i"] for s in rec.completed()] == [6, 7, 8, 9]

    def test_ids_keep_advancing_across_wraparound(self):
        rec = SpanRecorder(capacity=2)
        spans = [rec.start("request") for _ in range(5)]
        for s in spans:
            rec.finish(s)
        assert [s.span_id for s in rec.completed()] == [3, 4]

    def test_clear_resets_ring_and_dropped(self):
        rec = SpanRecorder(capacity=2)
        for _ in range(5):
            rec.finish(rec.start("request"))
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0
        # id minting is not reset — ids stay unique per recorder lifetime
        assert rec.started == 5

    def test_kind_filter(self):
        rec = SpanRecorder()
        rec.finish(rec.start("request"))
        rec.finish(rec.start("batch"))
        rec.finish(rec.start("request"))
        assert len(rec.completed("request")) == 2
        assert len(rec.completed("batch")) == 1
        assert len(rec.completed()) == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_default_capacity_bounds_memory(self):
        assert SpanRecorder().capacity == DEFAULT_SPAN_CAPACITY


class TestCaptureScoping:
    def test_capture_swaps_in_a_fresh_recorder(self):
        before = obs.default_span_recorder()
        with obs.capture():
            inside = obs.default_span_recorder()
            assert inside is not before
            inside.finish(inside.start("request"))
            assert len(inside) == 1
        after = obs.default_span_recorder()
        assert after is before
        assert len(before) == 0 or before is not inside

    def test_capture_accepts_explicit_recorder(self):
        mine = SpanRecorder(capacity=8)
        with obs.capture(spans=mine):
            assert obs.default_span_recorder() is mine

    def test_current_batch_slot_starts_empty(self):
        with obs.capture():
            assert obs.default_span_recorder().current_batch is None
