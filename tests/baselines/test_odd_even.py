"""Tests for Batcher's odd-even merge sort baseline."""

from __future__ import annotations

import pytest

from repro.baselines import odd_even_depth, odd_even_network
from repro.verify import find_counting_violation, find_sorting_violation


class TestOddEven:
    @pytest.mark.parametrize("w", [2, 4, 8, 16])
    def test_sorts(self, w):
        assert find_sorting_violation(odd_even_network(w)) is None

    @pytest.mark.parametrize("w,depth", [(2, 1), (4, 3), (8, 6), (16, 10)])
    def test_depth(self, w, depth):
        assert odd_even_network(w).depth == depth == odd_even_depth(w)

    @pytest.mark.parametrize("w", [4, 8, 16])
    def test_does_not_count(self, w):
        """Sorting does not imply counting: Batcher odd-even is the classic
        sorting network whose balancing version fails the step property."""
        assert find_counting_violation(odd_even_network(w)) is not None

    def test_fewer_comparators_than_bitonic(self):
        from repro.baselines import bitonic_network

        for w in (8, 16, 32):
            assert odd_even_network(w).size < bitonic_network(w).size

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            odd_even_network(10)
