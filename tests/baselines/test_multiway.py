"""Tests for the multiway mergesort baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import multiway_network
from repro.sim import sorted_outputs
from repro.verify import find_counting_violation, find_sorting_violation


class TestSorting:
    @pytest.mark.parametrize(
        "factors", [[2, 2], [3, 2], [2, 3], [5, 3], [2, 2, 2], [2, 3, 2], [2, 2, 2, 2], [7, 2]]
    )
    def test_sorts_exhaustively(self, factors):
        assert find_sorting_violation(multiway_network(factors)) is None

    def test_random_batches(self, rng):
        net = multiway_network([5, 3, 2])
        batch = rng.integers(-500, 500, size=(40, 30))
        assert np.array_equal(sorted_outputs(net, batch), np.sort(batch, axis=1))

    def test_only_two_comparators(self):
        assert multiway_network([5, 3, 2]).max_balancer_width == 2

    def test_unit_factors_stripped(self):
        assert multiway_network([1, 2, 1, 3]).width == 6

    def test_width_validation(self):
        from repro.core import NetworkBuilder
        from repro.baselines import build_multiway_sort

        b = NetworkBuilder(5)
        with pytest.raises(ValueError, match="product"):
            build_multiway_sort(b, list(b.inputs), [2, 2])

    def test_depth_polylog(self):
        """O(log² w) with small constants: stays well under 2-comparator
        bubble depth."""
        net = multiway_network([5, 3, 2])
        assert net.depth < 30  # bubble at w = 30 would be 57


class TestCounting:
    @pytest.mark.parametrize("factors", [[2, 2], [3, 2], [2, 2, 2]])
    def test_does_not_count(self, factors):
        assert find_counting_violation(multiway_network(factors)) is not None
