"""Tests for arbitrary-width Batcher odd-even mergesort."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import batcher_any_depth, batcher_any_network
from repro.sim import sorted_outputs
from repro.verify import find_counting_violation, find_sorting_violation


class TestSorting:
    @pytest.mark.parametrize("w", [1, 2, 3, 5, 6, 7, 9, 11, 13, 16, 17])
    def test_sorts_exhaustively(self, w):
        assert find_sorting_violation(batcher_any_network(w)) is None

    def test_agrees_with_power_of_two_batcher(self):
        from repro.baselines import odd_even_network

        for w in (4, 8, 16):
            a = batcher_any_network(w)
            b = odd_even_network(w)
            assert a.depth == b.depth
            assert a.size == b.size

    @pytest.mark.parametrize("w", [3, 5, 10, 23, 30])
    def test_depth_within_bound(self, w):
        assert batcher_any_network(w).depth <= batcher_any_depth(w)

    def test_random_values_round_trip(self, rng):
        net = batcher_any_network(23)
        batch = rng.integers(-100, 100, size=(50, 23))
        out = sorted_outputs(net, batch)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_width_one(self):
        assert batcher_any_network(1).size == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            batcher_any_network(0)
        with pytest.raises(ValueError):
            batcher_any_depth(0)


class TestCounting:
    @pytest.mark.parametrize("w", [4, 6, 8, 12])
    def test_does_not_count(self, w):
        """Like power-of-two odd-even: a sorting network only."""
        assert find_counting_violation(batcher_any_network(w)) is not None
