"""Tests for the bitonic counting network baseline (paper ref [3])."""

from __future__ import annotations

import pytest

from repro.baselines import bitonic_depth, bitonic_network
from repro.verify import find_counting_violation, find_sorting_violation


class TestBitonic:
    @pytest.mark.parametrize("w", [2, 4, 8, 16])
    def test_counts(self, w):
        assert find_counting_violation(bitonic_network(w)) is None

    @pytest.mark.parametrize("w", [2, 4, 8, 16])
    def test_sorts(self, w):
        assert find_sorting_violation(bitonic_network(w)) is None

    @pytest.mark.parametrize("w,depth", [(2, 1), (4, 3), (8, 6), (16, 10), (32, 15)])
    def test_depth_formula(self, w, depth):
        assert bitonic_network(w).depth == depth == bitonic_depth(w)

    def test_only_two_balancers(self):
        assert bitonic_network(16).max_balancer_width == 2

    def test_size_formula(self):
        # k(k+1)/2 layers of w/2 balancers each.
        for w in (4, 8, 16):
            k = w.bit_length() - 1
            assert bitonic_network(w).size == (w // 2) * k * (k + 1) // 2

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            bitonic_network(6)
        with pytest.raises(ValueError):
            bitonic_depth(0)

    def test_width_one(self):
        assert bitonic_network(1).size == 0
