"""Tests for the mesh-based wide-comparator sorters (shearsort,
columnsort)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    columnsort_network,
    columnsort_valid,
    shearsort_depth,
    shearsort_network,
)
from repro.sim import sorted_outputs
from repro.verify import find_counting_violation, find_sorting_violation


class TestShearsort:
    @pytest.mark.parametrize("r,s", [(2, 2), (2, 3), (3, 2), (3, 3), (4, 4), (5, 3), (2, 8), (8, 2)])
    def test_sorts(self, r, s):
        assert find_sorting_violation(shearsort_network(r, s)) is None

    @pytest.mark.parametrize("r,s", [(2, 2), (4, 4), (8, 2), (5, 3)])
    def test_depth_formula(self, r, s):
        assert shearsort_network(r, s).depth == shearsort_depth(r, s)

    def test_balancer_width_bound(self):
        net = shearsort_network(4, 6)
        assert net.max_balancer_width == 6  # max(r, s)

    def test_depth_grows_with_rows(self):
        assert shearsort_depth(16, 4) > shearsort_depth(4, 4)

    def test_random_values(self, rng):
        net = shearsort_network(4, 5)
        batch = rng.integers(-99, 99, size=(30, 20))
        assert np.array_equal(sorted_outputs(net, batch), np.sort(batch, axis=1))

    @pytest.mark.parametrize("r,s", [(3, 2), (3, 3), (5, 3)])
    def test_odd_row_shearsort_does_not_count(self, r, s):
        assert find_counting_violation(shearsort_network(r, s)) is not None

    @pytest.mark.parametrize("r,s", [(2, 2), (4, 2), (4, 4)])
    def test_even_row_shearsort_passes_counting_search(self, r, s):
        """Empirical observation (not a claim from the paper, and not a
        proof): shearsort with an even number of rows survives extensive
        counting-violation search, while odd-row instances fail
        immediately.  Pinned so a behaviour change gets noticed."""
        assert find_counting_violation(shearsort_network(r, s)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            shearsort_network(0, 2)


class TestColumnsort:
    @pytest.mark.parametrize("r,s", [(2, 1), (2, 2), (4, 2), (8, 2), (8, 3), (10, 3), (18, 4)])
    def test_sorts(self, r, s):
        assert find_sorting_violation(columnsort_network(r, s)) is None

    def test_depth_is_four(self):
        assert columnsort_network(8, 3).depth == 4

    def test_balancer_width_at_most_r(self):
        net = columnsort_network(10, 3)
        assert net.max_balancer_width <= 10

    def test_validity_condition(self):
        assert columnsort_valid(8, 3)
        assert not columnsort_valid(6, 3)  # 6 < 2*(3-1)^2
        with pytest.raises(ValueError, match="columnsort requires"):
            columnsort_network(6, 3)

    def test_condition_is_needed(self):
        """Outside the r >= 2(s-1)^2 regime the construction really can
        fail (build it anyway by bypassing the guard)."""
        from repro.baselines.columnsort import build_columnsort
        from repro.core import NetworkBuilder
        import repro.baselines.columnsort as cs

        orig = cs.columnsort_valid
        cs.columnsort_valid = lambda r, s: True
        try:
            b = NetworkBuilder(8)
            out = build_columnsort(b, list(b.inputs), 2, 4)  # 2 < 2*9
            net = b.finish(out)
        finally:
            cs.columnsort_valid = orig
        assert find_sorting_violation(net) is not None

    def test_random_values(self, rng):
        net = columnsort_network(8, 2)
        batch = rng.integers(0, 1000, size=(40, 16))
        assert np.array_equal(sorted_outputs(net, batch), np.sort(batch, axis=1))

    @pytest.mark.parametrize("r,s", [(4, 2), (8, 2)])
    def test_not_a_counting_network(self, r, s):
        assert find_counting_violation(columnsort_network(r, s)) is not None
