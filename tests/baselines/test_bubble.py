"""Tests for the Figure 3 counterexample networks."""

from __future__ import annotations

import pytest

from repro.baselines import brick_network, bubble_network
from repro.verify import find_counting_violation, find_sorting_violation


class TestBubble:
    @pytest.mark.parametrize("w", [2, 3, 4, 5, 6, 8])
    def test_sorts(self, w):
        assert find_sorting_violation(bubble_network(w)) is None

    @pytest.mark.parametrize("w", [3, 4, 5, 6])
    def test_does_not_count(self, w):
        """Figure 3: a sorting network that is not a counting network."""
        assert find_counting_violation(bubble_network(w)) is not None

    def test_width_two_is_one_balancer(self):
        assert bubble_network(2).size == 1

    def test_depth(self):
        for w in (3, 4, 5, 8):
            assert bubble_network(w).depth == 2 * w - 3

    def test_size_is_triangular(self):
        for w in (3, 5, 7):
            assert bubble_network(w).size == w * (w - 1) // 2

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bubble_network(1)


class TestBrick:
    @pytest.mark.parametrize("w", [2, 3, 4, 5, 6, 8])
    def test_sorts(self, w):
        assert find_sorting_violation(brick_network(w)) is None

    @pytest.mark.parametrize("w", [3, 4, 5, 6])
    def test_does_not_count(self, w):
        assert find_counting_violation(brick_network(w)) is not None

    def test_depth_is_width(self):
        for w in (3, 4, 6):
            assert brick_network(w).depth == w

    def test_width_validation(self):
        with pytest.raises(ValueError):
            brick_network(0)
