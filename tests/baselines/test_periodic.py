"""Tests for the periodic balanced network baseline."""

from __future__ import annotations

import pytest

from repro.baselines import periodic_depth, periodic_network
from repro.verify import find_counting_violation, find_sorting_violation


class TestPeriodic:
    @pytest.mark.parametrize("w", [2, 4, 8, 16])
    def test_counts(self, w):
        assert find_counting_violation(periodic_network(w)) is None

    @pytest.mark.parametrize("w", [2, 4, 8, 16])
    def test_sorts(self, w):
        assert find_sorting_violation(periodic_network(w)) is None

    @pytest.mark.parametrize("w", [4, 8, 16, 32])
    def test_depth_is_k_squared(self, w):
        assert periodic_network(w).depth == periodic_depth(w)

    def test_fewer_blocks_do_not_count(self):
        """Truncating to fewer than k blocks breaks the counting property —
        the periodicity genuinely needs all k rounds."""
        net = periodic_network(8, blocks=1)
        assert find_counting_violation(net) is not None

    def test_extra_blocks_still_count(self):
        """Extra blocks are harmless (idempotence on step outputs)."""
        net = periodic_network(8, blocks=4)
        assert find_counting_violation(net) is None

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            periodic_network(12)
