"""Unit tests for comparator-network evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import identity_network, single_balancer_network
from repro.networks import k_network
from repro.sim import (
    evaluate_comparators,
    evaluate_comparators_reference,
    sorted_outputs,
    sorts_descending,
)


class TestEvaluate:
    def test_single_comparator_sorts_descending(self):
        net = single_balancer_network(4)
        out = evaluate_comparators(net, np.array([2, 9, 1, 5]))
        assert list(out) == [9, 5, 2, 1]

    def test_identity(self):
        net = identity_network(3)
        assert list(evaluate_comparators(net, np.array([3, 1, 2]))) == [3, 1, 2]

    def test_k_network_sorts(self, rng):
        net = k_network([2, 2, 2])
        vals = rng.permutation(8)
        out = evaluate_comparators(net, vals)
        assert list(out) == sorted(vals, reverse=True)

    def test_multiset_preserved(self, rng):
        net = k_network([3, 2, 2])
        vals = rng.integers(0, 5, size=(10, net.width))
        out = evaluate_comparators(net, vals)
        for i in range(10):
            assert sorted(out[i]) == sorted(vals[i])

    def test_matches_reference(self, rng):
        net = k_network([2, 3])
        for _ in range(10):
            vals = rng.integers(-50, 50, size=net.width)
            assert list(evaluate_comparators(net, vals)) == list(
                evaluate_comparators_reference(net, vals)
            )

    def test_float_dtype(self, rng):
        net = k_network([2, 2])
        vals = rng.random(4)
        out = evaluate_comparators(net, vals)
        assert list(out) == sorted(vals, reverse=True)
        assert out.dtype == vals.dtype

    def test_duplicate_values(self):
        net = k_network([2, 2, 2])
        out = evaluate_comparators(net, np.array([1, 1, 0, 0, 1, 0, 1, 1]))
        assert list(out) == [1, 1, 1, 1, 1, 0, 0, 0]

    def test_batch_shapes(self, rng):
        net = k_network([2, 2])
        vals = rng.integers(0, 10, size=(6, 4))
        out = evaluate_comparators(net, vals)
        assert out.shape == (6, 4)

    def test_wrong_width(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError):
            evaluate_comparators(net, np.zeros(3))


class TestHelpers:
    def test_sorts_descending_mask(self, rng):
        net = k_network([2, 2])
        vals = rng.permutation(4)[None, :]
        assert sorts_descending(net, vals).all()
        assert sorts_descending(identity_network(4), np.array([[1, 2, 3, 4]]))[0] == False  # noqa: E712

    def test_sorted_outputs_ascending_default(self, rng):
        net = k_network([2, 2, 2])
        vals = rng.permutation(8)
        out = sorted_outputs(net, vals)
        assert list(out) == sorted(vals)

    def test_sorted_outputs_descending(self, rng):
        net = k_network([2, 2, 2])
        vals = rng.permutation(8)
        assert list(sorted_outputs(net, vals, ascending=False)) == sorted(vals, reverse=True)
