"""Unit tests for quiescent count propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import identity_network, single_balancer_network
from repro.core.sequences import is_step
from repro.networks import k_network, l_network
from repro.sim import balancer_outputs, output_counts, propagate_counts, propagate_counts_reference


class TestBalancerOutputs:
    @pytest.mark.parametrize("p", [2, 3, 5, 8])
    def test_totals_preserved(self, p):
        for total in range(0, 4 * p):
            out = balancer_outputs(total, p)
            assert int(out.sum()) == total
            assert is_step(out)

    def test_round_robin_semantics(self):
        # 7 tokens through a 3-balancer: wires get 3, 2, 2.
        assert list(balancer_outputs(7, 3)) == [3, 2, 2]

    def test_zero_tokens(self):
        assert list(balancer_outputs(0, 4)) == [0, 0, 0, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            balancer_outputs(-1, 2)


class TestPropagate:
    def test_identity_passthrough(self):
        net = identity_network(4)
        x = np.array([3, 1, 4, 1])
        assert list(propagate_counts(net, x)) == [3, 1, 4, 1]

    def test_single_balancer(self):
        net = single_balancer_network(4)
        out = propagate_counts(net, np.array([0, 0, 9, 0]))
        assert list(out) == [3, 2, 2, 2]

    def test_totals_preserved_through_network(self, rng):
        net = k_network([2, 3, 2])
        x = rng.integers(0, 30, size=(20, net.width))
        y = propagate_counts(net, x)
        assert np.array_equal(x.sum(axis=1), y.sum(axis=1))

    def test_matches_reference(self, rng):
        for factors in ([2, 2, 2], [3, 2, 2], [2, 3]):
            net = k_network(factors)
            for _ in range(10):
                x = rng.integers(0, 25, size=net.width)
                fast = propagate_counts(net, x)
                slow = propagate_counts_reference(net, x)
                assert list(fast) == list(slow)

    def test_reference_matches_on_l_network(self, rng):
        net = l_network([2, 3])
        for _ in range(10):
            x = rng.integers(0, 20, size=net.width)
            assert list(propagate_counts(net, x)) == list(propagate_counts_reference(net, x))

    def test_batch_shape_round_trip(self, rng):
        net = k_network([2, 2])
        x = rng.integers(0, 9, size=(7, 4))
        y = propagate_counts(net, x)
        assert y.shape == (7, 4)
        single = propagate_counts(net, x[0])
        assert single.shape == (4,)
        assert list(single) == list(y[0])

    def test_batch_rows_independent(self, rng):
        net = k_network([2, 2, 2])
        x = rng.integers(0, 12, size=(5, 8))
        y = propagate_counts(net, x)
        for i in range(5):
            assert list(propagate_counts(net, x[i])) == list(y[i])

    def test_wrong_width_rejected(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError):
            propagate_counts(net, np.zeros(5, dtype=np.int64))

    def test_negative_counts_rejected(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError):
            propagate_counts(net, np.array([1, -1, 0, 0]))

    def test_reference_requires_1d(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError):
            propagate_counts_reference(net, np.zeros((2, 4), dtype=np.int64))


class TestOutputCounts:
    def test_balanced_feed_gives_step(self):
        net = k_network([2, 2, 2])
        for total in (0, 1, 7, 8, 100):
            out = output_counts(net, total)
            assert is_step(out)
            assert int(out.sum()) == total
