"""Unit tests for schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.schedulers import (
    SCHEDULERS,
    fifo,
    get_scheduler,
    lifo,
    random_scheduler,
    round_robin,
    straggler,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBasicSchedulers:
    def test_fifo_picks_first(self, rng):
        assert fifo([5, 2, 9], rng) == 5

    def test_lifo_picks_last(self, rng):
        assert lifo([5, 2, 9], rng) == 9

    def test_round_robin_picks_min(self, rng):
        assert round_robin([5, 2, 9], rng) == 2

    def test_random_picks_member(self, rng):
        pending = [4, 7, 1]
        for _ in range(20):
            assert random_scheduler(pending, rng) in pending


class TestStraggler:
    def test_freezes_fraction(self, rng):
        s = straggler(0.5)
        pending = list(range(10))
        picks = {s(pending, rng) for _ in range(200)}
        # The frozen half should never be picked while others are pending.
        assert len(picks) <= 5

    def test_releases_when_only_stragglers_remain(self, rng):
        s = straggler(0.5)
        pending = list(range(4))
        s(pending, rng)  # initialize frozen set
        frozen = sorted(s._frozen)
        assert s(frozen, rng) in frozen

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            straggler(1.0)
        with pytest.raises(ValueError):
            straggler(-0.1)


class TestRegistry:
    def test_all_registered_names_instantiate(self):
        for name in SCHEDULERS:
            sched = get_scheduler(name)
            assert callable(sched)

    def test_stateful_schedulers_are_fresh(self):
        a = get_scheduler("straggler")
        b = get_scheduler("straggler")
        assert a is not b

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_scheduler("nope")
