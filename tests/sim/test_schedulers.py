"""Unit tests for schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.schedulers import (
    SCHEDULERS,
    fifo,
    get_scheduler,
    lifo,
    random_scheduler,
    round_robin,
    straggler,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBasicSchedulers:
    def test_fifo_picks_first(self, rng):
        assert fifo([5, 2, 9], rng) == 5

    def test_lifo_picks_last(self, rng):
        assert lifo([5, 2, 9], rng) == 9

    def test_round_robin_picks_min(self, rng):
        assert round_robin([5, 2, 9], rng) == 2

    def test_random_picks_member(self, rng):
        pending = [4, 7, 1]
        for _ in range(20):
            assert random_scheduler(pending, rng) in pending


class TestStraggler:
    def test_deterministic_under_fixed_seed(self):
        """Identical seeds must reproduce both the frozen set and every
        subsequent pick — profiling/regression runs rely on replayability."""

        def picks(seed: int) -> list[int]:
            s = straggler(0.4)
            rng = np.random.default_rng(seed)
            pending = list(range(20))
            out = []
            for _ in range(50):
                choice = s(pending, rng)
                out.append(choice)
            return out

        a, b = picks(1234), picks(1234)
        assert a == b
        assert sorted({*a}) != list(range(20))  # some tokens really frozen

    def test_distinct_seeds_can_differ(self):
        s1, s2 = straggler(0.4), straggler(0.4)
        r1, r2 = np.random.default_rng(0), np.random.default_rng(99)
        pending = list(range(20))
        seq1 = [s1(pending, r1) for _ in range(30)]
        seq2 = [s2(pending, r2) for _ in range(30)]
        assert seq1 != seq2

    def test_run_tokens_deterministic_with_straggler(self):
        """End-to-end: the token simulator under a seeded straggler schedule
        reproduces the exact same exit order."""
        from repro.networks import k_network
        from repro.sim import run_tokens

        net = k_network([2, 3])

        def run():
            return run_tokens(net, [3] * net.width, straggler(0.25), seed=7)

        r1, r2 = run(), run()
        assert r1.exit_order == r2.exit_order
        assert r1.steps == r2.steps

    def test_freezes_fraction(self, rng):
        s = straggler(0.5)
        pending = list(range(10))
        picks = {s(pending, rng) for _ in range(200)}
        # The frozen half should never be picked while others are pending.
        assert len(picks) <= 5

    def test_releases_when_only_stragglers_remain(self, rng):
        s = straggler(0.5)
        pending = list(range(4))
        s(pending, rng)  # initialize frozen set
        frozen = sorted(s._frozen)
        assert s(frozen, rng) in frozen

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            straggler(1.0)
        with pytest.raises(ValueError):
            straggler(-0.1)


class TestRegistry:
    def test_all_registered_names_instantiate(self):
        for name in SCHEDULERS:
            sched = get_scheduler(name)
            assert callable(sched)

    def test_stateful_schedulers_are_fresh(self):
        a = get_scheduler("straggler")
        b = get_scheduler("straggler")
        assert a is not b

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_scheduler("nope")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="straggler"):
            get_scheduler("definitely-not-a-scheduler")
