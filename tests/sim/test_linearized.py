"""Tests for the linearizable (waiting) counter — the §6 fix."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import Operation, check_history, find_nonlinearizable_execution
from repro.networks import k_network, l_network
from repro.sim import LinearizedThreadedCounter, linearize_history


class TestLinearizeHistory:
    def test_fixes_the_violating_execution(self):
        """Take an actual non-linearizable execution and apply the waiting
        discipline: the adjusted history is linearizable."""
        for factors in ([2, 2], [2, 2, 2]):
            found = find_nonlinearizable_execution(k_network(factors))
            assert found is not None
            _, ops = found
            assert check_history(ops) is not None or True  # original may violate
            fixed = linearize_history(ops)
            assert check_history(fixed) is None

    def test_preserves_values_and_starts(self):
        ops = [Operation(0, 0, 10, 1), Operation(1, 2, 3, 0)]
        fixed = linearize_history(ops)
        assert sorted(o.value for o in fixed) == [0, 1]
        assert {o.token_id: o.start for o in fixed} == {0: 0, 1: 2}

    def test_ends_ordered_by_value(self):
        ops = [Operation(0, 0, 9, 2), Operation(1, 0, 1, 0), Operation(2, 0, 5, 1)]
        fixed = sorted(linearize_history(ops), key=lambda o: o.value)
        ends = [o.end for o in fixed]
        assert ends == sorted(ends)
        assert len(set(ends)) == len(ends)  # strictly increasing releases

    def test_never_ends_before_original(self):
        ops = [Operation(0, 0, 4, 1), Operation(1, 0, 8, 0)]
        fixed = {o.token_id: o for o in linearize_history(ops)}
        assert fixed[0].end >= 4
        assert fixed[1].end >= 8


class TestLinearizedThreadedCounter:
    def test_exact_range(self):
        counter = LinearizedThreadedCounter(k_network([2, 2]))
        stats = counter.run_threads(n_threads=4, ops_per_thread=25)
        assert sorted(stats.all_values()) == list(range(100))

    def test_real_time_history_is_linearizable(self):
        """The defining property: timestamp every operation with real
        clocks and run the linearizability checker on the history."""
        counter = LinearizedThreadedCounter(k_network([2, 2, 2]))
        ops: list[Operation] = []
        lock = threading.Lock()
        op_id = [0]

        def worker():
            for _ in range(20):
                start = time.perf_counter_ns()
                v = counter.fetch_and_increment()
                end = time.perf_counter_ns()
                with lock:
                    ops.append(Operation(op_id[0], start, end, v))
                    op_id[0] += 1

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert check_history(ops) is None

    def test_on_l_network(self):
        counter = LinearizedThreadedCounter(l_network([3, 2]))
        stats = counter.run_threads(n_threads=3, ops_per_thread=20)
        assert sorted(stats.all_values()) == list(range(60))

    def test_single_thread_sequential(self):
        counter = LinearizedThreadedCounter(k_network([2, 2]))
        assert [counter.fetch_and_increment() for _ in range(10)] == list(range(10))
