"""Unit tests for the threaded counter and the contention simulator."""

from __future__ import annotations

import pytest

from repro.networks import k_network
from repro.sim import ContentionSimulator, ThreadedCounter


class TestThreadedCounter:
    def test_sequential_values_are_exact_range(self):
        counter = ThreadedCounter(k_network([2, 2]))
        values = [counter.fetch_and_increment() for _ in range(20)]
        assert sorted(values) == list(range(20))

    def test_concurrent_values_are_exact_range(self):
        counter = ThreadedCounter(k_network([2, 2, 2]))
        stats = counter.run_threads(n_threads=4, ops_per_thread=25)
        assert stats.total_ops == 100
        assert sorted(stats.all_values()) == list(range(100))

    def test_concurrent_values_on_l_network(self):
        from repro.networks import l_network

        counter = ThreadedCounter(l_network([2, 3]))
        stats = counter.run_threads(n_threads=3, ops_per_thread=30)
        assert sorted(stats.all_values()) == list(range(90))

    def test_per_thread_values_strictly_increasing(self):
        """Each thread's own values arrive in increasing order: operations
        of one thread are sequential, so a later op sees a later count."""
        counter = ThreadedCounter(k_network([2, 2]))
        stats = counter.run_threads(n_threads=2, ops_per_thread=20)
        for per_thread in stats.values:
            assert per_thread == sorted(per_thread)


class TestContentionSimulator:
    def test_single_proc_latency_tracks_depth(self):
        net = k_network([2, 2, 2])
        sim = ContentionSimulator(net, access_cost=1.0, hop_cost=0.0)
        stats = sim.run(n_procs=1, ops_per_proc=1)
        assert stats.ops == 1
        # Alone in the network: latency = depth * access_cost, no waiting.
        assert stats.mean_latency == pytest.approx(net.depth)
        assert stats.mean_wait == 0.0

    def test_ops_counted(self):
        net = k_network([2, 2])
        stats = ContentionSimulator(net).run(n_procs=4, ops_per_proc=5)
        assert stats.ops == 20

    def test_contention_grows_with_procs(self):
        net = k_network([4, 4])  # single wide balancer: a contention hotspot
        sim = ContentionSimulator(net)
        lone = sim.run(n_procs=1, ops_per_proc=4).mean_latency
        crowded = sim.run(n_procs=16, ops_per_proc=4).mean_latency
        assert crowded > lone

    def test_narrow_balancers_less_contended_per_op(self):
        """At the same width and concurrency, one wide balancer serializes
        everything; a 2-balancer network spreads the load."""
        wide = k_network([8, 8])  # depth 1, single 64-balancer
        narrow = k_network([2] * 6)  # depth 35, 2-balancers
        procs = 32
        wide_wait = ContentionSimulator(wide).run(procs, 4).mean_wait
        narrow_wait = ContentionSimulator(narrow).run(procs, 4).mean_wait
        assert wide_wait > narrow_wait

    def test_throughput_positive(self):
        net = k_network([2, 2])
        stats = ContentionSimulator(net).run(n_procs=2, ops_per_proc=3)
        assert stats.throughput > 0
        assert stats.makespan > 0

    def test_validation(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError):
            ContentionSimulator(net, access_cost=0)
        with pytest.raises(ValueError):
            ContentionSimulator(net).run(0, 1)
        with pytest.raises(ValueError):
            ContentionSimulator(net).run(1, 0)

    def test_deterministic(self):
        net = k_network([2, 2, 2])
        a = ContentionSimulator(net).run(8, 3)
        b = ContentionSimulator(net).run(8, 3)
        assert a.makespan == b.makespan
        assert a.total_latency == b.total_latency


class TestLatencyPercentiles:
    def test_collection_and_percentiles(self):
        from repro.networks import k_network

        net = k_network([2, 2, 2])
        stats = ContentionSimulator(net).run(8, 4, collect_latencies=True)
        assert stats.latencies is not None
        assert len(stats.latencies) == stats.ops
        assert stats.latency_percentile(50) <= stats.latency_percentile(99)
        assert abs(float(stats.latencies.mean()) - stats.mean_latency) < 1e-9

    def test_percentile_requires_collection(self):
        from repro.networks import k_network

        stats = ContentionSimulator(k_network([2, 2])).run(2, 2)
        with pytest.raises(ValueError):
            stats.latency_percentile(95)

    def test_empty_run_returns_nan_not_raise(self):
        """Regression: zero completed ops must yield nan, not IndexError
        from np.percentile / ZeroDivisionError from the means."""
        import math

        import numpy as np

        from repro.sim import ContentionStats

        empty = ContentionStats(0, 0.0, 0.0, 0.0, np.array([], dtype=np.float64))
        assert math.isnan(empty.latency_percentile(50))
        assert math.isnan(empty.latency_percentile(95))
        assert math.isnan(empty.mean_latency)
        assert math.isnan(empty.mean_wait)
        assert math.isnan(empty.throughput)

    def test_empty_run_without_latencies_still_raises_for_percentile(self):
        from repro.sim import ContentionStats

        empty = ContentionStats(0, 0.0, 0.0, 0.0, None)
        with pytest.raises(ValueError):
            empty.latency_percentile(95)


class TestSingleLockBaseline:
    def test_exact_range(self):
        from repro.sim import SingleLockCounter

        counter = SingleLockCounter()
        stats = counter.run_threads(n_threads=6, ops_per_thread=50)
        assert sorted(stats.all_values()) == list(range(300))

    def test_per_thread_monotone(self):
        from repro.sim import SingleLockCounter

        stats = SingleLockCounter().run_threads(n_threads=3, ops_per_thread=40)
        for vals in stats.values:
            assert vals == sorted(vals)
