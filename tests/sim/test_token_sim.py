"""Unit tests for the asynchronous token simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sequences import is_step
from repro.networks import k_network, l_network
from repro.sim import (
    TokenSimulator,
    fetch_and_increment_values,
    propagate_counts,
    run_tokens,
)


class TestBasics:
    def test_no_tokens_is_quiescent(self):
        sim = TokenSimulator(k_network([2, 2]))
        result = sim.run()
        assert list(result.output_counts) == [0, 0, 0, 0]
        assert result.steps == 0

    def test_single_token_exits_top(self):
        net = k_network([2, 2])
        result = run_tokens(net, [1, 0, 0, 0])
        assert list(result.output_counts) == [1, 0, 0, 0]

    def test_counts_match_arithmetic_model(self, rng):
        """Quiescent token counts equal the deterministic count propagation,
        under every scheduler."""
        net = k_network([2, 3])
        for sched in ("fifo", "lifo", "random", "round_robin", "straggler"):
            x = rng.integers(0, 6, size=net.width)
            result = run_tokens(net, list(x), scheduler=sched, seed=7)
            assert list(result.output_counts) == list(propagate_counts(net, x)), sched

    def test_schedule_independence(self, rng):
        net = l_network([2, 2])
        x = list(rng.integers(0, 8, size=4))
        outs = {
            tuple(run_tokens(net, x, scheduler=s, seed=3).output_counts)
            for s in ("fifo", "lifo", "random", "straggler")
        }
        assert len(outs) == 1

    def test_step_output_for_counting_network(self, rng):
        net = k_network([2, 2, 2])
        x = list(rng.integers(0, 5, size=8))
        result = run_tokens(net, x, scheduler="random")
        assert is_step(result.output_counts)

    def test_injection_validation(self):
        sim = TokenSimulator(k_network([2, 2]))
        with pytest.raises(ValueError):
            sim.inject([1, 2, 3])
        with pytest.raises(ValueError):
            sim.inject([1, -1, 0, 0])

    def test_steps_bounded_by_tokens_times_depth(self):
        net = k_network([2, 2, 2])
        total = 10
        result = run_tokens(net, [total] + [0] * 7)
        assert result.steps <= total * (net.depth + 1)

    def test_traces_record_balancers(self):
        net = k_network([2, 2])
        result = run_tokens(net, [1, 0, 0, 0])
        tok = result.tokens[0]
        assert tok.done
        assert len(tok.trace) <= net.depth
        assert all(0 <= b < net.size for b in tok.trace)


class TestFetchAndIncrement:
    def test_values_are_exact_range(self, rng):
        """A counting network hands out exactly 0..T-1 (the Fetch&Increment
        guarantee)."""
        net = k_network([2, 2, 2])
        x = list(rng.integers(0, 6, size=8))
        total = sum(x)
        result = run_tokens(net, x, scheduler="random", seed=1)
        values = fetch_and_increment_values(result)
        assert sorted(values.values()) == list(range(total))

    def test_values_under_adversarial_schedule(self, rng):
        net = l_network([3, 2])
        x = list(rng.integers(0, 5, size=6))
        result = run_tokens(net, x, scheduler="straggler", seed=5)
        values = fetch_and_increment_values(result)
        assert sorted(values.values()) == list(range(sum(x)))

    def test_non_counting_network_can_skip_values(self):
        """The bubble-sort network (Figure 3) used as a counter misses or
        duplicates values for some input distribution."""
        from repro.baselines import bubble_network
        from repro.verify import find_counting_violation

        net = bubble_network(4)
        v = find_counting_violation(net)
        assert v is not None
        result = run_tokens(net, list(v.input_counts), scheduler="fifo")
        values = fetch_and_increment_values(result)
        assert sorted(values.values()) != list(range(int(v.input_counts.sum())))


class TestSchedulerEdgeCases:
    def test_bad_scheduler_return_detected(self):
        net = k_network([2, 2])
        sim = TokenSimulator(net)
        sim.inject([2, 0, 0, 0])

        def bad(pending, rng):
            return -42

        with pytest.raises(ValueError):
            sim.run(bad)

    def test_unknown_scheduler_name(self):
        net = k_network([2, 2])
        sim = TokenSimulator(net)
        sim.inject([1, 0, 0, 0])
        with pytest.raises(ValueError):
            sim.run("warp-speed")

    def test_fifo_wire_order_respected(self):
        """Tokens on the same input wire cannot overtake before their first
        balancer: exit order on a single-balancer network follows arrivals."""
        from repro.core import single_balancer_network

        net = single_balancer_network(2)
        result = run_tokens(net, [3, 0], scheduler="fifo")
        # Tokens 0,1,2 entered on wire 0 in order; balancer alternates wires.
        assert result.exit_order[0] == [0, 2]
        assert result.exit_order[1] == [1]


class TestNonFifoWireModel:
    def test_quiescent_counts_identical(self, rng):
        """fifo_wires only changes token orderings, never the quiescent
        counts."""
        net = k_network([2, 3])
        x = list(rng.integers(0, 6, size=6))
        fifo_sim = TokenSimulator(net, seed=4, fifo_wires=True)
        fifo_sim.inject(x)
        free_sim = TokenSimulator(net, seed=4, fifo_wires=False)
        free_sim.inject(x)
        a = fifo_sim.run("random")
        b = free_sim.run("random")
        assert list(a.output_counts) == list(b.output_counts)

    def test_all_pending_movable(self):
        net = k_network([2, 2])
        sim = TokenSimulator(net, seed=0, fifo_wires=False)
        sim.inject([3, 0, 0, 0])
        assert len(sim._movable()) == 3  # all three can move despite one wire

    def test_fifo_restricts_to_wire_heads(self):
        net = k_network([2, 2])
        sim = TokenSimulator(net, seed=0, fifo_wires=True)
        sim.inject([3, 0, 0, 0])
        assert len(sim._movable()) == 1

    def test_overtaking_possible_without_fifo(self):
        """With free wires a later token can exit before an earlier one
        that is parked on the same output wire."""
        from repro.core import single_balancer_network

        net = single_balancer_network(2)
        sim = TokenSimulator(net, seed=0, fifo_wires=False)
        a = sim.inject_one(0)
        sim.advance(a)  # a passes the balancer, parks on output wire 0
        b = sim.inject_one(0)
        sim.advance(b)  # b -> output wire 1
        sim.advance(b)  # b exits first
        c = sim.inject_one(0)
        sim.advance(c)  # c -> output wire 0, behind parked a
        assert sim.advance(c)  # c EXITS past the parked a
        values = sim.values_so_far()
        assert values[c] == 0  # c took the slot a was parked on
        sim.drain_token(a)
        assert sim.values_so_far()[a] == 2
