"""Smoke tests for the repository tooling scripts."""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestGenApiDocs:
    def test_generates_reference(self):
        result = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        api = (ROOT / "docs" / "api.md").read_text()
        assert "# API reference" in api
        # Spot-check key public entries made it in.
        for needle in ("k_network", "l_network", "propagate_counts", "oblivious_sort"):
            assert needle in api, needle
