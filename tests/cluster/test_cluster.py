"""Full-cluster tests: real shard processes, supervision, kill → replay."""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.serve import TCPCounterClient, audit_values


def run(coro):
    return asyncio.run(coro)


def config_for(tmp_path, **kw):
    defaults = dict(
        shards=2,
        wal_dir=str(tmp_path / "wal"),
        factors=(2, 2),
        fsync=False,
        max_delay=0.0005,
        supervise=False,
        poll_interval=0.1,
    )
    defaults.update(kw)
    return ClusterConfig(**defaults)


async def wait_settled(cluster, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not cluster.settled:
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("cluster did not settle after the kill")
        await asyncio.sleep(0.05)


class TestClusterConfig:
    def test_requires_wal_dir(self):
        with pytest.raises(ValueError, match="wal_dir"):
            ClusterConfig(shards=2)

    def test_requires_positive_shards(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ClusterConfig(shards=0, wal_dir=str(tmp_path))

    def test_shard_specs_partition_the_value_space(self, tmp_path):
        cfg = config_for(tmp_path, shards=3)
        specs = [cfg.shard_spec(i) for i in range(3)]
        assert [s.shard_id for s in specs] == [0, 1, 2]
        assert all(s.num_shards == 3 for s in specs)
        assert len({s.wal_path for s in specs}) == 3


class TestClusterLifecycle:
    def test_start_serve_state_file_stop(self, tmp_path):
        cfg = config_for(tmp_path)

        async def main():
            async with Cluster(cfg) as cluster:
                host, port = cluster.address
                clients = [await TCPCounterClient.connect(host, port) for _ in range(4)]
                values = []
                for _ in range(10):
                    for c in clients:
                        values.extend(await c.inc())
                for c in clients:
                    await c.close()

                state = Cluster.read_state(cfg.wal_dir)
                status = cluster.status()

                with pytest.raises(RuntimeError, match="alive"):
                    await cluster.restart_shard(0)
                return values, state, status

        values, state, status = run(main())
        audit = audit_values(values, stride=2)
        assert audit["exactly_once"]
        assert len(values) == 40

        assert state["num_shards"] == 2
        assert state["pid"] == os.getpid()
        assert len(state["shards"]) == 2
        assert all(s["up"] for s in state["shards"])
        assert status["started"]
        assert status["restarts"] == 0
        # stop() removed the published state file.
        assert not os.path.exists(cfg.state_path)

    def test_kill_restart_replays_to_exactly_once(self, tmp_path):
        cfg = config_for(tmp_path, supervise=True)

        async def main():
            async with Cluster(cfg) as cluster:
                host, port = cluster.address
                client = await TCPCounterClient.connect(
                    host, port, reconnect=True, backoff_base=0.02, backoff_seed=7
                )
                first = []
                for _ in range(30):
                    first.extend(await client.inc())
                victim = first[0] % 2  # the shard this connection is pinned to

                cluster.kill_shard(victim)
                await wait_settled(cluster)
                assert cluster.restarts == 1
                assert cluster.workers[victim].restarts == 1

                second = []
                for _ in range(20):
                    second.extend(await client.inc())
                risked = client.risked
                await client.close()

                info = cluster.workers[victim].last_ready
                return first, second, risked, info

        first, second, risked, info = run(main())
        audit = audit_values(first + second, stride=2)
        assert audit["duplicates"] == 0, "WAL replay under-counted: duplicate values"
        # Every value acked before the kill was WAL-durable, so replay resumed
        # past all of them.
        assert info["recovered_total"] >= sum(1 for v in first if v % 2 == first[0] % 2)
        # Gaps only from requests the client itself risked across the drop.
        assert audit["gap_total"] <= risked
        assert len(first) + len(second) == 50
