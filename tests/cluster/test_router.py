"""Router tests against in-process shard servers (no child processes).

Two :class:`CountingService`\\ s configured with the cluster's residue
parameters (``value_base=i``, ``value_stride=2``) behind real
:class:`CountingServer` sockets stand in for shard processes — the router
cannot tell the difference, and the tests stay fast and loop-local.
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro.cluster import ClientRateLimiter, ClusterRouter
from repro.networks import k_network
from repro.obs.exposition import parse_prometheus
from repro.serve import (
    CountingServer,
    CountingService,
    OverloadedError,
    TCPCounterClient,
    ThrottledError,
    audit_values,
)


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def mini_cluster(num_shards=2, *, mode="line", rate_limiter=None):
    """``num_shards`` in-process shard servers behind one router."""
    services = [
        CountingService(
            k_network([2, 2]),
            value_base=i,
            value_stride=num_shards,
            max_delay=0.0005,
        )
        for i in range(num_shards)
    ]
    servers = []
    addresses = {}
    async with contextlib.AsyncExitStack() as stack:
        for i, svc in enumerate(services):
            server = await stack.enter_async_context(CountingServer(svc, port=0))
            servers.append(server)
            addresses[i] = server.address
        router = await stack.enter_async_context(
            ClusterRouter(addresses, port=0, mode=mode, rate_limiter=rate_limiter)
        )
        yield router


class TestLineMode:
    def test_values_partition_across_clients(self):
        async def main():
            async with mini_cluster(2) as router:
                host, port = router.address
                clients = [await TCPCounterClient.connect(host, port) for _ in range(6)]
                values = []
                for _ in range(10):
                    for c in clients:
                        values.extend(await c.inc())
                for c in clients:
                    await c.close()
                return values, router.forwarded

        values, forwarded = run(main())
        audit = audit_values(values, stride=2)
        assert audit["exactly_once"]
        assert forwarded == 60

    def test_one_connection_sticks_to_one_shard(self):
        async def main():
            async with mini_cluster(2) as router:
                client = await TCPCounterClient.connect(*router.address)
                values = []
                for _ in range(8):
                    values.extend(await client.inc())
                await client.close()
                return values

        values = run(main())
        residues = {v % 2 for v in values}
        assert len(residues) == 1  # pinned: one residue class end to end

    def test_stats_aggregates_the_cluster(self):
        async def main():
            async with mini_cluster(2) as router:
                client = await TCPCounterClient.connect(*router.address)
                for _ in range(5):
                    await client.inc(2)
                stats = await client.stats()
                await client.close()
                return stats

        stats = run(main())
        cluster = stats["cluster"]
        assert cluster["num_shards"] == 2
        assert cluster["value_stride"] == 2
        assert len(cluster["shards"]) == 2
        assert all(s["reachable"] for s in cluster["shards"])
        assert stats["issued"] == 10  # summed over shards
        assert cluster["router"]["mode"] == "line"
        assert cluster["router"]["forwarded"] == 5

    def test_metrics_are_relabelled_and_parse(self):
        async def main():
            async with mini_cluster(2) as router:
                client = await TCPCounterClient.connect(*router.address)
                await client.inc()
                text = await client.metrics()
                await client.close()
                return text

        text = run(main())
        series = parse_prometheus(text)  # validates merged histograms too
        assert series["repro_cluster_num_shards"]["samples"][0][1] == 2
        assert series["repro_cluster_shards_up"]["samples"][0][1] == 2
        assert 'shard="0"' in text and 'shard="1"' in text

    def test_ping_and_flight_are_answered_locally(self):
        async def main():
            async with mini_cluster(1) as router:
                client = await TCPCounterClient.connect(*router.address)
                reader, writer = client._reader, client._writer
                writer.write(b"PING\n")
                await writer.drain()
                pong = await reader.readline()
                flight = await client.flight()
                await client.close()
                return pong, flight

        pong, flight = run(main())
        assert pong == b"OK pong\n"
        assert "router" in flight

    def test_bad_request_line(self):
        async def main():
            async with mini_cluster(1) as router:
                reader, writer = await asyncio.open_connection(*router.address)
                writer.write(b"BOGUS nonsense\n")
                await writer.drain()
                line = await reader.readline()
                writer.close()
                return line

        line = run(main())
        assert line.startswith(b"ERR bad-request")

    def test_rate_limit_rejects_with_throttled(self):
        async def main():
            limiter = ClientRateLimiter(rate=0.001, burst=2.0)
            async with mini_cluster(1, rate_limiter=limiter) as router:
                client = await TCPCounterClient.connect(*router.address)
                await client.inc()
                await client.inc()  # burst spent
                with pytest.raises(ThrottledError):
                    await client.inc()
                await client.close()
                return router.throttled, limiter.rejected

        throttled, rejected = run(main())
        assert throttled == 1
        assert rejected == 1

    def test_dead_shard_yields_overloaded(self):
        async def main():
            # Reserve a port nothing listens on.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            addr = probe.sockets[0].getsockname()[:2]
            probe.close()
            await probe.wait_closed()
            async with ClusterRouter({0: addr}, port=0) as router:
                client = await TCPCounterClient.connect(*router.address)
                with pytest.raises(OverloadedError, match="unavailable"):
                    await client.inc()
                await client.close()
                return router.shard_errors

        assert run(main()) >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="mode"):
            ClusterRouter({0: ("h", 1)}, mode="mystery")
        with pytest.raises(ValueError, match="non-empty"):
            ClusterRouter({})
        with pytest.raises(TypeError, match="mapping"):
            ClusterRouter(lambda sid: ("h", 1))


class TestSpliceMode:
    def test_raw_passthrough_preserves_protocol(self):
        async def main():
            async with mini_cluster(2, mode="splice") as router:
                clients = [
                    await TCPCounterClient.connect(*router.address) for _ in range(4)
                ]
                values = []
                for _ in range(10):
                    for c in clients:
                        values.extend(await c.inc())
                stats = await clients[0].stats()  # splice: the shard's own stats
                for c in clients:
                    await c.close()
                return values, stats, router.forwarded

        values, stats, forwarded = run(main())
        audit = audit_values(values, stride=2)
        assert audit["exactly_once"]
        assert forwarded >= 40
        assert "cluster" not in stats  # unparsed passthrough, no aggregation
        assert stats["value_stride"] == 2
