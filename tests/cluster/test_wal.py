"""Write-ahead token log: round trips, torn tails, corruption detection."""

from __future__ import annotations

import os

import pytest

from repro.cluster.wal import (
    RECORD_BYTES,
    TokenWAL,
    WALCorruptionError,
    WALError,
    WALRecord,
    replay,
)


def write_records(path, pairs):
    with TokenWAL.open(path, fsync=False) as wal:
        for seq, total in pairs:
            wal.append(seq, total)
    return path


class TestReplay:
    def test_missing_file_replays_to_zero(self, tmp_path):
        rep = replay(tmp_path / "nope.wal")
        assert rep.records == 0
        assert rep.seq == 0
        assert rep.total == 0
        assert rep.clean

    def test_round_trip(self, tmp_path):
        path = write_records(tmp_path / "s.wal", [(1, 10), (2, 25), (5, 25), (6, 40)])
        rep = replay(path)
        assert rep.records == 4
        assert rep.seq == 6
        assert rep.total == 40
        assert rep.clean
        assert rep.valid_bytes == 4 * RECORD_BYTES

    def test_record_encoding_is_fixed_size(self):
        assert len(WALRecord(1, 2, 3.0).encode()) == RECORD_BYTES == 32

    def test_torn_tail_is_tolerated_and_reported(self, tmp_path):
        path = write_records(tmp_path / "s.wal", [(1, 7), (2, 14)])
        with open(path, "ab") as fh:
            fh.write(WALRecord(3, 21, 0.0).encode()[: RECORD_BYTES - 5])
        rep = replay(path)
        assert rep.records == 2
        assert rep.total == 14
        assert rep.torn_bytes == RECORD_BYTES - 5
        assert not rep.clean

    def test_checksum_corruption_raises(self, tmp_path):
        path = write_records(tmp_path / "s.wal", [(1, 7), (2, 14)])
        buf = bytearray(path.read_bytes())
        buf[RECORD_BYTES + 12] ^= 0xFF  # a payload byte of record 2
        path.write_bytes(bytes(buf))
        with pytest.raises(WALCorruptionError, match="checksum"):
            replay(path)

    def test_bad_magic_raises(self, tmp_path):
        path = write_records(tmp_path / "s.wal", [(1, 7)])
        buf = bytearray(path.read_bytes())
        buf[0:2] = b"XX"
        path.write_bytes(bytes(buf))
        with pytest.raises(WALCorruptionError, match="magic"):
            replay(path)

    def test_non_monotonic_seq_raises(self, tmp_path):
        path = tmp_path / "s.wal"
        with open(path, "wb") as fh:
            fh.write(WALRecord(5, 10, 0.0).encode())
            fh.write(WALRecord(5, 20, 0.0).encode())
        with pytest.raises(WALCorruptionError, match="non-monotonic"):
            replay(path)

    def test_backwards_total_raises(self, tmp_path):
        path = tmp_path / "s.wal"
        with open(path, "wb") as fh:
            fh.write(WALRecord(1, 10, 0.0).encode())
            fh.write(WALRecord(2, 5, 0.0).encode())
        with pytest.raises(WALCorruptionError, match="backwards"):
            replay(path)


class TestTokenWAL:
    def test_open_truncates_torn_tail_and_resumes(self, tmp_path):
        path = write_records(tmp_path / "s.wal", [(1, 7), (2, 14)])
        with open(path, "ab") as fh:
            fh.write(WALRecord(3, 21, 0.0).encode()[:11])
        with TokenWAL.open(path, fsync=False) as wal:
            assert wal.last_replay.torn_bytes == 11
            assert wal.total == 14
            wal.append(3, 21)
        rep = replay(path)
        assert rep.clean
        assert rep.records == 3
        assert rep.total == 21
        assert os.path.getsize(path) == 3 * RECORD_BYTES

    def test_append_guards(self, tmp_path):
        with TokenWAL.open(tmp_path / "s.wal", fsync=False) as wal:
            wal.append(3, 10)
            with pytest.raises(WALError, match="seq must increase"):
                wal.append(3, 11)
            with pytest.raises(WALError, match="must not decrease"):
                wal.append(4, 9)
            assert wal.seq == 3
            assert wal.total == 10

    def test_append_without_open_raises(self, tmp_path):
        wal = TokenWAL(tmp_path / "s.wal")
        with pytest.raises(WALError, match="not open"):
            wal.append(1, 1)

    def test_fsync_toggle_counts_syncs(self, tmp_path):
        with TokenWAL.open(tmp_path / "a.wal", fsync=True) as wal:
            wal.append(1, 1)
            assert wal.synced == 1
        with TokenWAL.open(tmp_path / "b.wal", fsync=False) as wal:
            wal.append(1, 1)
            assert wal.synced == 0
            assert wal.appended == 1

    def test_stats_payload(self, tmp_path):
        with TokenWAL.open(tmp_path / "s.wal", fsync=False) as wal:
            wal.append(1, 4)
            st = wal.stats()
        assert st["seq"] == 1
        assert st["total"] == 4
        assert st["appended"] == 1
        assert st["fsync"] is False

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "s.wal"
        write_records(path, [(1, 3), (2, 9)])
        with TokenWAL.open(path, fsync=False) as wal:
            assert (wal.seq, wal.total) == (2, 9)
            with pytest.raises(WALError):
                wal.append(2, 9)  # replayed seq still guards
            wal.append(3, 12)
        assert replay(path).total == 12
