"""Consistent-hash ring properties: balance and stability (ISSUE satellite).

The two hypothesis properties pin the guarantees the router relies on:
with 64 virtual nodes per shard the load spread over many clients stays
bounded, and growing the ring by one shard remaps only a small fraction
of keys (removing it restores the previous assignment exactly).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashing import HashRing, stable_hash


def make_keys(n, prefix=""):
    return [f"{prefix}10.0.{i >> 8}.{i & 255}:{40000 + i}" for i in range(n)]


class TestStableHash:
    def test_deterministic_and_64_bit(self):
        h = stable_hash("10.0.0.1:40001")
        assert h == stable_hash("10.0.0.1:40001")
        assert 0 <= h < 2**64

    def test_distinct_keys_distinct_hashes(self):
        keys = make_keys(500)
        assert len({stable_hash(k) for k in keys}) == len(keys)


class TestRingBasics:
    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(KeyError):
            HashRing().node_for("x")

    def test_add_is_idempotent(self):
        ring = HashRing([0, 1])
        ring.add(1)
        assert len(ring) == 2
        assert ring.members == [0, 1]

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            HashRing([0]).remove(7)

    def test_every_key_maps_to_a_member(self):
        ring = HashRing(range(3))
        for key in make_keys(200):
            assert ring.node_for(key) in (0, 1, 2)

    def test_distribution_counts_sum_to_keys(self):
        ring = HashRing(range(4))
        keys = make_keys(400)
        dist = ring.distribution(keys)
        assert sum(dist.values()) == len(keys)
        assert set(dist) == {0, 1, 2, 3}


@settings(max_examples=25, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=8),
    salt=st.integers(min_value=0, max_value=1000),
)
def test_balance_max_min_ratio_is_bounded(shards, salt):
    """With 64 vnodes/member, no shard is starved and none is a hotspot."""
    ring = HashRing(range(shards), replicas=64)
    dist = ring.distribution(make_keys(2000, prefix=f"{salt}/"))
    lo, hi = min(dist.values()), max(dist.values())
    assert lo > 0, "a shard received no clients at all"
    assert hi / lo <= 6.0, f"load spread too wide: {dist}"


@settings(max_examples=25, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=8),
    salt=st.integers(min_value=0, max_value=1000),
)
def test_stability_adding_a_shard_remaps_a_small_fraction(shards, salt):
    """Growing n → n+1 shards moves ~1/(n+1) of keys, never to/from others."""
    keys = make_keys(2000, prefix=f"{salt}/")
    ring = HashRing(range(shards), replicas=64)
    before = {k: ring.node_for(k) for k in keys}
    ring.add(shards)  # the new member
    after = {k: ring.node_for(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    # Everything that moved moved *onto* the new shard — consistent hashing
    # never reshuffles keys between surviving members.
    assert all(after[k] == shards for k in moved)
    expected = len(keys) / (shards + 1)
    assert len(moved) <= 3.0 * expected, f"remapped {len(moved)} of {len(keys)}"
    # Removing the new shard restores the original assignment exactly.
    ring.remove(shards)
    assert {k: ring.node_for(k) for k in keys} == before
