"""Shard services and workers: residue classes, WAL commits, kill/restart."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.shard import ShardSpec, ShardWorker, make_shard_service
from repro.cluster.wal import replay
from repro.serve import TCPCounterClient, audit_values


def run(coro):
    return asyncio.run(coro)


def spec_for(tmp_path, shard_id=1, num_shards=3, **kw):
    defaults = dict(
        shard_id=shard_id,
        num_shards=num_shards,
        factors=(2, 2),
        wal_path=str(tmp_path / f"shard-{shard_id}.wal"),
        fsync=False,
        max_delay=0.0005,
    )
    defaults.update(kw)
    return ShardSpec(**defaults)


class TestMakeShardService:
    def test_values_come_from_the_residue_class(self, tmp_path):
        spec = spec_for(tmp_path, shard_id=1, num_shards=3)

        async def main():
            service, wal, rep = make_shard_service(spec)
            assert rep.total == 0
            async with service:
                vals = await asyncio.gather(
                    *(service.fetch_and_increment() for _ in range(20))
                )
            wal.close()
            return vals

        vals = run(main())
        assert sorted(vals) == [1 + 3 * k for k in range(20)]

    def test_every_batch_is_committed_before_ack(self, tmp_path):
        spec = spec_for(tmp_path)

        async def main():
            service, wal, _ = make_shard_service(spec)
            async with service:
                await service.fetch_and_increment_many(5)
                # The ack has happened, so the WAL already holds the batch.
                assert wal.total == 5
                await service.fetch_and_increment_many(3)
                assert wal.total == 8
            wal.close()

        run(main())
        rep = replay(spec.wal_path)
        assert rep.total == 8
        assert rep.clean

    def test_restart_replays_and_never_reissues(self, tmp_path):
        spec = spec_for(tmp_path, shard_id=0, num_shards=2)

        async def issue(n):
            service, wal, rep = make_shard_service(spec)
            async with service:
                vals = await asyncio.gather(
                    *(service.fetch_and_increment() for _ in range(n))
                )
            wal.close()
            return rep, vals

        rep1, first = run(issue(12))
        rep2, second = run(issue(9))
        assert rep1.total == 0
        assert rep2.total == 12  # replayed state, not zero
        audit = audit_values(first + second, stride=2)
        assert audit["duplicates"] == 0
        assert audit["exactly_once"]

    def test_wal_seq_continues_after_restart(self, tmp_path):
        spec = spec_for(tmp_path)

        async def one_batch():
            service, wal, _ = make_shard_service(spec)
            async with service:
                await service.fetch_and_increment()
            seq = wal.seq
            wal.close()
            return seq

        seq1 = run(one_batch())
        seq2 = run(one_batch())
        assert seq2 > seq1  # restored _batch_seq keeps the log monotonic


class TestShardWorker:
    def test_spawn_kill_restart_round_trip(self, tmp_path):
        spec = spec_for(tmp_path, shard_id=0, num_shards=2)
        worker = ShardWorker(spec, start_timeout=60.0)
        info = worker.start()
        try:
            assert worker.alive
            assert worker.restarts == 0
            assert info["recovered_total"] == 0
            host, port = worker.address

            async def grab(n):
                client = await TCPCounterClient.connect(host, port)
                vals = []
                for _ in range(n):
                    vals.extend(await client.inc())
                await client.close()
                return vals

            first = run(grab(10))
            worker.kill()
            assert not worker.alive

            info2 = worker.start()
            assert worker.restarts == 1
            assert worker.address == (host, port)  # port pinned across restarts
            assert info2["recovered_total"] >= len(first)

            second = run(grab(6))
            audit = audit_values(first + second, stride=2)
            assert audit["duplicates"] == 0
            assert audit["exactly_once"]
            assert worker.as_dict()["recovered_total"] == info2["recovered_total"]
        finally:
            worker.terminate()

    def test_double_start_raises(self, tmp_path):
        worker = ShardWorker(spec_for(tmp_path))
        worker.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                worker.start()
        finally:
            worker.terminate()

    def test_address_before_start_raises(self, tmp_path):
        worker = ShardWorker(spec_for(tmp_path))
        with pytest.raises(RuntimeError, match="never started"):
            worker.address
