"""Adaptive batch tuning: the pure policy, and the wrapper's sampling."""

from __future__ import annotations

from repro.cluster.tuner import AdaptiveBatchTuner, TunerConfig, TunerSample, recommend

CFG = TunerConfig(base_batch=64, base_delay=0.001, max_batch_cap=4096, min_delay=0.0001)


def make_sample(**kw):
    base = dict(
        queue_depth=0,
        queue_limit=1024,
        max_batch=64,
        max_delay=0.001,
        batches=10,
        requests=100,
    )
    base.update(kw)
    return TunerSample(**base)


class TestRecommend:
    def test_queue_pressure_doubles_batch_and_halves_delay(self):
        s = make_sample(queue_depth=600)
        batch, delay = recommend(s, CFG)
        assert batch == 128
        assert delay == 0.0005

    def test_pressure_clamps_at_cap_and_floor(self):
        s = make_sample(queue_depth=1024, max_batch=4096, max_delay=0.0001)
        batch, delay = recommend(s, CFG)
        assert batch == 4096
        assert delay == 0.0001

    def test_batch_saturation_doubles_batch_only(self):
        s = make_sample(batches=10, requests=10 * 60)  # mean 60 >= 0.9*64
        batch, delay = recommend(s, CFG)
        assert batch == 128
        assert delay == 0.001

    def test_underload_decays_batch_toward_baseline(self):
        s = make_sample(max_batch=512, batches=10, requests=10 * 4, queue_depth=0)
        batch, _ = recommend(s, CFG)
        assert batch == 256  # one halving per interval, floored at base later
        s2 = make_sample(max_batch=100, batches=10, requests=10 * 4)
        batch2, _ = recommend(s2, CFG)
        assert batch2 == CFG.base_batch  # never below the configured baseline

    def test_underload_relaxes_delay_toward_baseline(self):
        s = make_sample(max_delay=0.0004, batches=10, requests=10 * 4)
        _, delay = recommend(s, CFG)
        assert delay == 0.0005  # *1.25, capped at base_delay later

    def test_underload_shrinks_linger_to_observed_wait(self):
        s = make_sample(batches=10, requests=10 * 4, queue_wait_p50=0.0001)
        _, delay = recommend(s, CFG)
        assert delay == 0.0002  # 2× the observed median wait
        # ... but never below min_delay.
        s2 = make_sample(batches=10, requests=10 * 4, queue_wait_p50=1e-6)
        _, delay2 = recommend(s2, CFG)
        assert delay2 == CFG.min_delay

    def test_quiet_interval_changes_nothing(self):
        s = make_sample(batches=0, requests=0)
        assert recommend(s, CFG) == (64, 0.001)

    def test_moderate_load_changes_nothing(self):
        s = make_sample(batches=10, requests=10 * 32)  # mean 32: neither extreme
        assert recommend(s, CFG) == (64, 0.001)


class FakeStats:
    def __init__(self, batches=0, completed=0):
        self.batches = batches
        self.completed = completed


class FakeBatcher:
    """Just the surface AdaptiveBatchTuner touches."""

    def __init__(self):
        self.max_batch = 64
        self.max_delay = 0.001
        self.queue_depth = 0
        self.queue_limit = 1024
        self.stats = FakeStats()


class TestAdaptiveBatchTuner:
    def test_sample_uses_interval_deltas(self):
        b = FakeBatcher()
        b.stats = FakeStats(batches=5, completed=50)
        tuner = AdaptiveBatchTuner(b)  # baseline captured at construction
        b.stats = FakeStats(batches=9, completed=110)
        s = tuner.sample()
        assert s.batches == 4
        assert s.requests == 60
        # The next sample starts from the new watermark.
        s2 = tuner.sample()
        assert s2.batches == 0 and s2.requests == 0

    def test_step_applies_recommendation_under_pressure(self):
        b = FakeBatcher()
        tuner = AdaptiveBatchTuner(b)
        b.queue_depth = 900
        b.stats = FakeStats(batches=10, completed=640)
        assert tuner.step() is True
        assert b.max_batch == 128
        assert b.max_delay == 0.0005
        assert tuner.adjustments == 1

    def test_step_is_noop_at_steady_state(self):
        b = FakeBatcher()
        tuner = AdaptiveBatchTuner(b)
        b.stats = FakeStats(batches=10, completed=320)
        assert tuner.step() is False
        assert tuner.adjustments == 0

    def test_config_defaults_come_from_the_batcher(self):
        b = FakeBatcher()
        b.max_batch = 32
        b.max_delay = 0.002
        tuner = AdaptiveBatchTuner(b)
        assert tuner.config.base_batch == 32
        assert tuner.config.base_delay == 0.002
