"""Token-bucket rate limiting with an injected clock (fully deterministic)."""

from __future__ import annotations

import pytest

from repro.cluster.ratelimit import ClientRateLimiter, TokenBucket


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTokenBucket:
    def test_invalid_params(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            TokenBucket(0, 10, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(10, 0, clock=clock)

    def test_burst_then_throttle(self):
        clock = FakeClock()
        b = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert b.allow(1) and b.allow(1) and b.allow(1)
        assert not b.allow(1)

    def test_refill_at_rate(self):
        clock = FakeClock()
        b = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert b.allow(4)
        assert not b.allow(1)
        clock.advance(0.5)  # +1 token
        assert b.allow(1)
        assert not b.allow(1)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        b = TokenBucket(rate=100.0, burst=5.0, clock=clock)
        clock.advance(1000.0)
        assert b.tokens == 5.0

    def test_cost_larger_than_one(self):
        clock = FakeClock()
        b = TokenBucket(rate=1.0, burst=10.0, clock=clock)
        assert b.allow(7)
        assert not b.allow(4)
        assert b.allow(3)

    def test_eta_is_time_until_affordable(self):
        clock = FakeClock()
        b = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert b.eta(4) == 0.0
        b.allow(4)
        assert b.eta(4) == pytest.approx(2.0)  # 4 tokens at 2/s
        clock.advance(1.0)
        assert b.eta(4) == pytest.approx(1.0)
        clock.advance(1.0)
        assert b.eta(4) == 0.0


class TestClientRateLimiter:
    def test_keys_are_independent(self):
        clock = FakeClock()
        lim = ClientRateLimiter(1.0, 2.0, clock=clock)
        assert lim.allow("a", 2)
        assert not lim.allow("a", 1)
        assert lim.allow("b", 2)  # b has its own full bucket
        assert lim.rejected == 1
        assert len(lim) == 2

    def test_eta_for_unknown_key_is_zero(self):
        lim = ClientRateLimiter(1.0, 1.0, clock=FakeClock())
        assert lim.eta("never-seen") == 0.0

    def test_eta_for_drained_key(self):
        clock = FakeClock()
        lim = ClientRateLimiter(2.0, 2.0, clock=clock)
        lim.allow("a", 2)
        assert lim.eta("a", 2) == pytest.approx(1.0)

    def test_forget_drops_the_bucket(self):
        clock = FakeClock()
        lim = ClientRateLimiter(0.001, 1.0, clock=clock)
        assert lim.allow("a", 1)
        assert not lim.allow("a", 1)
        lim.forget("a")
        assert lim.allow("a", 1)  # fresh bucket, full again

    def test_idle_clients_are_evicted_at_capacity(self):
        clock = FakeClock()
        lim = ClientRateLimiter(1.0, 2.0, clock=clock, max_clients=4)
        for i in range(4):
            lim.allow(f"idle-{i}", 1)
        clock.advance(100.0)  # everyone refills to burst → evictable
        lim.allow("new", 1)
        assert len(lim) <= 4
        assert "new" in lim._buckets

    def test_all_active_evicts_one_rather_than_growing(self):
        clock = FakeClock()
        lim = ClientRateLimiter(0.001, 2.0, clock=clock, max_clients=3)
        for i in range(3):
            lim.allow(f"hot-{i}", 1)  # all below burst, none idle
        lim.allow("new", 1)
        assert len(lim) == 3
        assert "new" in lim._buckets
