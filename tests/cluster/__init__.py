"""Tests for :mod:`repro.cluster` — shards, WAL, router, supervision."""
