"""``repro top`` rendering: pure-function frames over synthetic samples."""

from __future__ import annotations

import asyncio

import repro.obs as obs
from repro.networks import k_network
from repro.obs.exposition import parse_prometheus
from repro.serve import CountingServer, CountingService, TCPCounterClient
from repro.serve.top import TopSample, render_frame, sample_server


def make_stats(issued=1000, submitted=500, rejected=0, queue_depth=3) -> dict:
    return {
        "network": {"name": "K(2,3)", "width": 6, "depth": 1},
        "issued": issued,
        "submitted": submitted,
        "rejected": rejected,
        "queue_depth": queue_depth,
        "queue_limit": 1024,
        "mean_batch_size": 7.5,
        "cache": {"hits": 9, "misses": 1, "stores": 1, "corrupt": 0},
        "executor": {"buffer_allocs": 2, "buffer_reuses": 98, "batches": 100},
    }


def make_series(count=100) -> dict:
    text = (
        "# TYPE repro_serve_request_seconds histogram\n"
        f'repro_serve_request_seconds_bucket{{le="0.001"}} {count // 2}\n'
        f'repro_serve_request_seconds_bucket{{le="0.01"}} {count}\n'
        f'repro_serve_request_seconds_bucket{{le="+Inf"}} {count}\n'
        f"repro_serve_request_seconds_sum {count * 0.002}\n"
        f"repro_serve_request_seconds_count {count}\n"
        "# TYPE repro_serve_request_seconds_max gauge\n"
        "repro_serve_request_seconds_max 0.008\n"
    )
    return parse_prometheus(text)


class TestRenderFrame:
    def test_rates_come_from_deltas(self):
        prev = TopSample(10.0, make_stats(issued=1000, submitted=500), make_series())
        cur = TopSample(12.0, make_stats(issued=3000, submitted=1500), make_series())
        frame = render_frame(prev, cur)
        assert "1,000 tok/s" in frame  # (3000-1000)/2s
        assert "500.0 req/s" in frame
        assert "K(2,3)" in frame

    def test_latency_percentiles_are_finite_and_formatted(self):
        prev = TopSample(0.0, make_stats(), make_series())
        cur = TopSample(1.0, make_stats(issued=2000), make_series())
        frame = render_frame(prev, cur)
        assert "latency p50" in frame and "latency p99" in frame
        assert "inf" not in frame.lower()
        # p99 clamps to the exported max (8ms), rendered in ms
        assert "ms" in frame

    def test_cache_hit_rate_and_buffer_reuse(self):
        prev = TopSample(0.0, make_stats(), make_series())
        cur = TopSample(1.0, make_stats(), make_series())
        frame = render_frame(prev, cur)
        assert "90.0%" in frame  # 9 hits / 10 lookups
        assert "98.0%" in frame  # 98 reuses / 100 touches

    def test_shed_rate(self):
        prev = TopSample(0.0, make_stats(submitted=0, rejected=0), make_series())
        cur = TopSample(1.0, make_stats(submitted=90, rejected=10), make_series())
        frame = render_frame(prev, cur)
        assert "10.0%" in frame

    def test_degrades_without_metrics_series(self):
        prev = TopSample(0.0, make_stats(), {})
        cur = TopSample(1.0, make_stats(issued=2000), {})
        frame = render_frame(prev, cur)
        assert "n/a" in frame
        assert "REPRO_OBS=1" in frame


class TestSampleServer:
    def test_live_sample_round_trip(self):
        with obs.capture():
            async def main():
                server = CountingServer(CountingService(k_network([2, 3])), port=0)
                async with server:
                    client = await TCPCounterClient.connect(*server.address)
                    try:
                        await client.inc(4)
                        s0 = await sample_server(client)
                        await client.inc(4)
                        s1 = await sample_server(client)
                    finally:
                        await client.close()
                    return s0, s1

            s0, s1 = asyncio.run(main())
        assert s1.stats["issued"] == s0.stats["issued"] + 4
        assert "repro_serve_request_seconds_bucket" in s1.series
        frame = render_frame(s0, s1)
        assert "issued total" in frame


def make_cluster_stats(s0_submitted=400, s1_submitted=300, s1_up=True) -> dict:
    st = make_stats(submitted=s0_submitted + s1_submitted)
    st["cluster"] = {
        "num_shards": 2,
        "value_stride": 2,
        "router": {"mode": "line", "throttled": 4, "shard_errors": 1},
        "shards": [
            {
                "shard_id": 0,
                "up": True,
                "reachable": True,
                "submitted": s0_submitted,
                "rejected": 0,
                "queue_depth": 2,
                "queue_limit": 1024,
                "request_p99_s": 0.004,
                "restarts": 0,
            },
            {
                "shard_id": 1,
                "up": s1_up,
                "reachable": s1_up,
                "submitted": s1_submitted,
                "rejected": 10,
                "queue_depth": 0,
                "queue_limit": 1024,
                "request_p99_s": None,
                "restarts": 1,
            },
        ],
    }
    return st


class TestClusterFrame:
    def test_per_shard_rows_render(self):
        prev = TopSample(0.0, make_cluster_stats(100, 100))
        cur = TopSample(2.0, make_cluster_stats(500, 300))
        frame = render_frame(prev, cur)
        assert "cluster: 2 shards" in frame
        assert "mode=line" in frame
        assert "throttled=4" in frame
        # Per-shard request rates are deltas over dt: (500-100)/2, (300-100)/2.
        assert "200.0" in frame
        assert "100.0" in frame
        assert "4.00ms" in frame  # shard 0 p99
        assert frame.count("up") >= 2

    def test_down_shard_is_flagged(self):
        prev = TopSample(0.0, make_cluster_stats())
        cur = TopSample(1.0, make_cluster_stats(s1_up=False))
        frame = render_frame(prev, cur)
        assert "DOWN" in frame

    def test_missing_prev_shard_degrades_to_na(self):
        prev = TopSample(0.0, make_stats())  # no cluster key last sample
        cur = TopSample(1.0, make_cluster_stats())
        frame = render_frame(prev, cur)
        assert "cluster: 2 shards" in frame
        assert "n/a" in frame  # rates need two cluster samples

    def test_single_process_layout_unchanged(self):
        prev = TopSample(0.0, make_stats(), make_series())
        cur = TopSample(1.0, make_stats(issued=2000), make_series())
        frame = render_frame(prev, cur)
        assert "cluster" not in frame
        assert "shard" not in frame
