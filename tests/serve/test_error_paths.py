"""Serving-layer error paths: overload under a slow consumer, abrupt client
disconnects mid-INC, and cancelled waiters.

These are the failure modes the chaos harness (:mod:`repro.faults.chaos`)
injects statistically; here each one is pinned down deterministically."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.networks import k_network
from repro.serve import CountingServer, CountingService, OverloadedError, TCPCounterClient


def run(coro):
    return asyncio.run(coro)


class TestSlowConsumerOverload:
    def test_overload_with_slow_batch_consumer(self):
        """A slow apply function (installed via the wrap_apply seam) keeps
        the bounded queue full; excess submissions get OverloadedError
        immediately and the accepted ones stay exactly-once."""

        async def main():
            svc = CountingService(
                k_network([2, 2]), max_batch=4, max_delay=0.0, queue_limit=4
            )

            def slow(original, requests):
                time.sleep(0.002)  # slow consumer: batch takes "forever"
                return original(requests)

            svc._batcher.wrap_apply(slow)
            async with svc:
                results = await asyncio.gather(
                    *(svc.fetch_and_increment() for _ in range(200)),
                    return_exceptions=True,
                )
            got = [r for r in results if isinstance(r, int)]
            rejected = [r for r in results if isinstance(r, OverloadedError)]
            assert rejected, "expected overload with a slow consumer and queue_limit=4"
            assert len(got) + len(rejected) == 200
            # Rejection is load-shedding, not corruption: accepted values
            # are still the contiguous exactly-once range.
            assert sorted(got) == list(range(len(got)))
            assert svc.batcher_stats.rejected == len(rejected)
            return svc

        run(main())

    def test_rejected_requests_have_no_side_effects(self):
        async def main():
            svc = CountingService(
                k_network([2, 2]), max_batch=1, max_delay=0.0, queue_limit=1
            )
            async with svc:
                results = await asyncio.gather(
                    *(svc.fetch_and_increment() for _ in range(50)),
                    return_exceptions=True,
                )
                accepted = [r for r in results if isinstance(r, int)]
                # Whatever was rejected was never issued: the next request
                # continues the contiguous range with no gap.
                nxt = await svc.fetch_and_increment()
                assert nxt == len(accepted)
                assert svc.issued == len(accepted) + 1

        run(main())


class TestClientDisconnectMidInc:
    def test_disconnect_after_inc_does_not_wedge_server(self):
        """A client that sends INC and vanishes: its values are burned
        (issued, undeliverable), the handler survives the broken pipe, and
        the server keeps serving other clients without double-issuing."""

        async def main():
            service = CountingService(k_network([2, 3]), max_delay=0.0)
            async with CountingServer(service, port=0) as server:
                host, port = server.address
                # Rude client: request 5 values, never read the reply.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"INC 5\n")
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # Let the server process the request against the dead socket.
                for _ in range(50):
                    if service.issued >= 5:
                        break
                    await asyncio.sleep(0.005)
                assert service.issued == 5, "the in-flight INC must still be served"
                # The server is alive and does not re-issue the burned values.
                c = await TCPCounterClient.connect(host, port)
                try:
                    assert await c.inc(2) == [5, 6]
                finally:
                    await c.close()

        run(main())

    def test_disconnect_mid_pipeline_other_clients_unaffected(self):
        async def main():
            service = CountingService(k_network([2, 3]), max_delay=0.0)
            async with CountingServer(service, port=0) as server:
                host, port = server.address
                healthy = await TCPCounterClient.connect(host, port)
                try:
                    before = await healthy.inc()
                    # Rude client pipelines several requests and slams the door.
                    _, writer = await asyncio.open_connection(host, port)
                    writer.write(b"INC 3\nINC 4\n")
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()
                    for _ in range(50):
                        if service.issued >= len(before) + 7:
                            break
                        await asyncio.sleep(0.005)
                    after = await healthy.inc()
                    # No duplicates: the healthy client's values never collide
                    # with the burned ones.
                    assert set(after).isdisjoint(before)
                    assert max(before) < min(after)
                    # Server still tracks connections and serves stats.
                    stats = await healthy.stats()
                    assert stats["issued"] == service.issued
                finally:
                    await healthy.close()

        run(main())


class TestCancelledWaiter:
    def test_cancelled_request_burns_values_but_stays_exactly_once(self):
        """Cancelling a waiter mid-flight must not corrupt accounting: the
        batcher may still issue the values (burned), and later requests get
        fresh, non-overlapping values — the invariant the chaos audit
        checks statistically."""

        async def main():
            async with CountingService(k_network([2, 2]), max_delay=0.001) as svc:
                task = asyncio.ensure_future(svc.fetch_and_increment_many(3))
                await asyncio.sleep(0)  # let it enqueue
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                values = await svc.fetch_and_increment_many(2)
                assert len(values) == len(set(values)) == 2
                # Everything issued is either delivered or burned — never
                # delivered twice.
                assert max(values) < svc.issued
                assert min(values) >= 0

        run(main())
