"""Tests for CountingService: exactly-once issuance, batching, validation."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.networks import k_network, l_network
from repro.serve import CountingService, ExactlyOnceError, OverloadedError


def run(coro):
    return asyncio.run(coro)


class TestIssueBatch:
    def test_values_are_the_next_contiguous_range(self):
        svc = CountingService(k_network([2, 3]))
        assert svc.issue_batch(7).tolist() == list(range(7))
        assert svc.issue_batch(5).tolist() == list(range(7, 12))
        assert svc.issued == 12

    def test_single_value_batches(self):
        svc = CountingService(l_network([2, 2, 2]))
        for expect in range(20):
            assert svc.issue_batch(1).tolist() == [expect]

    def test_values_come_from_network_wires(self):
        # The per-wire decomposition must match the network's own output
        # counts: wire i dispenses i, i+w, i+2w, ...
        net = k_network([3, 2])
        svc = CountingService(net)
        values = svc.issue_batch(11)
        wires = values % net.width
        counts = np.bincount(wires, minlength=net.width)
        # 11 tokens over 6 wires round-robin: step sequence 2,2,2,2,2,1.
        assert counts.tolist() == [2, 2, 2, 2, 2, 1]

    def test_rejects_nonpositive(self):
        svc = CountingService(k_network([2, 2]))
        with pytest.raises(ValueError):
            svc.issue_batch(0)


class TestExactlyOnceGuard:
    def test_corrupted_totals_trip_the_delta_guard(self):
        svc = CountingService(k_network([2, 3]))
        svc.issue_batch(9)
        svc._out_counts = svc._out_counts + 1  # simulate double-issuance state
        with pytest.raises(ExactlyOnceError, match="deltas"):
            svc.issue_batch(4)

    def test_skewed_wire_counts_trip_the_range_guard(self):
        svc = CountingService(k_network([2, 3]))
        svc.issue_batch(9)
        # Move one dispensed value between wires: totals still match (so the
        # delta guard passes), but the dispensed set now has a duplicate and
        # a gap, which the contiguous-range guard must catch.
        svc._out_counts = svc._out_counts.copy()
        svc._out_counts[0] -= 1
        svc._out_counts[1] += 1
        with pytest.raises(ExactlyOnceError, match="exactly-once"):
            svc.issue_batch(10)

    def test_validate_off_skips_the_guard(self):
        svc = CountingService(k_network([2, 3]), validate=False)
        svc.issue_batch(9)
        svc._out_counts = svc._out_counts.copy()
        svc._out_counts[0] -= 1
        svc._out_counts[1] += 1
        svc.issue_batch(10)  # silently wrong, but that is what was asked for


class TestAsyncAPI:
    def test_exactly_once_under_concurrency(self):
        """N concurrent clients x M ops each receive N*M distinct values
        forming a contiguous range (the acceptance criterion)."""
        n_clients, m_ops = 16, 25

        async def main():
            async with CountingService(k_network([2, 3, 2]), max_delay=0.001) as svc:

                async def client() -> list[int]:
                    return [await svc.fetch_and_increment() for _ in range(m_ops)]

                per_client = await asyncio.gather(*(client() for _ in range(n_clients)))
                values = [v for vs in per_client for v in vs]
                assert len(values) == n_clients * m_ops
                assert sorted(values) == list(range(n_clients * m_ops))
                return svc.batcher_stats

        stats = run(main())
        # Concurrency must actually exercise the batching path.
        assert stats.mean_batch_size > 1

    def test_many_splits_across_requests(self):
        async def main():
            async with CountingService(k_network([2, 2])) as svc:
                a, b, c = await asyncio.gather(
                    svc.fetch_and_increment_many(3),
                    svc.fetch_and_increment_many(4),
                    svc.fetch_and_increment_many(5),
                )
                assert [len(a), len(b), len(c)] == [3, 4, 5]
                assert sorted(a + b + c) == list(range(12))
                # Each request's values are ascending within the request.
                for chunk in (a, b, c):
                    assert chunk == sorted(chunk)

        run(main())

    def test_many_rejects_nonpositive(self):
        async def main():
            async with CountingService(k_network([2, 2])) as svc:
                with pytest.raises(ValueError):
                    await svc.fetch_and_increment_many(0)

        run(main())

    def test_overload_surfaces_to_caller(self):
        async def main():
            svc = CountingService(
                k_network([2, 2]), max_batch=1, max_delay=0.0, queue_limit=1
            )
            async with svc:
                results = await asyncio.gather(
                    *(svc.fetch_and_increment() for _ in range(100)),
                    return_exceptions=True,
                )
            got = [r for r in results if isinstance(r, int)]
            rejected = [r for r in results if isinstance(r, OverloadedError)]
            assert rejected, "expected overload with queue_limit=1"
            # Accepted requests still form a contiguous exactly-once range.
            assert sorted(got) == list(range(len(got)))

        run(main())


class TestSteadyStateAllocation:
    def test_issue_batches_reuse_executor_buffers(self):
        """Steady-state serving must not allocate per-batch state arrays:
        after the first issuance warms the scratch pool, every subsequent
        batch is a pool hit (the service always evaluates one step
        vector, so one pooled batch size covers them all)."""
        svc = CountingService(k_network([2, 2, 2]))
        ex = svc._executor
        assert ex is not None  # pristine networks get the plan executor
        svc.issue_batch(3)
        allocs_after_warmup = ex.buffer_allocs
        reuses_before = ex.buffer_reuses
        for n in (1, 7, 2, 64, 5):
            svc.issue_batch(n)
        assert ex.buffer_allocs == allocs_after_warmup, "steady state allocated"
        assert ex.buffer_reuses == reuses_before + 5
        assert svc.stats()["executor"]["buffer_reuses"] == ex.buffer_reuses

    def test_faulty_network_has_no_executor(self):
        from repro.faults.mutator import FaultyNetwork, StuckOverride

        base = k_network([2, 2])
        faulty = FaultyNetwork(
            base.inputs,
            base.outputs,
            base.balancers,
            base.num_wires,
            name=base.name,
            fault_overrides={0: StuckOverride(0)},
        )
        svc = CountingService(faulty, validate=False)
        assert svc._executor is None
        assert svc.stats()["executor"] is None
        svc.issue_batch(2)  # still serves, via the override path


class TestConstruction:
    def test_from_plan_pads_unfactorable_widths(self):
        svc = CountingService.from_plan(34, 8)  # 34 = 2*17 needs padding
        assert svc.net.width >= 34
        assert svc.net.max_balancer_width <= 8
        assert svc.issue_batch(10).tolist() == list(range(10))

    def test_stats_snapshot(self):
        svc = CountingService(k_network([2, 3]), max_batch=32)
        svc.issue_batch(5)
        s = svc.stats()
        assert s["network"]["name"] == "K(2,3)"
        assert s["issued"] == 5
        assert s["max_batch"] == 32
        assert "batch_size_hist" in s
