"""Observability along the serve path: no-op guarantee, spans, METRICS.

The repo-wide promise is that with obs off the serving stack enters **zero**
frames of ``repro/obs`` code anywhere along server → batcher → service →
executor; with obs on, one request produces a linked request → batch →
executor span chain and populates the hot-path histograms.  Both are
asserted mechanically (``sys.setprofile`` call counting, as in
``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

import asyncio
import sys

import repro.obs as obs
from repro.networks import k_network
from repro.obs.exposition import histogram_from_samples, parse_prometheus
from repro.serve import CountingServer, CountingService, TCPCounterClient


def run(coro):
    return asyncio.run(coro)


def make_server(**service_kwargs) -> CountingServer:
    return CountingServer(CountingService(k_network([2, 3]), **service_kwargs), port=0)


def count_obs_calls(fn) -> int:
    """Run ``fn()`` counting frames entered in repro/obs code."""
    counts = {"obs": 0}
    sep = "repro" + "/".join(["", "obs", ""])  # "repro/obs/"

    def tracer(frame, event, arg):
        if event == "call":
            fname = frame.f_code.co_filename.replace("\\", "/")
            if sep in fname:
                counts["obs"] += 1
        return None

    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return counts["obs"]


async def _drive_requests(server: CountingServer, n: int = 6) -> None:
    client = await TCPCounterClient.connect(*server.address)
    try:
        for _ in range(n):
            await client.inc(2)
    finally:
        await client.close()


class TestNoOpGuarantee:
    def test_serve_path_enters_zero_obs_frames_when_off(self):
        # sys.setprofile cannot wrap a single await from inside the loop, so
        # profile the whole asyncio.run: server accept, protocol parse,
        # batcher dispatch, service issue, and executor run all execute
        # under the profiler.
        def whole_stack():
            async def main():
                async with make_server() as server:
                    await _drive_requests(server, n=6)

            asyncio.run(main())

        obs.disable()
        assert count_obs_calls(whole_stack) == 0

    def test_positive_control_obs_on_enters_obs_frames(self):
        """The zero above is meaningful only if the counter can see frames."""

        def whole_stack():
            with obs.capture():
                async def main():
                    async with make_server() as server:
                        await _drive_requests(server, n=6)

                asyncio.run(main())

        assert count_obs_calls(whole_stack) > 0


class TestSpanChain:
    def test_request_batch_executor_linkage_over_tcp(self):
        with obs.capture():
            async def main():
                async with make_server() as server:
                    await _drive_requests(server, n=4)

            run(main())
            rec = obs.default_span_recorder()
            requests = rec.completed("request")
            batches = {s.span_id: s for s in rec.completed("batch")}
            executors = {s.span_id: s for s in rec.completed("executor")}
            assert requests and batches and executors
            linked = [r for r in requests if "batch_id" in r.fields]
            assert linked, "no request span was linked to a batch"
            for r in linked:
                assert r.status == "ok"
                for mark in ("parsed", "enqueued", "batched", "responded"):
                    assert mark in r.marks, (mark, r.to_dict())
                b = batches[r.fields["batch_id"]]
                assert "executed" in b.marks and "verified" in b.marks
                e = executors[b.fields["executor_run"]]
                assert e.parent_id == b.span_id

    def test_service_origin_spans_without_server(self):
        """In-process callers get a full chain too (what chaos runs need)."""
        with obs.capture():
            async def main():
                async with CountingService(k_network([2, 3])) as svc:
                    await svc.fetch_and_increment_many(3)

            run(main())
            rec = obs.default_span_recorder()
            reqs = rec.completed("request")
            assert reqs and reqs[0].fields.get("origin") == "service"
            assert "batch_id" in reqs[0].fields


class TestMetricsVerb:
    def test_metrics_scrape_parses_and_covers_required_series(self):
        with obs.capture():
            async def main():
                async with make_server() as server:
                    client = await TCPCounterClient.connect(*server.address)
                    try:
                        for _ in range(8):
                            await client.inc(2)
                        return await client.metrics()
                    finally:
                        await client.close()

            text = run(main())
        series = parse_prometheus(text)  # validating parser
        for want in (
            "repro_serve_queue_depth",
            "repro_serve_shed_total",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_plan_buffer_allocs_total",
            "repro_plan_buffer_reuses_total",
            "repro_serve_request_seconds_bucket",
            "repro_serve_queue_wait_seconds_bucket",
            "repro_serve_batch_seconds_bucket",
            "repro_serve_batch_size_bucket",
        ):
            assert want in series, want
        hist = histogram_from_samples(series, "repro_serve_request_seconds")
        assert hist is not None and hist[3] >= 8

    def test_metrics_works_with_obs_off(self):
        obs.disable()

        async def main():
            async with make_server() as server:
                client = await TCPCounterClient.connect(*server.address)
                try:
                    await client.inc(2)
                    return await client.metrics()
                finally:
                    await client.close()

        series = parse_prometheus(run(main()))
        assert series["repro_obs_enabled"]["samples"][0][1] == 0.0
        assert series["repro_serve_issued_total"]["samples"][0][1] == 2.0
        # Hot-path histograms need obs on.
        assert "repro_serve_request_seconds_bucket" not in series

    def test_flight_verb_on_demand(self):
        with obs.capture():
            async def main():
                async with make_server() as server:
                    client = await TCPCounterClient.connect(*server.address)
                    try:
                        await client.inc(2)
                        return await client.flight()
                    finally:
                        await client.close()

            payload = run(main())
        assert payload["reason"] == "on-demand"
        assert any(s["kind"] == "request" for s in payload["spans"])


class TestStatsSurface:
    def test_stats_exposes_cache_and_executor_counters(self):
        async def main():
            async with make_server() as server:
                client = await TCPCounterClient.connect(*server.address)
                try:
                    await client.inc(2)
                    return await client.stats()
                finally:
                    await client.close()

        stats = run(main())
        assert set(stats["cache"]) == {"hits", "misses", "stores", "corrupt"}
        ex = stats["executor"]
        assert {"buffer_allocs", "buffer_reuses", "batches"} <= set(ex)
        assert ex["batches"] >= 1
