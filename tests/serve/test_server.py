"""End-to-end tests for the TCP server (localhost, ephemeral ports)."""

from __future__ import annotations

import asyncio

from repro.networks import k_network
from repro.serve import CountingServer, CountingService, TCPCounterClient


def run(coro):
    return asyncio.run(coro)


def make_server(**service_kwargs) -> CountingServer:
    return CountingServer(CountingService(k_network([2, 3]), **service_kwargs), port=0)


class TestEndToEnd:
    def test_exactly_once_across_connections(self):
        n_conns, m_ops = 8, 15

        async def main():
            async with make_server() as server:
                host, port = server.address

                async def client() -> list[int]:
                    c = await TCPCounterClient.connect(host, port)
                    try:
                        out = []
                        for _ in range(m_ops):
                            out.extend(await c.inc())
                        return out
                    finally:
                        await c.close()

                per_conn = await asyncio.gather(*(client() for _ in range(n_conns)))
                values = [v for vs in per_conn for v in vs]
                assert sorted(values) == list(range(n_conns * m_ops))
                assert server.connections == n_conns

        run(main())

    def test_vector_requests(self):
        async def main():
            async with make_server() as server:
                c = await TCPCounterClient.connect(*server.address)
                try:
                    assert await c.inc(5) == [0, 1, 2, 3, 4]
                    assert await c.inc(3) == [5, 6, 7]
                finally:
                    await c.close()

        run(main())

    def test_stats_over_the_wire(self):
        async def main():
            async with make_server(max_batch=32) as server:
                c = await TCPCounterClient.connect(*server.address)
                try:
                    await c.inc(4)
                    stats = await c.stats()
                    assert stats["issued"] == 4
                    assert stats["network"]["name"] == "K(2,3)"
                    assert stats["max_batch"] == 32
                finally:
                    await c.close()

        run(main())


class TestProtocolEdges:
    async def _raw_roundtrip(self, server: CountingServer, payload: bytes) -> bytes:
        reader, writer = await asyncio.open_connection(*server.address)
        try:
            writer.write(payload)
            await writer.drain()
            return await reader.readline()
        finally:
            writer.close()
            await writer.wait_closed()

    def test_bad_request_keeps_connection_usable(self):
        async def main():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(*server.address)
                try:
                    writer.write(b"BOGUS\n")
                    await writer.drain()
                    line = await reader.readline()
                    assert line.startswith(b"ERR bad-request")
                    writer.write(b"INC\n")
                    await writer.drain()
                    assert (await reader.readline()).startswith(b"OK ")
                finally:
                    writer.close()
                    await writer.wait_closed()

        run(main())

    def test_ping(self):
        async def main():
            async with make_server() as server:
                assert await self._raw_roundtrip(server, b"PING\n") == b"OK pong\n"

        run(main())

    def test_oversized_amount_is_a_clean_error(self):
        async def main():
            async with make_server() as server:
                line = await self._raw_roundtrip(server, b"INC 99999999999\n")
                assert line.startswith(b"ERR bad-request")

        run(main())

    def test_pipelined_requests_answered_in_order(self):
        async def main():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(*server.address)
                try:
                    writer.write(b"INC 2\nPING\nINC\n")
                    await writer.drain()
                    assert (await reader.readline()) == b"OK 0 1\n"
                    assert (await reader.readline()) == b"OK pong\n"
                    assert (await reader.readline()) == b"OK 2\n"
                finally:
                    writer.close()
                    await writer.wait_closed()

        run(main())
