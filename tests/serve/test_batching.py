"""Tests for the asyncio micro-batcher: coalescing, bounds, backpressure."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batching import Batcher, OverloadedError


def run(coro):
    return asyncio.run(coro)


def echo_batch(requests):
    return list(requests)


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def main():
            b = Batcher(echo_batch)
            with pytest.raises(RuntimeError, match="not running"):
                await b.submit(1)

        run(main())

    def test_context_manager_starts_and_stops(self):
        async def main():
            async with Batcher(echo_batch) as b:
                assert b.running
                assert await b.submit("x") == "x"
            assert not b.running

        run(main())

    def test_stop_drains_queued_work(self):
        async def main():
            b = Batcher(echo_batch, max_batch=2, max_delay=0.0)
            await b.start()
            futs = [asyncio.ensure_future(b.submit(i)) for i in range(10)]
            await asyncio.sleep(0)  # let every submission reach the queue
            await b.stop()
            assert [await f for f in futs] == list(range(10))

        run(main())


class TestCoalescing:
    def test_concurrent_submissions_share_batches(self):
        async def main():
            async with Batcher(echo_batch, max_batch=64, max_delay=0.002) as b:
                results = await asyncio.gather(*(b.submit(i) for i in range(100)))
                assert results == list(range(100))
                assert b.stats.batches < 100  # genuinely coalesced
                assert b.stats.mean_batch_size > 1
                assert b.stats.completed == 100

        run(main())

    def test_max_batch_respected(self):
        sizes = []

        def apply(requests):
            sizes.append(len(requests))
            return list(requests)

        async def main():
            async with Batcher(apply, max_batch=8, max_delay=0.002) as b:
                await asyncio.gather(*(b.submit(i) for i in range(50)))

        run(main())
        assert max(sizes) <= 8
        assert sum(sizes) == 50

    def test_histogram_accounts_every_batch(self):
        async def main():
            async with Batcher(echo_batch, max_batch=4, max_delay=0.0) as b:
                await asyncio.gather(*(b.submit(i) for i in range(17)))
                hist = b.stats.batch_size_hist
                assert sum(hist.values()) == b.stats.batches
                assert sum(s * n for s, n in hist.items()) == 17

        run(main())

    def test_single_item_flushes_after_max_delay(self):
        async def main():
            async with Batcher(echo_batch, max_batch=1024, max_delay=0.01) as b:
                loop = asyncio.get_running_loop()
                t0 = loop.time()
                assert await b.submit("solo") == "solo"
                assert loop.time() - t0 < 5.0  # flushed, not stuck

        run(main())


class TestBackpressure:
    def test_overload_rejects_cleanly(self):
        async def main():
            b = Batcher(echo_batch, max_batch=1, max_delay=0.0, queue_limit=2)
            await b.start()
            # All 200 submissions race in before the worker gets a turn;
            # only queue_limit of them can be pending at once.
            results = await asyncio.gather(
                *(b.submit(i) for i in range(200)), return_exceptions=True
            )
            rejected = [r for r in results if isinstance(r, OverloadedError)]
            completed = [r for r in results if not isinstance(r, Exception)]
            assert rejected, "queue bound never tripped"
            assert len(rejected) + len(completed) == 200
            assert b.stats.rejected == len(rejected)
            # A rejected submission has no side effects: everything accepted
            # completes, nothing else does.
            assert b.stats.completed == len(completed) == b.stats.submitted
            await b.stop()

        run(main())


class TestFailures:
    def test_apply_exception_propagates_to_all_waiters(self):
        def boom(requests):
            raise ValueError("kernel exploded")

        async def main():
            async with Batcher(boom, max_batch=8, max_delay=0.002) as b:
                results = await asyncio.gather(
                    *(b.submit(i) for i in range(5)), return_exceptions=True
                )
                assert all(isinstance(r, ValueError) for r in results)

        run(main())

    def test_result_count_mismatch_is_an_error(self):
        def short(requests):
            return list(requests)[:-1]

        async def main():
            async with Batcher(short, max_batch=4, max_delay=0.0) as b:
                with pytest.raises(RuntimeError, match="results for"):
                    await b.submit(1)

        run(main())


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay": -1.0},
            {"queue_limit": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Batcher(echo_batch, **kwargs)
