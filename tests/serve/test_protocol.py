"""Tests for the line protocol: parsing, encoding, and roundtrips."""

from __future__ import annotations

import json

import pytest

from repro.serve.batching import OverloadedError
from repro.serve.protocol import (
    MAX_AMOUNT,
    ProtocolError,
    Request,
    encode_error,
    encode_request,
    encode_stats,
    encode_values,
    parse_request,
    parse_response,
)


class TestParseRequest:
    def test_bare_inc(self):
        assert parse_request("INC") == Request("inc", 1)

    def test_inc_with_amount(self):
        assert parse_request("INC 17") == Request("inc", 17)

    def test_case_and_whitespace_insensitive(self):
        assert parse_request("  inc 3 \r") == Request("inc", 3)

    def test_stats_and_ping(self):
        assert parse_request("STATS").verb == "stats"
        assert parse_request("ping").verb == "ping"

    @pytest.mark.parametrize(
        "line",
        ["", "   ", "INC x", "INC 0", "INC -3", f"INC {MAX_AMOUNT + 1}",
         "INC 1 2", "GET", "STATS now", "PING PING"],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)


class TestRoundtrips:
    def test_request_roundtrip(self):
        for amount in (1, 2, 999):
            req = parse_request(encode_request(amount).decode())
            assert req == Request("inc", amount)

    def test_values_roundtrip(self):
        line = encode_values([5, 6, 7]).decode()
        assert parse_response(line) == [5, 6, 7]

    def test_stats_line_is_one_json_object(self):
        line = encode_stats({"issued": 4, "network": {"name": "K(2,3)"}}).decode()
        assert line.startswith("OK ") and line.endswith("\n")
        assert json.loads(line[3:]) == {"issued": 4, "network": {"name": "K(2,3)"}}


class TestParseResponse:
    def test_overloaded_becomes_typed_error(self):
        line = encode_error("overloaded", "pending queue full (8 requests)").decode()
        with pytest.raises(OverloadedError, match="queue full"):
            parse_response(line)

    def test_other_errors_are_protocol_errors(self):
        with pytest.raises(ProtocolError, match="bad-request"):
            parse_response("ERR bad-request unknown verb")
        with pytest.raises(ProtocolError):
            parse_response("ERR")

    def test_error_messages_are_flattened_to_one_line(self):
        line = encode_error("internal", "multi\nline\tmessage")
        assert line.count(b"\n") == 1 and line.endswith(b"\n")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            parse_response("HELLO WORLD")
        with pytest.raises(ProtocolError):
            parse_response("OK 1 two 3")
