"""Tests for the load generator: both loops, both targets, the report."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.networks import k_network
from repro.serve import CountingServer, CountingService, LoadGenerator, LoadReport


def run(coro):
    return asyncio.run(coro)


class TestClosedLoop:
    def test_in_process_report(self):
        async def main():
            async with CountingService(k_network([2, 3])) as svc:
                gen = LoadGenerator(mode="closed", clients=8, ops=10, seed=2)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.requests == 80
        assert rep.tokens == 80
        assert rep.rejected == 0
        assert rep.exactly_once
        assert rep.throughput > 0
        assert len(rep.latencies_s) == 80
        assert rep.latency_percentile(50) <= rep.latency_percentile(99)
        # High client counts must drive mean batch size above 1.
        assert rep.service_stats["mean_batch_size"] > 1

    def test_vector_amounts(self):
        async def main():
            async with CountingService(k_network([2, 2])) as svc:
                gen = LoadGenerator(mode="closed", clients=4, ops=5, amount=3)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.tokens == 4 * 5 * 3
        assert rep.exactly_once

    def test_tcp_target(self):
        async def main():
            svc = CountingService(k_network([2, 3]))
            async with CountingServer(svc, port=0) as server:
                gen = LoadGenerator(mode="closed", clients=6, ops=8, seed=0)
                return await gen.run_tcp(*server.address)

        rep = run(main())
        assert rep.tokens == 48
        assert rep.exactly_once
        # service stats came over the wire
        assert rep.service_stats["issued"] == 48


class TestOpenLoop:
    def test_open_loop_accounting(self):
        async def main():
            async with CountingService(k_network([2, 3])) as svc:
                gen = LoadGenerator(mode="open", clients=4, ops=60, rate=5000.0, seed=9)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.requests == 60
        assert len(rep.latencies_s) + rep.rejected == 60
        assert rep.tokens == 60 - rep.rejected
        assert rep.exactly_once  # whatever was accepted is contiguous

    def test_overload_counted_not_raised(self):
        async def main():
            svc = CountingService(
                k_network([2, 2]), max_batch=1, max_delay=0.0, queue_limit=1
            )
            async with svc:
                gen = LoadGenerator(mode="open", clients=2, ops=200, rate=1e6, seed=5)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.rejected > 0
        assert rep.exactly_once

    def test_seeded_schedule_is_deterministic(self):
        # The arrival schedule is a pure function of (seed, rate, ops).
        g1 = LoadGenerator(mode="open", ops=50, rate=1000.0, seed=42)
        g2 = LoadGenerator(mode="open", ops=50, rate=1000.0, seed=42)
        s1 = np.cumsum(np.random.default_rng(g1.seed).exponential(1 / g1.rate, g1.ops))
        s2 = np.cumsum(np.random.default_rng(g2.seed).exponential(1 / g2.rate, g2.ops))
        assert np.array_equal(s1, s2)


class TestReport:
    def test_bench_payload_shape(self):
        async def main():
            async with CountingService(k_network([2, 3])) as svc:
                gen = LoadGenerator(mode="closed", clients=4, ops=6, seed=1)
                return await gen.run_service(svc)

        payload = run(main()).bench_payload()
        summary = payload["summary"]
        for key in (
            "throughput",
            "latency_p50_s",
            "latency_p99_s",
            "mean_batch_size",
            "exactly_once",
            "seed",
        ):
            assert key in summary, key
        assert isinstance(payload["batch_size_hist"], dict)
        assert payload["service"]["issued"] == 24

    def test_empty_report_is_nan_not_crash(self):
        rep = LoadReport(
            mode="closed",
            clients=1,
            requests=0,
            rejected=0,
            values=[],
            latencies_s=np.array([]),
            duration_s=0.0,
        )
        assert rep.throughput != rep.throughput  # nan
        assert not rep.exactly_once
        assert rep.summary()["latency_p50_s"] is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sideways"},
            {"clients": 0},
            {"ops": 0},
            {"amount": 0},
            {"rate": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadGenerator(**kwargs)
