"""Tests for the load generator: both loops, both targets, the report."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.networks import k_network
from repro.serve import CountingServer, CountingService, LoadGenerator, LoadReport


def run(coro):
    return asyncio.run(coro)


class TestClosedLoop:
    def test_in_process_report(self):
        async def main():
            async with CountingService(k_network([2, 3])) as svc:
                gen = LoadGenerator(mode="closed", clients=8, ops=10, seed=2)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.requests == 80
        assert rep.tokens == 80
        assert rep.rejected == 0
        assert rep.exactly_once
        assert rep.throughput > 0
        assert len(rep.latencies_s) == 80
        assert rep.latency_percentile(50) <= rep.latency_percentile(99)
        # High client counts must drive mean batch size above 1.
        assert rep.service_stats["mean_batch_size"] > 1

    def test_vector_amounts(self):
        async def main():
            async with CountingService(k_network([2, 2])) as svc:
                gen = LoadGenerator(mode="closed", clients=4, ops=5, amount=3)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.tokens == 4 * 5 * 3
        assert rep.exactly_once

    def test_tcp_target(self):
        async def main():
            svc = CountingService(k_network([2, 3]))
            async with CountingServer(svc, port=0) as server:
                gen = LoadGenerator(mode="closed", clients=6, ops=8, seed=0)
                return await gen.run_tcp(*server.address)

        rep = run(main())
        assert rep.tokens == 48
        assert rep.exactly_once
        # service stats came over the wire
        assert rep.service_stats["issued"] == 48


class TestOpenLoop:
    def test_open_loop_accounting(self):
        async def main():
            async with CountingService(k_network([2, 3])) as svc:
                gen = LoadGenerator(mode="open", clients=4, ops=60, rate=5000.0, seed=9)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.requests == 60
        assert len(rep.latencies_s) + rep.rejected == 60
        assert rep.tokens == 60 - rep.rejected
        assert rep.exactly_once  # whatever was accepted is contiguous

    def test_overload_counted_not_raised(self):
        async def main():
            svc = CountingService(
                k_network([2, 2]), max_batch=1, max_delay=0.0, queue_limit=1
            )
            async with svc:
                gen = LoadGenerator(mode="open", clients=2, ops=200, rate=1e6, seed=5)
                return await gen.run_service(svc)

        rep = run(main())
        assert rep.rejected > 0
        assert rep.exactly_once

    def test_seeded_schedule_is_deterministic(self):
        # The arrival schedule is a pure function of (seed, rate, ops).
        g1 = LoadGenerator(mode="open", ops=50, rate=1000.0, seed=42)
        g2 = LoadGenerator(mode="open", ops=50, rate=1000.0, seed=42)
        s1 = np.cumsum(np.random.default_rng(g1.seed).exponential(1 / g1.rate, g1.ops))
        s2 = np.cumsum(np.random.default_rng(g2.seed).exponential(1 / g2.rate, g2.ops))
        assert np.array_equal(s1, s2)


class TestReport:
    def test_bench_payload_shape(self):
        async def main():
            async with CountingService(k_network([2, 3])) as svc:
                gen = LoadGenerator(mode="closed", clients=4, ops=6, seed=1)
                return await gen.run_service(svc)

        payload = run(main()).bench_payload()
        summary = payload["summary"]
        for key in (
            "throughput",
            "latency_p50_s",
            "latency_p99_s",
            "mean_batch_size",
            "exactly_once",
            "seed",
        ):
            assert key in summary, key
        assert isinstance(payload["batch_size_hist"], dict)
        assert payload["service"]["issued"] == 24

    def test_empty_report_is_nan_not_crash(self):
        rep = LoadReport(
            mode="closed",
            clients=1,
            requests=0,
            rejected=0,
            values=[],
            latencies_s=np.array([]),
            duration_s=0.0,
        )
        assert rep.throughput != rep.throughput  # nan
        assert not rep.exactly_once
        assert rep.summary()["latency_p50_s"] is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sideways"},
            {"clients": 0},
            {"ops": 0},
            {"amount": 0},
            {"rate": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadGenerator(**kwargs)


class TestAuditValues:
    def test_contiguous_single_stride(self):
        from repro.serve import audit_values

        audit = audit_values([0, 1, 2, 3, 4])
        assert audit["exactly_once"]
        assert audit["gap_total"] == 0
        assert audit["duplicates"] == 0

    def test_duplicates_are_counted(self):
        from repro.serve import audit_values

        audit = audit_values([0, 1, 1, 2])
        assert not audit["exactly_once"]
        assert audit["duplicates"] == 1
        assert not audit["distinct"]

    def test_gaps_inside_a_class_span(self):
        from repro.serve import audit_values

        audit = audit_values([0, 1, 3, 4])  # 2 is missing
        assert audit["gap_total"] == 1
        assert not audit["exactly_once"]

    def test_residue_classes_audit_independently(self):
        from repro.serve import audit_values

        # Two shards of stride 2, each contiguous in its own class but with
        # very different totals — globally full of "holes", still exactly-once.
        values = [0, 2, 4, 6] + [1, 3]
        audit = audit_values(values, stride=2)
        assert audit["exactly_once"]
        assert audit["classes"][0]["n"] == 4
        assert audit["classes"][1]["n"] == 2

    def test_class_gap_detected_at_stride(self):
        from repro.serve import audit_values

        audit = audit_values([0, 2, 6, 1, 3], stride=2)  # class 0 missing 4
        assert audit["gap_total"] == 1
        assert audit["classes"][0]["gaps"] == 1
        assert audit["classes"][1]["gaps"] == 0

    def test_empty_is_not_exactly_once(self):
        from repro.serve import audit_values

        assert not audit_values([])["exactly_once"]

    def test_stride_validation(self):
        from repro.serve import audit_values

        with pytest.raises(ValueError):
            audit_values([1], stride=0)


class DroppyCounterServer:
    """A line-protocol counter that drops each connection once, mid-request.

    The first ``INC`` on every fresh connection is answered by closing the
    socket with no response — exactly the failure surface a router exposes
    when its shard dies with a request in flight.  Subsequent connections
    serve sequential values normally.
    """

    def __init__(self, drops: int = 1):
        self.drops_left = drops
        self.next_value = 0
        self.connections = 0
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    @property
    def address(self):
        return self._server.sockets[0].getsockname()[:2]

    async def _handle(self, reader, writer):
        self.connections += 1
        while True:
            line = await reader.readline()
            if not line:
                break
            if self.drops_left > 0:
                self.drops_left -= 1
                break  # drop the connection with the request unanswered
            amount = int(line.split()[1]) if len(line.split()) > 1 else 1
            vals = range(self.next_value, self.next_value + amount)
            self.next_value += amount
            writer.write(f"OK {' '.join(map(str, vals))}\n".encode())
            await writer.drain()
        writer.close()


class TestReconnect:
    def test_inc_survives_a_dropped_connection(self):
        from repro.serve import TCPCounterClient

        async def main():
            async with DroppyCounterServer(drops=1) as server:
                host, port = server.address
                client = await TCPCounterClient.connect(
                    host, port, reconnect=True, backoff_base=0.001, backoff_seed=3
                )
                vals = await client.inc()
                more = await client.inc()
                await client.close()
                return vals, more, client, server.connections

        vals, more, client, connections = run(main())
        assert vals == [0]
        assert more == [1]
        assert client.reconnects == 1
        assert client.risked == 1
        assert connections == 2

    def test_without_reconnect_the_error_surfaces(self):
        from repro.serve import TCPCounterClient

        async def main():
            async with DroppyCounterServer(drops=1) as server:
                client = await TCPCounterClient.connect(*server.address)
                await client.inc()

        with pytest.raises((ConnectionError, asyncio.IncompleteReadError, EOFError)):
            run(main())

    def test_gives_up_after_max_retries(self):
        from repro.serve import TCPCounterClient

        async def main():
            async with DroppyCounterServer(drops=100) as server:
                client = await TCPCounterClient.connect(
                    *server.address,
                    reconnect=True,
                    max_retries=2,
                    backoff_base=0.001,
                )
                await client.inc()

        with pytest.raises(ConnectionError):
            run(main())

    def test_backoff_is_capped_jittered_and_seeded(self):
        from repro.serve import TCPCounterClient

        async def main():
            async with DroppyCounterServer(drops=0) as server:
                a = await TCPCounterClient.connect(
                    *server.address, reconnect=True, backoff_seed=42,
                    backoff_base=0.05, backoff_cap=2.0,
                )
                b = await TCPCounterClient.connect(
                    *server.address, reconnect=True, backoff_seed=42,
                    backoff_base=0.05, backoff_cap=2.0,
                )
                delays_a = [a.backoff_delay(k) for k in range(12)]
                delays_b = [b.backoff_delay(k) for k in range(12)]
                await a.close()
                await b.close()
                return delays_a, delays_b

        delays_a, delays_b = run(main())
        assert delays_a == delays_b  # same seed, same schedule
        assert all(d <= 2.0 for d in delays_a)  # capped
        assert all(d >= 0.5 * 0.05 for d in delays_a)  # jitter floor of first step
        assert delays_a[1] != delays_a[2] or delays_a[2] != delays_a[3]
