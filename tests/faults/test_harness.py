"""The conformance harness: the kill matrix is complete, calibrated, and
reproducible."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.harness import (
    VERIFIERS,
    KillMatrix,
    default_networks,
    run_conformance,
    semantically_equivalent,
)
from repro.faults.mutator import FAULT_CLASSES, duplicate_layer, flip_balancer
from repro.networks import k_network


@pytest.fixture(scope="module")
def matrix() -> KillMatrix:
    """One conformance run shared by the read-only assertions below."""
    return run_conformance(seed=42, sites_per_fault=2)


class TestKillMatrix:
    def test_complete_no_escapes(self, matrix):
        """The acceptance bar: every live mutant caught by >= 1 verifier."""
        assert matrix.complete(), [t.as_dict() for t in matrix.escapes()]

    def test_every_fault_class_detected(self, matrix):
        """Each fault class has at least one (caught, total>0) verifier cell."""
        for fault in FAULT_CLASSES:
            live = [t for t in matrix.trials if t.fault == fault and not t.equivalent]
            assert live, f"no live mutants sampled for {fault}"
            assert all(t.caught_by for t in live), fault

    def test_structure_audit_owns_dup_layer(self, matrix):
        """dup_layer is quiescently equivalent: only the structural audit
        can catch it — and it must catch all of them."""
        dups = [t for t in matrix.trials if t.fault == "dup_layer"]
        assert dups
        for t in dups:
            assert t.caught_by == ("structure",)

    def test_cells_sum_to_trials(self, matrix):
        for fault in matrix.faults:
            live = [t for t in matrix.trials if t.fault == fault and not t.equivalent]
            for v in matrix.verifiers:
                caught, total = matrix.cell(fault, v)
                assert 0 <= caught <= total
                assert total == sum(1 for t in live if v in t.applicable)

    def test_as_dict_shape(self, matrix):
        d = matrix.as_dict()
        assert set(d) == {
            "seed", "backend", "verifiers", "faults", "matrix", "trials", "summary",
        }
        assert d["summary"]["mutants"] == len(matrix.trials)
        assert d["summary"]["complete"] is True
        assert len(d["matrix"]) == len(matrix.faults)

    def test_reproducible(self):
        a = run_conformance(networks=[k_network([2, 2])], seed=9, sites_per_fault=2)
        b = run_conformance(networks=[k_network([2, 2])], seed=9, sites_per_fault=2)
        assert [t.as_dict() for t in a.trials] == [t.as_dict() for t in b.trials]

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            run_conformance(networks=[k_network([2, 2])], faults=["nope"])


class TestCalibration:
    def test_applicable_excludes_failing_pristine(self):
        """A pristine network that fails a verifier (e.g. `sorting` for a
        non-sorting counting construction) must not have that verifier
        counted against its mutants."""
        km = run_conformance(seed=0, sites_per_fault=1)
        for t in km.trials:
            assert set(t.caught_by) <= set(t.applicable)

    def test_default_networks_pass_counting(self):
        from repro.verify import find_counting_violation

        for net in default_networks():
            assert find_counting_violation(net) is None, net.name


class TestEquivalence:
    def test_dup_layer_is_equivalent(self, rng):
        net = k_network([2, 2, 2])
        assert semantically_equivalent(net, duplicate_layer(net, 0), rng)

    def test_flip_final_not_equivalent(self, rng):
        net = k_network([2, 2, 2])
        bad = flip_balancer(net, net.layers()[-1][0].index)
        assert not semantically_equivalent(net, bad, rng)

    def test_width_mismatch(self, rng):
        assert not semantically_equivalent(k_network([2, 2]), k_network([2, 3]), rng)


class TestVerifierColumns:
    def test_verifier_set(self):
        assert set(VERIFIERS) == {"counting", "sorting", "smoothing", "contract", "structure"}

    def test_structure_detects_depth_change(self, rng):
        net = k_network([2, 2, 2])
        assert VERIFIERS["structure"](duplicate_layer(net, 1), net, rng)
        assert not VERIFIERS["structure"](net, net, rng)

    def test_counting_detects_flipped_repair(self, rng):
        net = k_network([2, 2, 2])
        bad = flip_balancer(net, net.layers()[-1][0].index)
        assert VERIFIERS["counting"](bad, net, np.random.default_rng(0))
