"""Backend conformance: the kill matrix must not depend on the evaluation
engine.  Both backends cover the same inputs in the same order, so a
conformance run on ``bitsliced`` must catch every mutant the ``int64`` run
catches — same cells, same per-trial verdicts, zero escapes on either."""

from __future__ import annotations

import pytest

from repro.baselines import bitonic_network
from repro.faults.harness import run_conformance, verifiers_for_backend
from repro.networks import k_network

_NETWORKS = lambda: [k_network([2, 3]), bitonic_network(8)]  # noqa: E731


@pytest.fixture(scope="module")
def matrices():
    kw = dict(networks=_NETWORKS(), seed=7, sites_per_fault=2)
    return (
        run_conformance(backend="int64", **kw),
        run_conformance(backend="bitsliced", **kw),
    )


class TestBackendMatrix:
    def test_both_complete_zero_escapes(self, matrices):
        for km in matrices:
            assert km.complete(), [t.as_dict() for t in km.escapes()]

    def test_backend_recorded(self, matrices):
        int64, bit = matrices
        assert int64.backend == "int64" and bit.backend == "bitsliced"
        assert int64.as_dict()["backend"] == "int64"
        assert bit.as_dict()["backend"] == "bitsliced"

    def test_matrices_identical_modulo_backend_tag(self, matrices):
        a, b = (km.as_dict() for km in matrices)
        a.pop("backend"), b.pop("backend")
        assert a == b

    def test_per_trial_catches_identical(self, matrices):
        int64, bit = matrices
        assert len(int64.trials) == len(bit.trials)
        for ta, tb in zip(int64.trials, bit.trials):
            assert (ta.fault, ta.caught_by, ta.equivalent) == (
                tb.fault,
                tb.caught_by,
                tb.equivalent,
            )


class TestVerifierColumns:
    def test_auto_is_the_stock_table(self):
        from repro.faults.harness import VERIFIERS

        assert verifiers_for_backend("auto") == VERIFIERS

    def test_pinned_columns_keep_names(self):
        cols = verifiers_for_backend("bitsliced")
        assert set(cols) == {"counting", "sorting", "smoothing", "contract", "structure"}

    def test_pinned_sorting_column_catches_a_flip(self):
        import numpy as np

        from repro.faults.mutator import flip_balancer

        net = k_network([2, 2, 2])
        bad = flip_balancer(net, net.layers()[-1][0].index)
        rng = np.random.default_rng(0)
        for backend in ("int64", "bitsliced"):
            cols = verifiers_for_backend(backend)
            assert cols["sorting"](bad, net, rng), backend
            assert not cols["sorting"](net, net, rng), backend
