"""The mutation operators: every mutant is a valid network with the
advertised single fault, and the semantic overrides agree across all three
simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.mutator import (
    FAULT_CLASSES,
    FaultyNetwork,
    drop_balancer,
    duplicate_layer,
    enumerate_sites,
    flip_balancer,
    mutate,
    sample_mutants,
    stuck_balancer,
    swap_layer_inputs,
    swap_outputs,
    toggle_balancer,
)
from repro.networks import k_network, l_network
from repro.sim.count_sim import propagate_counts, propagate_counts_reference
from repro.sim.sort_sim import evaluate_comparators
from repro.sim.token_sim import run_tokens
from repro.verify.inputs import structured_counts


@pytest.fixture
def net():
    return k_network([2, 2, 2])


class TestSites:
    @pytest.mark.parametrize("fault", FAULT_CLASSES)
    def test_every_class_has_sites(self, net, fault):
        sites = enumerate_sites(net, fault)
        assert sites, fault
        # sites are unique
        assert len(sites) == len(set(sites))

    def test_site_counts_match_structure(self, net):
        assert len(enumerate_sites(net, "drop")) == net.size
        assert len(enumerate_sites(net, "stuck")) == sum(b.width for b in net.balancers)
        assert len(enumerate_sites(net, "dup_layer")) == net.depth
        w = net.width
        assert len(enumerate_sites(net, "swap_outputs")) == w * (w - 1) // 2

    def test_unknown_fault_rejected(self, net):
        with pytest.raises(ValueError, match="unknown fault"):
            enumerate_sites(net, "gamma_ray")
        with pytest.raises(ValueError, match="unknown fault"):
            mutate(net, "gamma_ray", (0,))


class TestStructuralMutants:
    """Structural mutations stay valid SSA and conserve tokens — only the
    ordering/step guarantees may break."""

    @pytest.mark.parametrize("fault", FAULT_CLASSES)
    def test_conservation(self, net, fault, rng):
        for m in sample_mutants(net, fault, rng, max_sites=3):
            x = rng.integers(0, 12, size=net.width)
            assert int(propagate_counts(m.network, x).sum()) == int(x.sum()), m.describe()

    def test_flip_is_reversal(self, net):
        m = flip_balancer(net, 0)
        assert m.balancers[0].outputs == tuple(reversed(net.balancers[0].outputs))
        assert m.balancers[1] == net.balancers[1]

    def test_toggle_width2_equals_flip(self, net):
        i = next(b.index for b in net.balancers if b.width == 2)
        t = toggle_balancer(net, i)
        f = flip_balancer(net, i)
        assert t.balancers[i].outputs == f.balancers[i].outputs

    def test_drop_reduces_size(self, net):
        m = drop_balancer(net, net.size - 1)
        assert m.size == net.size - 1

    def test_swap_outputs_permutes(self, net):
        m = swap_outputs(net, 0, net.width - 1)
        assert m.outputs[0] == net.outputs[net.width - 1]
        assert m.outputs[net.width - 1] == net.outputs[0]
        assert sorted(m.outputs) == sorted(net.outputs)

    def test_swap_wires_valid_everywhere(self):
        """The topological re-sort keeps every same-layer swap a valid
        network (list order is not layer order in general)."""
        for factors in ([2, 2, 2], [2, 3]):
            net = k_network(factors)
            for site in enumerate_sites(net, "swap_wires"):
                m = swap_layer_inputs(net, *site)  # _validate runs in __init__
                assert m.size == net.size

    def test_dup_layer_is_quiescently_equivalent_but_deeper(self, net):
        m = duplicate_layer(net, 0)
        x = structured_counts(net.width)
        assert np.array_equal(propagate_counts(net, x), propagate_counts(m, x))
        assert m.depth == net.depth + 1
        assert m.size == net.size + len(net.layers()[0])

    def test_dup_layer_bad_index(self, net):
        with pytest.raises(ValueError, match="out of range"):
            duplicate_layer(net, net.depth)


class TestStuckOverride:
    """The semantic stuck fault must mean the same thing to the batched
    count propagation, the reference propagation, and the token simulator."""

    def test_fast_matches_reference(self, net):
        m = stuck_balancer(net, net.balancers[-1].index, 1)
        for vec in structured_counts(net.width)[:8]:
            assert np.array_equal(
                propagate_counts(m, vec), propagate_counts_reference(m, vec)
            )

    def test_token_sim_matches_quiescent(self, net):
        m = stuck_balancer(net, net.balancers[-1].index, 0)
        vec = [5, 0, 3, 1, 0, 0, 2, 4]
        for sched in ("fifo", "random", "chaos"):
            res = run_tokens(m, vec, sched, seed=7)
            assert np.array_equal(res.output_counts, propagate_counts(m, vec)), sched

    def test_stuck_changes_behavior(self, net):
        m = stuck_balancer(net, net.balancers[-1].index, 0)
        x = structured_counts(net.width)
        assert not np.array_equal(propagate_counts(net, x), propagate_counts(m, x))

    def test_comparator_semantics_pass_through(self, net):
        """A stuck comparator does not exchange: outputs keep input order."""
        m = stuck_balancer(net, 0, 0)
        batch = np.array([[0, 1, 0, 1, 0, 1, 0, 1]], dtype=np.int8)
        plain = evaluate_comparators(net, batch)
        broken = evaluate_comparators(m, batch)
        assert plain.shape == broken.shape
        assert np.array_equal(np.sort(broken), np.sort(plain))  # multiset preserved

    def test_structure_untouched(self, net):
        m = stuck_balancer(net, 2, 1)
        assert isinstance(m, FaultyNetwork)
        assert m.depth == net.depth and m.size == net.size
        assert m.fault_overrides[2].stuck_port == 1

    def test_bad_port_rejected(self, net):
        with pytest.raises(ValueError, match="out of range"):
            stuck_balancer(net, 0, net.balancers[0].width)


class TestSampling:
    def test_seeded_and_reproducible(self, net):
        a = sample_mutants(net, "drop", np.random.default_rng(5), max_sites=3)
        b = sample_mutants(net, "drop", np.random.default_rng(5), max_sites=3)
        assert [m.site for m in a] == [m.site for m in b]

    def test_final_layer_bias(self, net):
        final = {b.index for b in net.layers()[-1]}
        for seed in range(5):
            ms = sample_mutants(net, "flip", np.random.default_rng(seed), max_sites=2)
            assert any(m.site[0] in final for m in ms), seed

    def test_l_network_also_mutable(self, rng):
        net = l_network([2, 2, 2])
        for fault in FAULT_CLASSES:
            assert sample_mutants(net, fault, rng, max_sites=1), fault
