"""Chaos layer: the exactly-once audit closes under injected faults, and
manufactured violations surface as typed FaultEscape reports — never
silently."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.faults.chaos import (
    ChaosService,
    FaultEscape,
    InjectedFault,
    audit_exactly_once,
    chaos_token_check,
    run_chaos,
)
from repro.faults.mutator import stuck_balancer
from repro.networks import k_network
from repro.serve.service import CountingService


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def net():
    return k_network([2, 2, 2])


class TestAudit:
    def test_clean_books(self):
        assert audit_exactly_once(10, list(range(10)), [], 0) == []

    def test_losses_and_cancels_are_accounted(self):
        # values 3,4 lost to a dropped batch; 7 cancelled (1 token allowance)
        escapes = audit_exactly_once(10, [0, 1, 2, 5, 6, 8, 9], [3, 4], 1)
        assert escapes == []

    def test_duplicate_delivery_detected(self):
        escapes = audit_exactly_once(5, [0, 1, 2, 3, 4, 2], [], 0)
        assert [e.kind for e in escapes] == ["duplicate-delivery"]
        assert 2 in escapes[0].values

    def test_out_of_range_detected(self):
        escapes = audit_exactly_once(5, [0, 1, 2, 3, 7], [], 1)
        assert "out-of-range" in [e.kind for e in escapes]

    def test_lost_value_delivered_detected(self):
        escapes = audit_exactly_once(5, [0, 1, 2, 3, 4], [3], 0)
        assert [e.kind for e in escapes] == ["lost-value-delivered"]

    def test_unaccounted_gap_detected(self):
        escapes = audit_exactly_once(6, [0, 1, 2], [], 1)  # 3 missing, 1 allowed
        assert [e.kind for e in escapes] == ["unaccounted-gap"]

    def test_escape_dict(self):
        e = FaultEscape("unaccounted-gap", "details", (1, 2))
        d = e.as_dict()
        assert d == {"kind": "unaccounted-gap", "detail": "details", "values": [1, 2]}


class TestChaosService:
    def test_drop_before_rejects_cleanly(self, net):
        async def main():
            svc = CountingService(net, max_delay=0.0)
            chaos = ChaosService(svc, drop_before_rate=0.999, seed=0)
            async with chaos:
                with pytest.raises(InjectedFault):
                    await chaos.fetch_and_increment_many(3)
            assert chaos.dropped_before >= 1
            assert chaos.issued == 0  # drop-before never issues

        run(main())

    def test_drop_after_records_lost_values(self, net):
        async def main():
            svc = CountingService(net, max_delay=0.0)
            chaos = ChaosService(svc, drop_after_rate=0.999, seed=0)
            async with chaos:
                with pytest.raises(InjectedFault):
                    await chaos.fetch_and_increment_many(4)
            assert chaos.dropped_after >= 1
            assert chaos.issued == 4  # issued, then lost...
            assert sorted(chaos.lost_values) == [0, 1, 2, 3]  # ...and recorded

        run(main())

    def test_no_injection_is_transparent(self, net):
        async def main():
            svc = CountingService(net, max_delay=0.0)
            chaos = ChaosService(svc, seed=0)
            async with chaos:
                values = await chaos.fetch_and_increment_many(5)
            assert values == [0, 1, 2, 3, 4]
            assert chaos.batches == 1

        run(main())

    def test_bad_rates_rejected(self, net):
        svc = CountingService(net)
        with pytest.raises(ValueError, match="drop_before_rate"):
            ChaosService(svc, drop_before_rate=1.5)


class TestRunChaos:
    def test_exactly_once_survives_default_chaos(self, net):
        report = run_chaos(net_service(net), requests=400, clients=8, seed=3)
        assert report.exactly_once, [e.as_dict() for e in report.escapes]
        assert report.issued >= report.delivered
        assert report.requests >= 400  # dup submissions add requests

    def test_injections_actually_fired(self, net):
        report = run_chaos(net_service(net), requests=400, clients=8, seed=3)
        assert report.injected.get("drop_before", 0) + report.injected.get("drop_after", 0) > 0
        assert report.injected.get("cancel", 0) > 0
        assert report.retries > 0

    def test_quiet_run_delivers_everything(self, net):
        report = run_chaos(
            net_service(net),
            requests=100,
            clients=4,
            seed=1,
            drop_before_rate=0.0,
            drop_after_rate=0.0,
            delay_rate=0.0,
            dup_rate=0.0,
            cancel_rate=0.0,
        )
        assert report.exactly_once
        assert report.delivered == report.issued
        assert report.lost_to_drops == 0 and report.cancelled_requests == 0

    def test_report_dict_shape(self, net):
        d = run_chaos(net_service(net), requests=60, clients=4, seed=0).as_dict()
        assert {"issued", "delivered", "escapes", "exactly_once", "injected"} <= set(d)

    def test_deterministic_issuance(self, net):
        """Same seed, same injections (scheduling may reorder clients, but
        the injected fault counts and the audit outcome are stable)."""
        a = run_chaos(net_service(net), requests=100, clients=1, seed=7)
        b = run_chaos(net_service(net), requests=100, clients=1, seed=7)
        assert a.injected == b.injected
        assert a.exactly_once == b.exactly_once


def net_service(net) -> CountingService:
    return CountingService(net, max_delay=0.0005)


class TestChaosTokenCheck:
    def test_counting_network_passes(self, net):
        assert chaos_token_check(net, seed=0) is None
        assert chaos_token_check(net, tokens=17, seed=3) is None

    def test_stuck_mutant_caught(self, net):
        bad = stuck_balancer(net, net.layers()[-1][0].index, 0)
        escape = chaos_token_check(bad, seed=0)
        assert escape is not None
        assert escape.kind in ("step-violation", "schedule-dependence")

    def test_chaos_scheduler_registered(self):
        from repro.sim.schedulers import SCHEDULERS, get_scheduler

        assert "chaos" in SCHEDULERS
        sched = get_scheduler("chaos")
        rng = np.random.default_rng(0)
        assert sched([4, 5, 6], rng) in (4, 5, 6)
