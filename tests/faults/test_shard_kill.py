"""Process-level chaos: ``kill -9`` a live shard, assert WAL replay heals it.

This is the ISSUE's headline fault scenario end to end — a real
:class:`~repro.cluster.Cluster` under reconnecting client load, a SIGKILL
mid-run, supervisor restart, WAL replay — audited to the cluster's
exactly-once contract (zero duplicates; gaps bounded by the clients'
risked-request budget).  Spawns real processes, so the knobs are kept
small; the CI ``cluster-smoke`` job runs the bigger version.
"""

from __future__ import annotations

import os

from repro.faults.chaos import run_shard_kill_chaos


class TestShardKillChaos:
    def test_kill_mid_load_is_exactly_once(self, tmp_path):
        report = run_shard_kill_chaos(
            shards=2,
            clients=4,
            ops=60,
            kills=1,
            kill_after_s=0.2,
            amount_max=3,
            seed=3,
            wal_dir=str(tmp_path / "wal"),
            flight_dir=str(tmp_path / "flight"),
        )
        assert report.exactly_once, [e.as_dict() for e in report.escapes]
        assert report.injected.get("shard_kill") == 1
        assert report.injected.get("restarts", 0) >= 1
        # Books balance: everything the shards issued was either delivered
        # or is an attributable WAL-committed-but-unacked gap.
        assert report.delivered > 0
        assert report.issued >= report.delivered
        assert report.lost_to_drops <= report.injected.get("risked", 0) * 3
        # No escape → no flight dump was written.
        assert report.flight_dump is None
        assert not os.path.exists(tmp_path / "flight") or not os.listdir(
            tmp_path / "flight"
        )

    def test_report_dict_is_json_shaped(self, tmp_path):
        report = run_shard_kill_chaos(
            shards=2,
            clients=2,
            ops=15,
            kills=0,  # no kill: a pure cluster smoke through the chaos harness
            wal_dir=str(tmp_path / "wal"),
        )
        d = report.as_dict()
        assert d["exactly_once"] is True
        assert d["delivered"] == report.delivered
        assert report.injected.get("shard_kill", 0) == 0
