"""Input fuzzer: corpus round-trips, shrinking minimality, differential
oracle, and end-to-end runs on good and broken networks."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import bitonic_network, bubble_network
from repro.faults.fuzzer import (
    CorpusEntry,
    differential_sort_check,
    fuzz_inputs,
    load_corpus,
    mutate_input,
    save_corpus_entry,
    shrink_vector,
)
from repro.faults.mutator import flip_balancer
from repro.networks import k_network
from repro.sim.count_sim import propagate_counts
from repro.verify.counting import step_mask


@pytest.fixture
def net():
    return k_network([2, 2, 2])


class TestCorpus:
    def test_round_trip(self, tmp_path):
        e = CorpusEntry(width=4, counts=(9, 0, 0, 2), note="regression")
        path = save_corpus_entry(e, directory=tmp_path)
        assert path.exists()
        loaded = load_corpus(tmp_path)
        assert loaded == [e]

    def test_append_and_width_filter(self, tmp_path):
        save_corpus_entry(CorpusEntry(4, (1, 2, 3, 4)), directory=tmp_path, name="a")
        save_corpus_entry(CorpusEntry(4, (4, 3, 2, 1)), directory=tmp_path, name="a")
        save_corpus_entry(CorpusEntry(8, tuple(range(8))), directory=tmp_path, name="b")
        assert len(load_corpus(tmp_path)) == 3
        assert len(load_corpus(tmp_path, width=4)) == 2
        assert len(load_corpus(tmp_path, width=8)) == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_single_object_file(self, tmp_path):
        (tmp_path / "one.json").write_text(
            json.dumps({"width": 3, "counts": [7, 0, 1], "note": "hand-written"})
        )
        [e] = load_corpus(tmp_path)
        assert e.counts == (7, 0, 1) and e.note == "hand-written"

    def test_repo_corpus_loads(self):
        """The checked-in seed corpus parses and matches its widths."""
        entries = load_corpus()
        assert entries, "tests/corpus/ should ship seed entries"
        for e in entries:
            assert len(e.counts) == e.width
            assert all(c >= 0 for c in e.counts)


class TestMutateInput:
    def test_non_negative_and_same_shape(self, rng):
        vec = np.array([5, 0, 3, 1], dtype=np.int64)
        partner = np.array([0, 9, 0, 9], dtype=np.int64)
        for _ in range(200):
            out = mutate_input(vec, rng, partner)
            assert out.shape == vec.shape
            assert np.all(out >= 0)

    def test_deterministic_under_seed(self):
        vec = np.array([5, 0, 3, 1], dtype=np.int64)
        a = [mutate_input(vec, np.random.default_rng(3)).tolist() for _ in range(1)]
        b = [mutate_input(vec, np.random.default_rng(3)).tolist() for _ in range(1)]
        assert a == b


class TestShrinking:
    def test_requires_failing_input(self):
        with pytest.raises(ValueError, match="failing input"):
            shrink_vector([1, 2, 3], lambda v: False)

    def test_shrinks_to_local_minimum(self):
        # Failure predicate: sum >= 10. Minimal witnesses have sum exactly 10.
        def fails(v):
            return int(v.sum()) >= 10

        out = shrink_vector([50, 40, 30], fails)
        assert fails(out)
        assert int(out.sum()) == 10
        for i in range(3):  # no single-coordinate reduction still fails
            for cand in (0, int(out[i]) // 2, int(out[i]) - 1):
                if 0 <= cand < out[i]:
                    c = out.copy()
                    c[i] = cand
                    assert not fails(c)

    def test_shrunk_violation_still_violates(self, net):
        bad = flip_balancer(net, net.layers()[-1][0].index)

        def fails(v):
            return not bool(step_mask(propagate_counts(bad, v[None, :]))[0])

        seed = np.array([50, 0, 0, 0, 0, 0, 0, 0], dtype=np.int64)
        assert fails(seed)
        out = shrink_vector(seed, fails)
        assert fails(out)
        assert int(out.sum()) <= int(seed.sum())


class TestDifferentialOracle:
    def test_agreeing_sorters_are_clean(self, rng):
        a, b = bitonic_network(8), bitonic_network(8)
        batch = rng.integers(0, 50, size=(32, 8))
        assert differential_sort_check(a, b, batch) == 0

    def test_broken_target_detected(self, rng):
        net = bitonic_network(8)
        bad = flip_balancer(net, net.layers()[-1][0].index)
        batch = rng.integers(0, 50, size=(64, 8))
        assert differential_sort_check(bad, net, batch) > 0

    def test_broken_baseline_cannot_mask(self, rng):
        """Rows are flagged when *either* side disagrees with np.sort."""
        net = bitonic_network(8)
        bad = flip_balancer(net, net.layers()[-1][0].index)
        batch = rng.integers(0, 50, size=(64, 8))
        assert differential_sort_check(net, bad, batch) > 0

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="width mismatch"):
            differential_sort_check(bitonic_network(8), bitonic_network(4), np.zeros((1, 8)))


class TestFuzzInputs:
    def test_counting_network_is_clean(self, net, tmp_path):
        rep = fuzz_inputs(net, rounds=40, seed=1, corpus_dir=tmp_path)
        assert rep.clean
        assert rep.trials > 0
        assert rep.violations == []

    def test_broken_network_found_and_shrunk(self, net, tmp_path):
        bad = flip_balancer(net, net.layers()[-1][0].index)
        rep = fuzz_inputs(bad, rounds=40, seed=1, corpus_dir=tmp_path)
        assert not rep.clean
        for v in rep.violations:
            vec = np.array(v.input_counts, dtype=np.int64)
            assert not bool(step_mask(propagate_counts(bad, vec[None, :]))[0])
            assert sum(v.input_counts) <= sum(v.original_input)

    def test_bubble_caught_from_structured(self, tmp_path):
        rep = fuzz_inputs(bubble_network(6), rounds=0, seed=0, corpus_dir=tmp_path)
        assert not rep.clean
        assert any(v.source == "structured" for v in rep.violations)

    def test_corpus_seeds_are_replayed(self, net, tmp_path):
        bad = flip_balancer(net, net.layers()[-1][0].index)
        # Plant a known violating input in the corpus; the fuzzer must
        # replay it even with zero search rounds.
        save_corpus_entry(
            CorpusEntry(8, (50, 0, 0, 0, 0, 0, 0, 0), "planted"), directory=tmp_path
        )
        rep = fuzz_inputs(bad, rounds=0, seed=0, corpus_dir=tmp_path)
        assert rep.corpus_seeds == 1
        assert any(v.source in ("corpus", "structured") for v in rep.violations)

    def test_deterministic(self, net, tmp_path):
        bad = flip_balancer(net, net.layers()[-1][0].index)
        a = fuzz_inputs(bad, rounds=20, seed=5, corpus_dir=tmp_path).as_dict()
        b = fuzz_inputs(bad, rounds=20, seed=5, corpus_dir=tmp_path).as_dict()
        assert a == b

    def test_report_dict_shape(self, net, tmp_path):
        d = fuzz_inputs(net, rounds=5, seed=0, corpus_dir=tmp_path).as_dict()
        assert {"network", "width", "seed", "trials", "violations", "clean"} <= set(d)
