"""Chaos + flight recorder: injected violations must leave a linked dump."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.faults.chaos import ChaosService, run_chaos
from repro.networks import k_network
from repro.serve import CountingService


def make_service(**kwargs) -> CountingService:
    return CountingService(k_network([2, 3]), max_delay=0.0005, **kwargs)


class TestStateCorruption:
    def test_corrupt_state_is_caught_as_exactly_once_violation(self, tmp_path):
        report = run_chaos(
            make_service(),
            requests=150,
            clients=8,
            seed=3,
            drop_before_rate=0.0,
            drop_after_rate=0.0,
            cancel_rate=0.0,
            dup_rate=0.0,
            corrupt_state_after=4,
            flight_dir=tmp_path,
        )
        assert not report.exactly_once
        assert any(e.kind == "exactly-once-violation" for e in report.escapes)
        assert report.injected.get("exactly_once_error", 0) >= 1

    def test_violation_produces_linked_flight_dump(self, tmp_path):
        report = run_chaos(
            make_service(),
            requests=150,
            clients=8,
            seed=3,
            drop_before_rate=0.0,
            drop_after_rate=0.0,
            cancel_rate=0.0,
            dup_rate=0.0,
            corrupt_state_after=4,
            flight_dir=tmp_path,
        )
        assert report.flight_dump is not None
        dump = pathlib.Path(report.flight_dump)
        assert dump.parent == tmp_path
        data = json.loads(dump.read_text())
        assert data["reason"] == "exactly-once-violation"
        spans = data["spans"]
        # The acceptance criterion: spans link request -> batch -> executor.
        by_id = {s["span_id"]: s for s in spans}
        linked_requests = [
            s for s in spans if s["kind"] == "request" and "batch_id" in s
        ]
        assert linked_requests, "no request span linked to a batch"
        batch = by_id[linked_requests[0]["batch_id"]]
        assert batch["kind"] == "batch"
        assert "executor_run" in batch
        executor = by_id[batch["executor_run"]]
        assert executor["kind"] == "executor"
        assert executor["parent_id"] == batch["span_id"]
        # Report JSON carries the dump path for CI to pick up.
        assert report.as_dict()["flight_dump"] == str(dump)

    def test_dump_is_taken_at_most_once_per_service(self, tmp_path):
        svc = make_service(flight_dir=tmp_path)
        run_chaos(
            svc,
            requests=150,
            clients=8,
            seed=3,
            drop_before_rate=0.0,
            drop_after_rate=0.0,
            cancel_rate=0.0,
            dup_rate=0.0,
            corrupt_state_after=4,
            flight_dir=tmp_path,
        )
        dumps = list(tmp_path.glob("FLIGHT_*.json"))
        assert len(dumps) == 1

    def test_no_flight_dir_means_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        report = run_chaos(
            make_service(),
            requests=100,
            clients=4,
            seed=3,
            drop_before_rate=0.0,
            drop_after_rate=0.0,
            cancel_rate=0.0,
            dup_rate=0.0,
            corrupt_state_after=4,
        )
        assert not report.exactly_once
        assert report.flight_dump is None
        assert list(tmp_path.glob("FLIGHT_*.json")) == []

    def test_clean_run_with_flight_dir_leaves_no_dump(self, tmp_path):
        report = run_chaos(
            make_service(),
            requests=100,
            clients=4,
            seed=0,
            flight_dir=tmp_path,
        )
        assert report.exactly_once
        assert report.flight_dump is None
        assert list(tmp_path.glob("FLIGHT_*.json")) == []

    def test_corrupt_state_after_validation(self):
        with pytest.raises(ValueError):
            ChaosService(make_service(), corrupt_state_after=0)
