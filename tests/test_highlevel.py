"""Tests for the high-level convenience API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.highlevel import make_counter, oblivious_sort
from repro.networks import k_network
from repro.sim.linearized import LinearizedThreadedCounter


class TestObliviousSort:
    def test_basic_batch(self, rng):
        batch = rng.integers(-100, 100, size=(20, 24))
        assert np.array_equal(oblivious_sort(batch), np.sort(batch, axis=1))

    def test_single_row(self, rng):
        row = rng.permutation(12)
        assert list(oblivious_sort(row)) == sorted(row)

    def test_descending(self, rng):
        row = rng.permutation(8)
        assert list(oblivious_sort(row, ascending=False)) == sorted(row, reverse=True)

    def test_prime_width_needs_padding_under_budget(self, rng):
        """Width 17 with comparators <= 8: the planner pads; results still
        exact."""
        batch = rng.integers(0, 1000, size=(10, 17))
        out = oblivious_sort(batch, max_comparator=8)
        assert np.array_equal(out, np.sort(batch, axis=1))

    def test_float_padding(self, rng):
        batch = rng.random((10, 13))
        out = oblivious_sort(batch, max_comparator=4)
        assert np.allclose(out, np.sort(batch, axis=1))

    def test_comparator_budget_respected(self):
        # Indirect: planning respects the budget (network internals).
        from repro.analysis import plan_network

        plan = plan_network(17, 8, "K")
        assert plan.max_balancer_width <= 8

    def test_prebuilt_network(self, rng):
        net = k_network([4, 3])
        batch = rng.integers(0, 50, size=(5, 12))
        assert np.array_equal(oblivious_sort(batch, network=net), np.sort(batch, axis=1))

    def test_prebuilt_network_too_narrow(self, rng):
        with pytest.raises(ValueError, match="width"):
            oblivious_sort(rng.integers(0, 9, size=(2, 12)), network=k_network([2, 3]))

    def test_degenerate_widths(self):
        assert oblivious_sort(np.array([[5]])).tolist() == [[5]]
        assert oblivious_sort(np.zeros((3, 0))).shape == (3, 0)

    def test_unsupported_dtype_padding(self):
        vals = np.array([["b", "a", "c"]])
        with pytest.raises(ValueError, match="dtype"):
            oblivious_sort(vals, max_comparator=2)

    def test_min_sentinel_values_survive(self):
        """Rows containing the dtype minimum still sort correctly (the
        sentinels merely tie with them and are cut by position)."""
        lo = np.iinfo(np.int64).min
        batch = np.array([[5, lo, 3]], dtype=np.int64)
        out = oblivious_sort(batch, max_comparator=2)
        assert out.tolist() == [[lo, 3, 5]]


class TestMakeCounter:
    def test_default_counter(self):
        counter = make_counter(8)
        stats = counter.run_threads(4, 10)
        assert sorted(stats.all_values()) == list(range(40))

    def test_budgeted_counter(self):
        counter = make_counter(12, max_balancer=3)
        assert counter.net.max_balancer_width <= 3
        stats = counter.run_threads(2, 10)
        assert sorted(stats.all_values()) == list(range(20))

    def test_linearizable_counter(self):
        counter = make_counter(8, linearizable=True)
        assert isinstance(counter, LinearizedThreadedCounter)
        vals = [counter.fetch_and_increment() for _ in range(10)]
        assert vals == list(range(10))

    def test_k_family_choice(self):
        counter = make_counter(8, max_balancer=8, family="K")
        assert counter.net.width >= 8
