"""Hypothesis properties for the simulators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import k_network
from repro.sim import (
    evaluate_comparators,
    evaluate_comparators_reference,
    fetch_and_increment_values,
    propagate_counts,
    propagate_counts_reference,
    run_tokens,
)

small_factors = st.sampled_from([[2, 2], [2, 3], [3, 2], [2, 2, 2]])


@settings(max_examples=40, deadline=None)
@given(small_factors, st.data())
def test_vectorized_counts_match_reference(factors, data):
    net = k_network(factors)
    x = np.array(
        data.draw(
            st.lists(st.integers(0, 30), min_size=net.width, max_size=net.width)
        ),
        dtype=np.int64,
    )
    assert list(propagate_counts(net, x)) == list(propagate_counts_reference(net, x))


@settings(max_examples=40, deadline=None)
@given(small_factors, st.data())
def test_vectorized_sort_matches_reference(factors, data):
    net = k_network(factors)
    vals = np.array(
        data.draw(
            st.lists(st.integers(-100, 100), min_size=net.width, max_size=net.width)
        )
    )
    assert list(evaluate_comparators(net, vals)) == list(
        evaluate_comparators_reference(net, vals)
    )


@settings(max_examples=25, deadline=None)
@given(
    small_factors,
    st.sampled_from(["fifo", "lifo", "random", "round_robin", "straggler"]),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.data(),
)
def test_token_sim_agrees_with_count_model(factors, scheduler, seed, data):
    """The async token simulator's quiescent counts equal the deterministic
    propagation for every schedule — the schedule-independence theorem."""
    net = k_network(factors)
    x = data.draw(st.lists(st.integers(0, 6), min_size=net.width, max_size=net.width))
    result = run_tokens(net, x, scheduler=scheduler, seed=seed)
    assert list(result.output_counts) == list(propagate_counts(net, np.array(x)))


@settings(max_examples=25, deadline=None)
@given(small_factors, st.integers(min_value=0, max_value=2**31 - 1), st.data())
def test_fetch_and_increment_is_a_bijection(factors, seed, data):
    net = k_network(factors)
    x = data.draw(st.lists(st.integers(0, 5), min_size=net.width, max_size=net.width))
    result = run_tokens(net, x, scheduler="random", seed=seed)
    values = fetch_and_increment_values(result)
    assert sorted(values.values()) == list(range(sum(x)))
    assert len(values) == sum(x)


@settings(max_examples=30, deadline=None)
@given(small_factors, st.data())
def test_comparator_eval_is_a_permutation(factors, data):
    net = k_network(factors)
    vals = np.array(
        data.draw(st.lists(st.integers(-50, 50), min_size=net.width, max_size=net.width))
    )
    out = evaluate_comparators(net, vals)
    assert sorted(out.tolist()) == sorted(vals.tolist())
