"""Hypothesis properties for the constructions: counting, sorting, contracts.

These are the heart of the reproduction's verification: for *arbitrary*
generated inputs, the paper's guarantees must hold on the implemented
networks.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequences import is_step, make_step
from repro.networks import (
    bitonic_converter,
    k_network,
    l_network,
    r_network,
    staircase_merger,
    two_merger,
)
from repro.sim import evaluate_comparators, propagate_counts

# Small factor lists so each hypothesis example stays fast.
factor_lists = st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=3)
counts = st.integers(min_value=0, max_value=40)


@settings(max_examples=40, deadline=None)
@given(factor_lists, st.data())
def test_k_network_counts_any_input(factors, data):
    net = k_network(factors)
    x = np.array(
        data.draw(st.lists(counts, min_size=net.width, max_size=net.width)), dtype=np.int64
    )
    out = propagate_counts(net, x)
    assert is_step(out)
    assert int(out.sum()) == int(x.sum())


@settings(max_examples=20, deadline=None)
@given(factor_lists, st.data())
def test_l_network_counts_any_input(factors, data):
    net = l_network(factors)
    x = np.array(
        data.draw(st.lists(counts, min_size=net.width, max_size=net.width)), dtype=np.int64
    )
    out = propagate_counts(net, x)
    assert is_step(out)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=6),
    st.data(),
)
def test_r_network_counts_any_input(p, q, data):
    net = r_network(p, q)
    x = np.array(
        data.draw(st.lists(counts, min_size=p * q, max_size=p * q)), dtype=np.int64
    )
    out = propagate_counts(net, x)
    assert is_step(out)
    assert net.max_balancer_width <= max(p, q)


@settings(max_examples=40, deadline=None)
@given(factor_lists, st.data())
def test_k_network_sorts_any_permutation(factors, data):
    net = k_network(factors)
    perm = data.draw(st.permutations(list(range(net.width))))
    out = evaluate_comparators(net, np.array(perm))
    assert list(out) == sorted(perm, reverse=True)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),  # p
    st.integers(min_value=0, max_value=3),  # q0
    st.integers(min_value=1, max_value=3),  # q1
    counts,
    counts,
)
def test_two_merger_contract(p, q0, q1, t0, t1):
    net = two_merger(p, q0, q1)
    x = np.concatenate([make_step(p * q0, t0) if q0 else np.array([], dtype=np.int64), make_step(p * q1, t1)])
    out = propagate_counts(net, x.astype(np.int64))
    assert is_step(out)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=15),
)
def test_bitonic_converter_contract(p, q, total, shift):
    net = bitonic_converter(p, q)
    x = np.roll(make_step(p * q, total), shift % (p * q))
    out = propagate_counts(net, x)
    assert is_step(out)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),  # r
    st.integers(min_value=2, max_value=3),  # p
    st.integers(min_value=2, max_value=3),  # q
    st.sampled_from(["basic", "small", "opt_rescan", "opt_bitonic"]),
    st.integers(min_value=0, max_value=60),
    st.data(),
)
def test_staircase_contract(r, p, q, variant, base_total, data):
    net = staircase_merger(r, p, q, variant=variant)
    deltas = sorted(
        data.draw(st.lists(st.integers(0, p), min_size=q, max_size=q)), reverse=True
    )
    x = np.concatenate([make_step(r * p, base_total + d) for d in deltas])
    out = propagate_counts(net, x)
    assert is_step(out)


@settings(max_examples=30, deadline=None)
@given(factor_lists, st.data())
def test_token_conservation(factors, data):
    """No tokens created or destroyed, ever."""
    net = k_network(factors)
    x = np.array(
        data.draw(st.lists(counts, min_size=net.width, max_size=net.width)), dtype=np.int64
    )
    assert int(propagate_counts(net, x).sum()) == int(x.sum())


@settings(max_examples=30, deadline=None)
@given(factor_lists, st.data())
def test_monotonicity_in_totals(factors, data):
    """Feeding one extra token anywhere increases exactly one output by one
    (counting networks are incremental)."""
    net = k_network(factors)
    x = np.array(
        data.draw(st.lists(counts, min_size=net.width, max_size=net.width)), dtype=np.int64
    )
    pos = data.draw(st.integers(min_value=0, max_value=net.width - 1))
    base = propagate_counts(net, x)
    x2 = x.copy()
    x2[pos] += 1
    bumped = propagate_counts(net, x2)
    diff = bumped - base
    assert diff.sum() == 1
    assert set(np.unique(diff)) <= {0, 1}
