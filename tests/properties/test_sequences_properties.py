"""Hypothesis properties for sequence predicates and arrangements."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sequences as seq


step_params = st.tuples(
    st.integers(min_value=1, max_value=32),  # width
    st.integers(min_value=0, max_value=200),  # total
    st.integers(min_value=0, max_value=5),  # base
)


@given(step_params)
def test_make_step_always_step_with_exact_sum(params):
    w, total, base = params
    x = seq.make_step(w, total, base)
    assert seq.is_step(x)
    assert int(x.sum()) == total + base * w


@given(step_params, st.integers(min_value=0, max_value=31))
def test_rotations_of_step_are_bitonic(params, shift):
    w, total, base = params
    x = np.roll(seq.make_step(w, total, base), shift % w)
    assert seq.is_bitonic(x)


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=12))
def test_is_step_equals_pairwise_definition(xs):
    brute = all(
        0 <= xs[i] - xs[j] <= 1 for i in range(len(xs)) for j in range(i + 1, len(xs))
    )
    assert seq.is_step(xs) == brute


@given(st.lists(st.integers(min_value=-10, max_value=10), min_size=1, max_size=20))
def test_smoothness_is_range(xs):
    assert seq.smoothness(xs) == max(xs) - min(xs)
    assert seq.is_smooth(xs, seq.smoothness(xs))
    if seq.smoothness(xs) > 0:
        assert not seq.is_smooth(xs, seq.smoothness(xs) - 1)


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
)
def test_arrangements_are_permutations(r, c):
    for name in seq.ARRANGEMENTS:
        perm = seq.arrangement(name, r, c)
        assert sorted(perm.tolist()) == list(range(r * c))


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)
def test_reverse_arrangements_reverse(r, c):
    assert list(seq.reverse_row_major(r, c)) == list(seq.row_major(r, c)[::-1])
    assert list(seq.reverse_column_major(r, c)) == list(seq.column_major(r, c)[::-1])


@given(step_params, st.integers(min_value=1, max_value=6))
def test_strided_subsequences_of_step_are_step(params, stride):
    w, total, base = params
    x = seq.make_step(w * stride, total, base)
    for i in range(stride):
        assert seq.is_step(seq.strided(x, i, stride))


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=30))
def test_transitions_counts_boundaries(xs):
    expected = sum(1 for a, b in zip(xs, xs[1:]) if a != b)
    assert seq.num_transitions(xs) == expected


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=4),
        min_size=1,
        max_size=5,
    )
)
def test_staircase_slack_brackets_property(xss):
    lo, hi = seq.staircase_slack(xss)
    sums = [sum(x) for x in xss]
    for i in range(len(sums)):
        for j in range(i + 1, len(sums)):
            assert lo <= sums[i] - sums[j] <= hi
    assert seq.is_staircase(xss, hi) == (lo >= 0)
