"""Hypothesis properties for the extension modules (planner, expansion,
composition, high-level API)."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import plan_network
from repro.core import parallel, serial
from repro.highlevel import oblivious_sort
from repro.networks import expand_comparators, k_network
from repro.sim import evaluate_comparators, propagate_counts


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=4, max_value=16),
)
def test_planner_always_meets_budget(width, budget):
    plan = plan_network(width, budget, "K")
    assert plan.width >= width
    assert plan.max_balancer_width <= budget
    net = plan.build()
    assert net.width == plan.width
    assert net.depth == plan.depth


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=2, max_value=5),
)
def test_l_planner_budget(width, budget):
    plan = plan_network(width, budget, "L")
    assert plan.max_balancer_width <= budget


@settings(max_examples=25, deadline=None)
@given(st.sampled_from([[3, 2], [4, 2], [2, 2, 3]]), st.data())
def test_expansion_preserves_sorting_function(factors, data):
    net = k_network(factors)
    exp = expand_comparators(net)
    vals = np.array(
        data.draw(st.lists(st.integers(-30, 30), min_size=net.width, max_size=net.width))
    )
    assert list(evaluate_comparators(net, vals)) == list(evaluate_comparators(exp, vals))


@settings(max_examples=25, deadline=None)
@given(st.sampled_from([[2, 2], [3, 2]]), st.sampled_from([[2, 2], [2, 3]]), st.data())
def test_parallel_composition_is_blockwise(f1, f2, data):
    a, b = k_network(f1), k_network(f2)
    net = parallel(a, b)
    x = np.array(
        data.draw(st.lists(st.integers(0, 20), min_size=net.width, max_size=net.width)),
        dtype=np.int64,
    )
    out = propagate_counts(net, x)
    assert list(out[: a.width]) == list(propagate_counts(a, x[: a.width]))
    assert list(out[a.width :]) == list(propagate_counts(b, x[a.width :]))


@settings(max_examples=25, deadline=None)
@given(st.sampled_from([[2, 2], [2, 2, 2]]), st.data())
def test_serial_with_counting_tail_counts(factors, data):
    """anything ; counting == counting, for arbitrary front networks."""
    from repro.baselines import bubble_network

    tail = k_network(factors)
    front = bubble_network(tail.width)
    net = serial(front, tail)
    x = np.array(
        data.draw(st.lists(st.integers(0, 15), min_size=net.width, max_size=net.width)),
        dtype=np.int64,
    )
    out = propagate_counts(net, x)
    # Step property regardless of the front network:
    assert all(out[i] >= out[i + 1] for i in range(len(out) - 1))
    assert out[0] - out[-1] <= 1
    assert int(out.sum()) == int(x.sum())


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=12),
    st.data(),
)
def test_oblivious_sort_matches_numpy(batch_size, width, data):
    rows = data.draw(
        st.lists(
            st.lists(st.integers(-99, 99), min_size=width, max_size=width),
            min_size=batch_size,
            max_size=batch_size,
        )
    )
    batch = np.array(rows, dtype=np.int64)
    out = oblivious_sort(batch)
    assert np.array_equal(out, np.sort(batch, axis=1))


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=3, max_value=14),
    st.integers(min_value=4, max_value=8),
    st.data(),
)
def test_oblivious_sort_with_budget(width, budget, data):
    rows = data.draw(
        st.lists(st.lists(st.integers(0, 50), min_size=width, max_size=width), min_size=2, max_size=4)
    )
    batch = np.array(rows, dtype=np.int64)
    out = oblivious_sort(batch, max_comparator=budget)
    assert np.array_equal(out, np.sort(batch, axis=1))
