"""Differential properties connecting the two semantics.

Key fact exploited here: on a 0-1 input, a p-balancer's quiescent count
transfer (``ceil((T-j)/p)``) produces exactly the descending sort of its
0-1 inputs — so for ANY network, count propagation and comparator
evaluation agree on 0-1 vectors.  This gives a strong cross-check between
the two independently implemented evaluators, plus random-network fuzzing
of all structural invariants.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Network, NetworkBuilder
from repro.sim import (
    evaluate_comparators,
    evaluate_comparators_reference,
    propagate_counts,
    propagate_counts_reference,
)


# ---------------------------------------------------------------------------
# A hypothesis strategy for arbitrary valid layered networks.
# ---------------------------------------------------------------------------


@st.composite
def random_networks(draw, max_width: int = 10, max_layers: int = 5) -> Network:
    width = draw(st.integers(min_value=2, max_value=max_width))
    n_layers = draw(st.integers(min_value=0, max_value=max_layers))
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for _ in range(n_layers):
        perm = draw(st.permutations(list(range(width))))
        pos = 0
        new_wires = list(wires)
        while pos + 1 < width:
            size = draw(st.integers(min_value=2, max_value=min(4, width - pos)))
            group = [wires[perm[pos + k]] for k in range(size)]
            outs = b.balancer(group)
            for k in range(size):
                new_wires[perm[pos + k]] = outs[k]
            pos += size
            if draw(st.booleans()):
                break  # leave the rest of this layer unbalanced
        wires = new_wires
    return b.finish(wires, name="fuzz")


@settings(max_examples=60, deadline=None)
@given(random_networks(), st.data())
def test_zero_one_counts_equal_comparator_eval(net, data):
    """propagate_counts == evaluate_comparators on 0-1 vectors, for ANY
    network."""
    bits = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=net.width, max_size=net.width)),
        dtype=np.int64,
    )
    assert list(propagate_counts(net, bits)) == list(evaluate_comparators(net, bits))


@settings(max_examples=60, deadline=None)
@given(random_networks(), st.data())
def test_fuzz_vectorized_evaluators_match_references(net, data):
    x = np.array(
        data.draw(st.lists(st.integers(0, 25), min_size=net.width, max_size=net.width)),
        dtype=np.int64,
    )
    assert list(propagate_counts(net, x)) == list(propagate_counts_reference(net, x))
    vals = np.array(
        data.draw(st.lists(st.integers(-9, 9), min_size=net.width, max_size=net.width))
    )
    assert list(evaluate_comparators(net, vals)) == list(
        evaluate_comparators_reference(net, vals)
    )


@settings(max_examples=60, deadline=None)
@given(random_networks())
def test_fuzz_structural_invariants(net):
    assert net.depth == len(net.layers())
    assert sum(len(layer) for layer in net.layers()) == net.size
    # Serialization round trip preserves everything observable.
    clone = Network.from_dict(net.to_dict())
    assert clone == net
    assert clone.depth == net.depth


@settings(max_examples=40, deadline=None)
@given(random_networks(), st.data())
def test_fuzz_token_conservation_and_token_sim(net, data):
    from repro.sim import run_tokens

    x = data.draw(st.lists(st.integers(0, 4), min_size=net.width, max_size=net.width))
    counts = propagate_counts(net, np.array(x, dtype=np.int64))
    assert int(counts.sum()) == sum(x)
    result = run_tokens(net, x, scheduler="random", seed=1)
    assert list(result.output_counts) == list(counts)


@settings(max_examples=40, deadline=None)
@given(random_networks(), st.data())
def test_fuzz_comparator_output_is_permutation(net, data):
    vals = np.array(
        data.draw(
            st.lists(st.integers(-100, 100), min_size=net.width, max_size=net.width)
        )
    )
    out = evaluate_comparators(net, vals)
    assert sorted(out.tolist()) == sorted(vals.tolist())
