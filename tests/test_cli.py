"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestBuild:
    def test_build_k(self, capsys):
        assert main(["build", "K", "2", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "K(2,3,4)" in out
        assert "24" in out

    def test_build_with_diagram(self, capsys):
        assert main(["build", "K", "2", "2", "--diagram"]) == 0
        assert "y0" in capsys.readouterr().out

    def test_build_baseline(self, capsys):
        assert main(["build", "bitonic", "8"]) == 0
        assert "Bitonic[8]" in capsys.readouterr().out

    def test_build_r(self, capsys):
        assert main(["build", "R", "3", "4"]) == 0
        assert "R(3,4)" in capsys.readouterr().out


class TestVerify:
    def test_verify_counting_network(self, capsys):
        assert main(["verify", "K", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "no violation found" in out

    def test_verify_bubble_fails(self, capsys):
        assert main(["verify", "bubble", "4"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out


class TestFamily:
    def test_family_table(self, capsys):
        assert main(["family", "12"]) == 0
        out = capsys.readouterr().out
        assert "3x2x2" in out
        assert "Pareto" in out


class TestCompare:
    def test_compare(self, capsys):
        assert main(["compare", "8"]) == 0
        out = capsys.readouterr().out
        assert "Bitonic[8]" in out


class TestThroughput:
    def test_throughput_table(self, capsys):
        assert main(["throughput", "8", "--procs", "4", "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["build", "Z", "2"])


class TestExport:
    def test_dot(self, capsys):
        assert main(["export", "K", "2", "2"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_json(self, capsys):
        assert main(["export", "K", "2", "3", "--format", "json"]) == 0
        out = capsys.readouterr().out
        import json

        assert json.loads(out)["width"] == 6


class TestSmooth:
    def test_counting_network_reports_one(self, capsys):
        assert main(["smooth", "K", "2", "2", "2"]) == 0
        assert "smoothness=1" in capsys.readouterr().out


class TestLinearize:
    def test_finds_counterexample(self, capsys):
        assert main(["linearize", "K", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "sequential executions linearizable: True" in out
        assert "counterexample" in out


class TestAudit:
    def test_profile_and_path(self, capsys):
        assert main(["audit", "K", "2", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "occupancy" in out


class TestProfile:
    def test_tokens_workload_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        import json

        assert (
            main(
                [
                    "profile", "--widths", "2,3,5", "--construction", "K",
                    "--workload", "tokens", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "K(2,3,5)" in out
        assert "per-layer hot spots" in out
        assert "balancers" in out
        data = json.loads((tmp_path / "BENCH_profile.json").read_text())
        assert data["bench"] == "profile"
        assert data["network"]["width"] == 30
        assert len(data["layers"]) == data["network"]["depth"]
        trace_lines = (tmp_path / "BENCH_profile_trace.jsonl").read_text().splitlines()
        assert trace_lines
        for line in trace_lines:
            json.loads(line)

    def test_contention_workload(self, capsys, tmp_path):
        assert (
            main(
                [
                    "profile", "--widths", "2,3", "--workload", "contention",
                    "--procs", "4", "--ops", "2", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "throughput" in capsys.readouterr().out

    def test_counts_workload(self, capsys, tmp_path):
        assert (
            main(
                [
                    "profile", "--widths", "2,2", "--workload", "counts",
                    "--batch", "8", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "time_ms" in capsys.readouterr().out

    def test_profile_leaves_obs_disabled(self, tmp_path):
        import repro.obs as obs

        main(["profile", "--widths", "2,2", "--out-dir", str(tmp_path)])
        assert not obs.enabled()

    def test_bad_widths(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", "--widths", " ", "--out-dir", str(tmp_path)])


class TestPlan:
    def test_exact(self, capsys):
        assert main(["plan", "64", "16"]) == 0
        out = capsys.readouterr().out
        assert "K(4, 4, 4)" in out

    def test_padded(self, capsys):
        assert main(["plan", "34", "8"]) == 0
        assert "padded from 34" in capsys.readouterr().out
