"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestBuild:
    def test_build_k(self, capsys):
        assert main(["build", "K", "2", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "K(2,3,4)" in out
        assert "24" in out

    def test_build_with_diagram(self, capsys):
        assert main(["build", "K", "2", "2", "--diagram"]) == 0
        assert "y0" in capsys.readouterr().out

    def test_build_baseline(self, capsys):
        assert main(["build", "bitonic", "8"]) == 0
        assert "Bitonic[8]" in capsys.readouterr().out

    def test_build_r(self, capsys):
        assert main(["build", "R", "3", "4"]) == 0
        assert "R(3,4)" in capsys.readouterr().out


class TestVerify:
    def test_verify_counting_network(self, capsys):
        assert main(["verify", "K", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "no violation found" in out

    def test_verify_bubble_fails(self, capsys):
        assert main(["verify", "bubble", "4"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_verify_prints_minimized_witness(self, capsys):
        """A failing verify prints a locally-minimal violating input, not
        just the raw (often huge) search witness."""
        import numpy as np

        from repro.baselines import bubble_network
        from repro.sim import propagate_counts
        from repro.verify import step_mask

        assert main(["verify", "bubble", "6"]) == 1
        out = capsys.readouterr().out
        assert "minimized witness" in out
        line = next(l for l in out.splitlines() if "minimized witness" in l)
        vec = np.array(eval(line.split("input ")[1].split(" -> ")[0]), dtype=np.int64)
        # The minimized witness still violates the step property and is small.
        net = bubble_network(6)
        assert not bool(step_mask(propagate_counts(net, vec[None, :]))[0])
        assert int(vec.sum()) <= 10


class TestFamily:
    def test_family_table(self, capsys):
        assert main(["family", "12"]) == 0
        out = capsys.readouterr().out
        assert "3x2x2" in out
        assert "Pareto" in out


class TestCompare:
    def test_compare(self, capsys):
        assert main(["compare", "8"]) == 0
        out = capsys.readouterr().out
        assert "Bitonic[8]" in out


class TestThroughput:
    def test_throughput_table(self, capsys):
        assert main(["throughput", "8", "--procs", "4", "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["build", "Z", "2"])


class TestExport:
    def test_dot(self, capsys):
        assert main(["export", "K", "2", "2"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_json(self, capsys):
        assert main(["export", "K", "2", "3", "--format", "json"]) == 0
        out = capsys.readouterr().out
        import json

        assert json.loads(out)["width"] == 6


class TestSmooth:
    def test_counting_network_reports_one(self, capsys):
        assert main(["smooth", "K", "2", "2", "2"]) == 0
        assert "smoothness=1" in capsys.readouterr().out


class TestLinearize:
    def test_finds_counterexample(self, capsys):
        assert main(["linearize", "K", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "sequential executions linearizable: True" in out
        assert "counterexample" in out


class TestAudit:
    def test_profile_and_path(self, capsys):
        assert main(["audit", "K", "2", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "occupancy" in out


class TestProfile:
    def test_tokens_workload_writes_artifacts(self, capsys, tmp_path, monkeypatch):
        import json

        assert (
            main(
                [
                    "profile", "--widths", "2,3,5", "--construction", "K",
                    "--workload", "tokens", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "K(2,3,5)" in out
        assert "per-layer hot spots" in out
        assert "balancers" in out
        data = json.loads((tmp_path / "BENCH_profile.json").read_text())
        assert data["bench"] == "profile"
        assert data["network"]["width"] == 30
        assert len(data["layers"]) == data["network"]["depth"]
        trace_lines = (tmp_path / "BENCH_profile_trace.jsonl").read_text().splitlines()
        assert trace_lines
        for line in trace_lines:
            json.loads(line)

    def test_contention_workload(self, capsys, tmp_path):
        assert (
            main(
                [
                    "profile", "--widths", "2,3", "--workload", "contention",
                    "--procs", "4", "--ops", "2", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "throughput" in capsys.readouterr().out

    def test_counts_workload(self, capsys, tmp_path):
        assert (
            main(
                [
                    "profile", "--widths", "2,2", "--workload", "counts",
                    "--batch", "8", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "time_ms" in capsys.readouterr().out

    def test_profile_leaves_obs_disabled(self, tmp_path):
        import repro.obs as obs

        main(["profile", "--widths", "2,2", "--out-dir", str(tmp_path)])
        assert not obs.enabled()

    def test_bad_widths(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", "--widths", " ", "--out-dir", str(tmp_path)])


class TestPlan:
    def test_exact(self, capsys):
        assert main(["plan", "64", "16"]) == 0
        out = capsys.readouterr().out
        assert "K(4, 4, 4)" in out

    def test_padded(self, capsys):
        assert main(["plan", "34", "8"]) == 0
        assert "padded from 34" in capsys.readouterr().out


class TestFactorValidation:
    """Degenerate factors (< 2) must be rejected with a clear message."""

    @pytest.mark.parametrize("argv", [
        ["build", "K", "2", "1", "3"],
        ["build", "K", "0"],
        ["build", "L", "-2", "3"],
        ["build", "bitonic", "1"],
        ["verify", "K", "1", "2"],
        ["verify", "R", "0", "4"],
        ["export", "K", "2", "0"],
        ["smooth", "K", "1"],
        ["audit", "K", "2", "-1"],
    ])
    def test_factors_below_two_exit(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert "factors must be integers >= 2" in str(exc.value)

    def test_profile_widths_below_two_exit(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "--widths", "1,2", "--out-dir", str(tmp_path)])
        assert "factors must be integers >= 2" in str(exc.value)

    def test_non_integer_widths_exit(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "--widths", "2,x", "--out-dir", str(tmp_path)])
        assert "integer" in str(exc.value)

    def test_valid_factors_still_work(self, capsys):
        assert main(["build", "K", "2", "2"]) == 0


class TestLoadgen:
    def test_in_process_writes_bench_serve(self, capsys, tmp_path):
        import json

        assert (
            main(
                [
                    "loadgen", "--widths", "2,3", "--clients", "6", "--ops", "8",
                    "--seed", "1", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "exactly_once = True" in out
        data = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert data["bench"] == "serve"
        assert data["family"] == "K"
        summary = data["summary"]
        assert summary["exactly_once"] is True
        assert summary["tokens"] == 48
        assert summary["throughput"] > 0
        assert summary["latency_p50_s"] is not None
        assert summary["latency_p99_s"] is not None
        assert summary["mean_batch_size"] > 1
        assert data["batch_size_hist"]

    def test_open_loop_mode(self, capsys, tmp_path):
        assert (
            main(
                [
                    "loadgen", "--mode", "open", "--ops", "30", "--rate", "5000",
                    "--clients", "4", "--seed", "2", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "mode = open" in capsys.readouterr().out

    def test_plan_mode_pads_width(self, capsys, tmp_path):
        assert (
            main(
                [
                    "loadgen", "--width", "34", "--max-balancer", "8",
                    "--clients", "4", "--ops", "4", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # 34 = 2*17 has no in-budget K factorization; the plan pads up.
        assert "width=34" not in out
        assert "exactly_once = True" in out

    def test_bad_connect_spec_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["loadgen", "--connect", "nonsense", "--out-dir", str(tmp_path)])


class TestFuzz:
    def test_mutate_writes_complete_kill_matrix(self, capsys, tmp_path):
        from repro.obs import read_bench_json

        assert main(["fuzz", "mutate", "--seed", "42", "--sites", "1",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kill matrix" in out
        assert "complete=True" in out
        data = read_bench_json(tmp_path / "BENCH_fuzz.json")
        assert data["bench"] == "fuzz" and data["mode"] == "mutate"
        assert data["summary"]["complete"] is True
        assert data["summary"]["escaped"] == 0
        # one matrix row per fault class
        faults = {row["fault"] for row in data["matrix"]}
        from repro.faults import FAULT_CLASSES

        assert faults == set(FAULT_CLASSES)

    def test_inputs_clean_on_counting_network(self, capsys, tmp_path):
        from repro.obs import read_bench_json

        assert main(["fuzz", "inputs", "K", "2", "2", "--rounds", "10",
                     "--corpus", str(tmp_path / "empty"),
                     "--out-dir", str(tmp_path)]) == 0
        data = read_bench_json(tmp_path / "BENCH_fuzz.json")
        assert data["mode"] == "inputs" and data["clean"] is True

    def test_inputs_differential_non_power_of_two_width(self, capsys, tmp_path):
        """--differential must work at any width: the bitonic oracle only
        exists for powers of two, so width 6 uses the general Batcher."""
        from repro.obs import read_bench_json

        assert main(["fuzz", "inputs", "K", "2", "3", "--rounds", "10",
                     "--differential",
                     "--corpus", str(tmp_path / "empty"),
                     "--out-dir", str(tmp_path)]) == 0
        data = read_bench_json(tmp_path / "BENCH_fuzz.json")
        assert data["clean"] is True and data["differential_mismatches"] == 0

    def test_inputs_fails_on_bubble_with_shrunk_witness(self, capsys, tmp_path):
        from repro.obs import read_bench_json

        assert main(["fuzz", "inputs", "bubble", "6", "--rounds", "5",
                     "--corpus", str(tmp_path / "empty"),
                     "--out-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "shrunk from" in out
        data = read_bench_json(tmp_path / "BENCH_fuzz.json")
        assert data["clean"] is False and data["violations"]

    def test_chaos_exactly_once(self, capsys, tmp_path):
        from repro.obs import read_bench_json

        assert main(["fuzz", "chaos", "--widths", "2,2", "--requests", "200",
                     "--clients", "4", "--seed", "3",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "exactly-once: True" in out
        data = read_bench_json(tmp_path / "BENCH_fuzz.json")
        assert data["mode"] == "chaos"
        assert data["exactly_once"] is True and data["escapes"] == []
        assert data["token_check"] is None
        assert data["issued"] >= 200

    def test_fuzz_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["fuzz"])


class TestServeLoadgenTCP:
    def test_serve_then_loadgen_over_tcp(self, capsys, tmp_path):
        """End-to-end: a real server process driven via --connect."""
        import json
        import os
        import socket
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--widths", "2,3", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "serving" in line, line
            port = int(line.split(" on ")[1].split()[0].rsplit(":", 1)[1])
            deadline = time.time() + 10
            while time.time() < deadline:
                try:
                    socket.create_connection(("127.0.0.1", port), 0.2).close()
                    break
                except OSError:
                    time.sleep(0.05)
            assert (
                main(
                    [
                        "loadgen", "--connect", f"127.0.0.1:{port}",
                        "--clients", "4", "--ops", "6", "--out-dir", str(tmp_path),
                    ]
                )
                == 0
            )
            data = json.loads((tmp_path / "BENCH_serve.json").read_text())
            assert data["summary"]["exactly_once"] is True
            assert data["summary"]["tokens"] == 24
        finally:
            proc.terminate()
            proc.wait(timeout=10)
