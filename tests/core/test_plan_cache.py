"""The persistent build/plan cache: hit/miss accounting, code-version
invalidation, corruption recovery, and the maintenance surface behind
``repro cache stats|clear``.

Every test uses an explicit ``tmp_path`` root — nothing here may touch the
repository's own ``.repro_cache``."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.core.cache as cache_mod
from repro.core.cache import PlanCache, cached_network, cached_plan, code_version_hash
from repro.core.plan import PlanExecutor, lower_network
from repro.networks import k_network
from repro.sim import propagate_counts_reference

FACTORS = [2, 3]


def _build():
    return k_network(FACTORS)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = PlanCache(tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return _build()

        p1 = cached_plan("K", FACTORS, builder, cache=cache)
        p2 = cached_plan("K", FACTORS, builder, cache=cache)
        assert len(calls) == 1  # second call never built
        x = np.random.default_rng(0).integers(0, 99, size=(4, 6)).astype(np.int64)
        assert np.array_equal(PlanExecutor(p1).run(x), PlanExecutor(p2).run(x))
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["corrupt"] == 0
        assert s["stores"] == 2  # one network + one plan artifact
        assert s["entries"] == 2 and s["bytes"] > 0

    def test_cached_network_round_trips_structure(self, tmp_path):
        cache = PlanCache(tmp_path)
        original = cached_network("K", FACTORS, _build, cache=cache)
        restored = cached_network(
            "K", FACTORS, lambda: pytest.fail("builder must not run"), cache=cache
        )
        assert restored.to_dict() == original.to_dict()
        x = np.random.default_rng(1).integers(0, 99, size=6).astype(np.int64)
        assert np.array_equal(
            propagate_counts_reference(restored, x),
            propagate_counts_reference(original, x),
        )

    def test_hit_does_not_materialize_network(self, tmp_path):
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        # A plan hit reads one npz; the network artifact stays untouched.
        plan = cache.get_plan("K", FACTORS)
        assert plan is not None and plan.width == 6

    def test_counters_persist_across_instances(self, tmp_path):
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        reopened = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=reopened)
        s = PlanCache(tmp_path).stats()
        assert s["misses"] == 1 and s["hits"] == 1 and s["stores"] == 2


class TestInvalidation:
    def test_code_version_change_invalidates(self, tmp_path, monkeypatch):
        cache = PlanCache(tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return _build()

        cached_plan("K", FACTORS, builder, cache=cache)
        # Simulate an edit to a construction source: the memoized hash flips,
        # keys no longer match, so the old entry is orphaned and rebuilt.
        monkeypatch.setattr(cache_mod, "_code_hash", "deadbeefdeadbeef")
        cached_plan("K", FACTORS, builder, cache=cache)
        assert len(calls) == 2
        assert cache.stats()["misses"] == 2

    def test_variant_and_family_separate_keys(self):
        k1 = PlanCache.entry_key("plan", "K", [2, 3])
        k2 = PlanCache.entry_key("plan", "L", [2, 3])
        k3 = PlanCache.entry_key("plan", "K", [2, 3], variant="alt")
        k4 = PlanCache.entry_key("net", "K", [2, 3])
        assert len({k1, k2, k3, k4}) == 4
        assert code_version_hash() in k1


class TestCorruptionRecovery:
    def test_truncated_npz_is_dropped_and_rebuilt(self, tmp_path):
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        for npz in tmp_path.glob("plan-*.npz"):
            npz.write_bytes(b"this is not an npz file")
        plan = cached_plan("K", FACTORS, _build, cache=cache)
        assert plan.width == 6  # rebuilt, not crashed
        s = cache.stats()
        assert s["corrupt"] >= 1 and s["stores"] >= 3

    def test_mangled_manifest_recovers(self, tmp_path):
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        cache.manifest_path.write_text("{not json")
        fresh = PlanCache(tmp_path)  # re-reads the broken manifest
        plan = cached_plan("K", FACTORS, _build, cache=fresh)
        assert plan.width == 6
        assert fresh.stats()["corrupt"] >= 1

    def test_wrong_shape_arrays_treated_as_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        key = PlanCache.entry_key("plan", "K", FACTORS)
        np.savez(tmp_path / f"{key}.npz", scalars=np.zeros(4, dtype=np.int64))
        assert cache.get_plan("K", FACTORS) is None
        assert cache.stats()["corrupt"] >= 1


class TestMaintenance:
    def test_clear_removes_everything(self, tmp_path):
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        assert cache.stats()["entries"] == 2
        removed = cache.clear()
        assert removed >= 3  # two npz files + manifest
        assert cache.stats()["entries"] == 0
        # And the cache still works after a wipe.
        assert cached_plan("K", FACTORS, _build, cache=cache).width == 6

    def test_env_var_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        cache = PlanCache()
        assert cache.root == tmp_path / "envroot"

    def test_stats_keys_are_cli_stable(self, tmp_path):
        # `repro cache stats` prints exactly these keys; keep them stable.
        s = PlanCache(tmp_path).stats()
        assert set(s) == {
            "root", "entries", "bytes", "variants", "backends", "semantics",
            "hits", "misses", "stores", "corrupt",
        }


class TestVariantKeys:
    """Regression: a searched-variant plan must never collide with the
    stock plan of the same (family, factors) — distinct keys, distinct
    artifacts, and a per-variant breakdown in ``stats()``."""

    def test_stock_and_searched_do_not_collide(self, tmp_path):
        from repro.networks import k_network as k

        cache = PlanCache(tmp_path)
        stock = cached_plan("K", [2, 2, 2, 2], lambda: k([2, 2, 2, 2]), cache=cache)
        searched = cached_plan(
            "K",
            [2, 2, 2, 2],
            lambda: k([2, 2, 2, 2], variant="searched"),
            cache=cache,
            variant="searched",
        )
        assert searched.depth < stock.depth  # the searched network, not a hit
        # Both survive side by side and each key retrieves its own plan.
        assert cache.get_plan("K", [2, 2, 2, 2]).depth == stock.depth
        assert cache.get_plan("K", [2, 2, 2, 2], variant="searched").depth == searched.depth
        k1 = PlanCache.entry_key("plan", "K", [2, 2, 2, 2])
        k2 = PlanCache.entry_key("plan", "K", [2, 2, 2, 2], variant="searched")
        assert k1 != k2

    def test_stats_variant_breakdown(self, tmp_path):
        from repro.networks import k_network as k

        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        cached_plan(
            "K", FACTORS, lambda: k(FACTORS, variant="searched"),
            cache=cache, variant="searched",
        )
        s = cache.stats()
        # net + plan artifact per variant.
        assert s["variants"] == {"default": 2, "searched": 2}


class TestCliCacheCommand:
    def test_stats_and_clear(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = PlanCache(tmp_path)
        cached_plan("K", FACTORS, _build, cache=cache)
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries = 2" in out and "stores = 2" in out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert PlanCache(tmp_path).stats()["entries"] == 0
