"""Tests for network composition combinators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import identity_network, parallel, repeat, serial, single_balancer_network
from repro.networks import k_network, merger_network
from repro.sim import propagate_counts
from repro.verify import find_counting_violation


class TestSerial:
    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width"):
            serial(single_balancer_network(2), single_balancer_network(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            serial()

    def test_depth_adds(self):
        a = k_network([2, 2, 2])
        s = serial(a, a)
        assert s.depth == 2 * a.depth
        assert s.size == 2 * a.size

    def test_counting_idempotent(self, rng):
        """counting ; counting == counting (a step input stays itself)."""
        net = k_network([2, 2])
        twice = serial(net, net)
        x = rng.integers(0, 20, size=4)
        assert list(propagate_counts(twice, x)) == list(propagate_counts(net, x))

    def test_anything_then_counting_counts(self):
        """Appending a counting network fixes any front network."""
        from repro.baselines import bubble_network

        bad = bubble_network(4)
        assert find_counting_violation(bad) is not None
        fixed = serial(bad, k_network([2, 2]))
        assert find_counting_violation(fixed) is None

    def test_identity_is_neutral(self, rng):
        net = k_network([3, 2])
        s = serial(identity_network(6), net, identity_network(6))
        x = rng.integers(0, 9, size=6)
        assert list(propagate_counts(s, x)) == list(propagate_counts(net, x))

    def test_custom_name(self):
        s = serial(identity_network(2), name="zz")
        assert s.name == "zz"


class TestParallel:
    def test_widths_add(self):
        p = parallel(single_balancer_network(2), single_balancer_network(3))
        assert p.width == 5
        assert p.depth == 1

    def test_blocks_independent(self, rng):
        a, b = k_network([2, 2]), k_network([3, 2])
        p = parallel(a, b)
        x = rng.integers(0, 15, size=10)
        out = propagate_counts(p, x)
        assert list(out[:4]) == list(propagate_counts(a, x[:4]))
        assert list(out[4:]) == list(propagate_counts(b, x[4:]))

    def test_parallel_then_merger_is_generic_construction(self, rng):
        """Figure 7 rebuilt by hand: C copies in parallel, then M."""
        copies = parallel(k_network([2, 2]), k_network([2, 2]))
        m = merger_network([2, 2, 2])
        net = serial(copies, m)
        assert find_counting_violation(net) is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel()


class TestRepeat:
    def test_repeat_is_serial_power(self):
        net = single_balancer_network(2)
        r = repeat(net, 3)
        assert r.depth == 3
        assert r.name == "balancer(2)^3"

    def test_periodic_blocks_via_repeat(self):
        """k repeats of one periodic block == the full periodic network,
        semantically."""
        from repro.baselines import periodic_network

        one = periodic_network(8, blocks=1)
        full = repeat(one, 3)
        assert find_counting_violation(full) is None

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            repeat(identity_network(2), 0)
