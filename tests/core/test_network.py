"""Unit tests for the SSA network IR."""

from __future__ import annotations

import pytest

from repro.core import Balancer, Network, NetworkBuilder, identity_network, single_balancer_network


class TestBalancer:
    def test_width(self):
        b = Balancer(0, (0, 1, 2), (3, 4, 5))
        assert b.width == 3

    def test_fanin_fanout_mismatch(self):
        with pytest.raises(ValueError):
            Balancer(0, (0, 1), (2,))

    def test_duplicate_inputs(self):
        with pytest.raises(ValueError):
            Balancer(0, (0, 0), (1, 2))


class TestBuilder:
    def test_inputs_are_dense(self):
        b = NetworkBuilder(4)
        assert b.inputs == (0, 1, 2, 3)

    def test_balancer_allocates_fresh_wires(self):
        b = NetworkBuilder(3)
        outs = b.balancer([0, 1, 2])
        assert outs == [3, 4, 5]

    def test_consumed_wire_rejected(self):
        b = NetworkBuilder(2)
        b.balancer([0, 1])
        with pytest.raises(ValueError, match="consumed"):
            b.balancer([0, 1])

    def test_undefined_wire_rejected(self):
        b = NetworkBuilder(2)
        with pytest.raises(ValueError, match="not defined"):
            b.balancer([0, 99])

    def test_width_one_balancer_rejected(self):
        b = NetworkBuilder(2)
        with pytest.raises(ValueError, match="width"):
            b.balancer([0])

    def test_maybe_balancer_passthrough(self):
        b = NetworkBuilder(2)
        assert b.maybe_balancer([0]) == [0]
        assert b.maybe_balancer([]) == []
        assert b.num_balancers == 0

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError):
            NetworkBuilder(0)

    def test_finish_output_order(self):
        b = NetworkBuilder(2)
        outs = b.balancer([0, 1])
        net = b.finish(outs[::-1], name="flipped")
        assert net.outputs == (3, 2)


class TestNetworkValidation:
    def test_outputs_must_be_terminal(self):
        b = NetworkBuilder(2)
        b.balancer([0, 1])
        with pytest.raises(ValueError, match="outputs"):
            b.finish([0, 1])  # inputs were consumed

    def test_missing_output_detected(self):
        b = NetworkBuilder(2)
        outs = b.balancer([0, 1])
        with pytest.raises(ValueError):
            b.finish([outs[0], outs[0]])

    def test_io_count_mismatch(self):
        b = NetworkBuilder(2)
        outs = b.balancer([0, 1])
        with pytest.raises(ValueError):
            Network(inputs=(0, 1), outputs=tuple(outs[:1]), balancers=[], num_wires=4)


class TestNetworkProperties:
    def test_identity(self):
        net = identity_network(5)
        assert net.width == 5
        assert net.depth == 0
        assert net.size == 0
        assert net.max_balancer_width == 0
        assert net.layers() == []

    def test_single_balancer(self):
        net = single_balancer_network(4)
        assert net.depth == 1
        assert net.size == 1
        assert net.max_balancer_width == 4

    def test_depth_is_longest_path(self):
        # Chain of 2-balancers on wires 0,1 then 1',2 then 2'',3 ...
        b = NetworkBuilder(4)
        w = list(b.inputs)
        cur = w[0]
        for i in range(1, 4):
            top, bottom = b.balancer([cur, w[i]])
            cur = bottom
            w[i] = top
        net = b.finish([w[1], w[2], w[3], cur])
        assert net.depth == 3

    def test_parallel_balancers_share_layer(self):
        b = NetworkBuilder(4)
        o1 = b.balancer([0, 1])
        o2 = b.balancer([2, 3])
        net = b.finish(o1 + o2)
        assert net.depth == 1
        assert len(net.layers()) == 1
        assert len(net.layers()[0]) == 2

    def test_layer_partition_covers_all_balancers(self):
        from repro.networks import k_network

        net = k_network([2, 2, 2])
        assert sum(len(layer) for layer in net.layers()) == net.size

    def test_balancer_width_histogram(self):
        b = NetworkBuilder(5)
        o1 = b.balancer([0, 1])
        o2 = b.balancer([2, 3, 4])
        net = b.finish(o1 + o2)
        assert net.balancer_width_histogram() == {2: 1, 3: 1}

    def test_repr_contains_stats(self):
        net = single_balancer_network(3, name="demo")
        assert "demo" in repr(net)
        assert "width=3" in repr(net)


class TestSerialization:
    def test_round_trip(self):
        from repro.networks import k_network

        net = k_network([2, 3])
        clone = Network.from_dict(net.to_dict())
        assert clone == net
        assert clone.depth == net.depth
        assert clone.name == net.name

    def test_equality_and_hash(self):
        a = single_balancer_network(3)
        b = single_balancer_network(3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != identity_network(3)

    def test_renamed_preserves_structure(self):
        net = single_balancer_network(3)
        other = net.renamed("zzz")
        assert other.name == "zzz"
        assert other == net


class TestSubnetwork:
    def test_inline_preserves_semantics(self):
        import numpy as np

        from repro.networks import k_network
        from repro.sim import propagate_counts

        inner = k_network([2, 2])
        b = NetworkBuilder(4)
        outs = b.subnetwork(inner, list(b.inputs))
        net = b.finish(outs)
        x = np.array([5, 0, 2, 1])
        assert list(propagate_counts(net, x)) == list(propagate_counts(inner, x))

    def test_inline_width_mismatch(self):
        inner = single_balancer_network(3)
        b = NetworkBuilder(4)
        with pytest.raises(ValueError):
            b.subnetwork(inner, list(b.inputs))

    def test_inline_twice_in_parallel(self):
        inner = single_balancer_network(2)
        b = NetworkBuilder(4)
        o1 = b.subnetwork(inner, [0, 1])
        o2 = b.subnetwork(inner, [2, 3])
        net = b.finish(o1 + o2)
        assert net.size == 2
        assert net.depth == 1
