"""Differential conformance of the three plan-executor semantics.

This PR deleted the legacy per-layer walkers from ``sim/sort_sim`` and
``sim/count_sim`` and lowered all three network views — quiescent counts,
descending comparator sort, batched token state — onto the one
:class:`~repro.core.plan.ExecutionPlan` substrate.  Their behaviour is
pinned here instead: the walkers live on as *inline oracles* over the
compiled per-layer groups, and hypothesis drives arbitrary irregular
networks (mixed widths, partial layers, zero-layer degenerates) plus the
paper's K/L/R families and the ``searched`` variant through both, asserting
byte-identical outputs.  Fault-override sweeps, the compare-exchange
kernel, backend composition, the sort-verifier kill matrix, and the
steady-state allocation guarantee are covered alongside, so a regression in
any semantics kernel fails here before it can reach a bench or a verifier.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Network, NetworkBuilder
from repro.core.compiled import compile_network
from repro.core.plan import plan_executor
from repro.core.semantics import _MAX_CE_WIDTH, _ce_pairs, get_semantics
from repro.faults.harness import run_conformance, verifiers_for_backend
from repro.faults.mutator import stuck_balancer
from repro.networks import k_network, l_network, r_network
from repro.sim import (
    evaluate_comparators,
    propagate_counts,
    propagate_counts_reference,
    quiescent_counts,
)
from repro.sim.token_sim import TokenSimulator


# ---------------------------------------------------------------------------
# Inline legacy oracles: the deleted per-layer walkers, verbatim semantics.
# ---------------------------------------------------------------------------


def legacy_count_walker(net: Network, x: np.ndarray) -> np.ndarray:
    """Pre-substrate quiescent-count walker: one gather / floor-divide /
    scatter per width group per layer over the compiled net."""
    comp = compile_network(net)
    x = np.atleast_2d(np.asarray(x, dtype=np.int64))
    state = np.zeros((comp.num_wires, x.shape[0]), dtype=np.int64)
    state[comp.input_idx] = x.T
    for layer in comp.layers:
        for group in layer:
            totals = state[group.in_idx].sum(axis=1)  # (k, B)
            q, r = np.divmod(totals, group.width)
            j = np.arange(group.width)[None, :, None]
            state[group.out_idx] = q[:, None, :] + (j < r[:, None, :])
    return state[comp.output_idx].T


def legacy_sort_walker(net: Network, values: np.ndarray) -> np.ndarray:
    """Pre-substrate comparator walker: ``np.sort`` per width group,
    descending along the balancer axis."""
    comp = compile_network(net)
    values = np.atleast_2d(np.asarray(values))
    state = np.zeros((comp.num_wires, values.shape[0]), dtype=values.dtype)
    state[comp.input_idx] = values.T
    for layer in comp.layers:
        for group in layer:
            state[group.out_idx] = np.sort(state[group.in_idx], axis=1)[:, ::-1]
    return state[comp.output_idx].T


def reference_with_overrides(net: Network, values: np.ndarray) -> np.ndarray:
    """Per-balancer comparator oracle honoring ``fault_overrides``: a stuck
    balancer does not compare — values pass through unsorted."""
    overrides = getattr(net, "fault_overrides", None) or {}
    state: dict[int, object] = dict(zip(net.inputs, values))
    for b in net.balancers:
        ins = [state[w] for w in b.inputs]
        outs = ins if b.index in overrides else sorted(ins, reverse=True)
        state.update(zip(b.outputs, outs))
    return np.array([state[w] for w in net.outputs], dtype=np.asarray(values).dtype)


# ---------------------------------------------------------------------------
# Hypothesis strategy: arbitrary irregular layered networks (mixed balancer
# widths, partially-balanced layers, zero-layer degenerates).
# ---------------------------------------------------------------------------


@st.composite
def random_networks(draw, max_width: int = 10, max_layers: int = 5) -> Network:
    width = draw(st.integers(min_value=2, max_value=max_width))
    n_layers = draw(st.integers(min_value=0, max_value=max_layers))
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for _ in range(n_layers):
        perm = draw(st.permutations(list(range(width))))
        pos = 0
        new_wires = list(wires)
        while pos + 1 < width:
            size = draw(st.integers(min_value=2, max_value=min(4, width - pos)))
            group = [wires[perm[pos + k]] for k in range(size)]
            outs = b.balancer(group)
            for k in range(size):
                new_wires[perm[pos + k]] = outs[k]
            pos += size
            if draw(st.booleans()):
                break  # leave the rest of this layer unbalanced
        wires = new_wires
    return b.finish(wires, name="fuzz")


FAMILY_NETS = [
    pytest.param(lambda: k_network([2, 2, 2]), id="K(2,2,2)"),
    pytest.param(lambda: k_network([3, 2]), id="K(3,2)"),
    pytest.param(lambda: k_network([2, 3], variant="searched"), id="K(2,3)[searched]"),
    pytest.param(lambda: l_network([2, 2, 2]), id="L(2,2,2)"),
    pytest.param(lambda: r_network(3, 4), id="R(3,4)"),
]


# ---------------------------------------------------------------------------
# The compare-exchange kernel itself
# ---------------------------------------------------------------------------


class TestCEKernel:
    def test_ce_pairs_sort_by_zero_one_principle(self):
        """Exhaustive 0-1 proof of the Batcher pair generator, past the
        kernel's width ceiling so the fallback boundary is covered too."""
        for n in range(2, _MAX_CE_WIDTH + 3):
            pairs = _ce_pairs(n)
            for m in range(2**n):
                v = [(m >> i) & 1 for i in range(n)]
                for i, j in pairs:
                    if v[i] < v[j]:
                        v[i], v[j] = v[j], v[i]
                assert v == sorted(v, reverse=True), (n, m)

    def test_ce_pair_counts_are_optimal_for_small_widths(self):
        # Known-optimal comparator counts for n <= 8 (Knuth §5.3.4).
        assert [len(_ce_pairs(n)) for n in range(2, 9)] == [1, 3, 5, 9, 12, 16, 19]

    @pytest.mark.parametrize("p", range(3, _MAX_CE_WIDTH + 3))
    @pytest.mark.parametrize("dtype", [np.int64, np.int8, np.uint16, np.float64])
    def test_single_balancer_matches_descending_sort(self, p, dtype):
        """One p-balancer, every dtype class: the CE path (p <= ceiling) and
        the np.sort fallback (wider) must agree with a descending sort."""
        b = NetworkBuilder(p)
        net = b.finish(list(b.balancer(list(b.inputs))), name=f"b{p}")
        rng = np.random.default_rng(p)
        x = rng.integers(0, 100, size=(64, p)).astype(dtype)
        out = evaluate_comparators(net, x)
        want = np.sort(x, axis=1)[:, ::-1]
        assert out.dtype == x.dtype
        assert out.tobytes() == np.ascontiguousarray(want).tobytes()


# ---------------------------------------------------------------------------
# Plan path == legacy walkers, byte-identical
# ---------------------------------------------------------------------------


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(random_networks(), st.data())
    def test_irregular_networks_all_semantics(self, net, data):
        x = np.array(
            data.draw(
                st.lists(st.integers(0, 30), min_size=net.width, max_size=net.width)
            ),
            dtype=np.int64,
        )
        assert propagate_counts(net, x).tobytes() == legacy_count_walker(net, x)[0].tobytes()
        assert quiescent_counts(net, x).tobytes() == legacy_count_walker(net, x)[0].tobytes()
        vals = np.array(
            data.draw(
                st.lists(st.integers(-50, 50), min_size=net.width, max_size=net.width)
            )
        )
        assert evaluate_comparators(net, vals).tobytes() == legacy_sort_walker(net, vals)[0].tobytes()

    @pytest.mark.parametrize("build", FAMILY_NETS)
    def test_families_batch_byte_identity(self, build):
        net = build()
        rng = np.random.default_rng(0)
        x = rng.integers(0, 64, size=(32, net.width))
        assert propagate_counts(net, x).tobytes() == legacy_count_walker(net, x).tobytes()
        assert quiescent_counts(net, x).tobytes() == legacy_count_walker(net, x).tobytes()
        vals = rng.integers(-1000, 1000, size=(32, net.width))
        assert evaluate_comparators(net, vals).tobytes() == legacy_sort_walker(net, vals).tobytes()

    @pytest.mark.parametrize("build", FAMILY_NETS)
    def test_token_semantics_matches_token_simulator(self, build):
        """The batched quiescent path must land exactly where the
        step-granular scheduler simulation lands."""
        net = build()
        counts = np.zeros(net.width, dtype=np.int64)
        counts[: max(net.width // 2, 1)] = 3
        sim = TokenSimulator(net, seed=0)
        sim.inject(counts)
        want = sim.run("random").output_counts
        assert list(quiescent_counts(net, counts)) == list(want)

    @settings(max_examples=25, deadline=None)
    @given(random_networks(max_width=6, max_layers=3), st.data())
    def test_fault_overrides_take_the_override_sweep(self, net, data):
        """Stuck mutants route through ``Semantics.apply_overridden``; pin
        the sort sweep against a per-balancer oracle and the count sweep
        against conservation + the stuck-port invariant."""
        if net.size == 0:
            return
        idx = data.draw(st.integers(0, net.size - 1))
        port = data.draw(st.integers(0, net.balancers[idx].width - 1))
        faulty = stuck_balancer(net, idx, port)
        vals = np.array(
            data.draw(
                st.lists(st.integers(-20, 20), min_size=net.width, max_size=net.width)
            )
        )
        assert list(evaluate_comparators(faulty, vals)) == list(
            reference_with_overrides(faulty, vals)
        )
        x = np.array(
            data.draw(
                st.lists(st.integers(0, 9), min_size=net.width, max_size=net.width)
            ),
            dtype=np.int64,
        )
        out = propagate_counts(faulty, x)
        assert int(out.sum()) == int(x.sum())  # overrides still conserve
        assert out.tobytes() == quiescent_counts(faulty, x).tobytes()

    def test_reference_oracles_still_agree(self):
        """Belt and braces: the per-balancer references shipped in sim/*
        agree with the inline walkers on a family net."""
        net = k_network([2, 3])
        rng = np.random.default_rng(5)
        for _ in range(5):
            x = rng.integers(0, 40, size=net.width)
            assert list(propagate_counts_reference(net, x)) == list(
                legacy_count_walker(net, x)[0]
            )


# ---------------------------------------------------------------------------
# Backend composition
# ---------------------------------------------------------------------------


class TestBackends:
    def test_bitsliced_sort_matches_int64_on_zero_one(self):
        net = k_network([2, 2, 2])
        rng = np.random.default_rng(2)
        zo = (rng.random((128, net.width)) < rng.random((128, 1))).astype(np.int64)
        lanes = plan_executor(net, backend="int64", semantics="sort").run(zo)
        packed = plan_executor(net, backend="bitsliced", semantics="sort").run(zo)
        assert lanes.tobytes() == packed.tobytes()
        assert lanes.tobytes() == legacy_sort_walker(net, zo).tobytes()

    def test_bitsliced_token_is_rejected(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError, match="bitsliced"):
            plan_executor(net, backend="bitsliced", semantics="token")

    def test_semantics_share_one_scratch_pool_per_backend(self):
        net = k_network([2, 2])
        exc = plan_executor(net, semantics="count")
        exs = plan_executor(net, semantics="sort")
        ext = plan_executor(net, semantics="token")
        assert exc.pool is exs.pool is ext.pool
        assert exc is not exs


# ---------------------------------------------------------------------------
# The sort-semantics verifier still kills mutants
# ---------------------------------------------------------------------------


class TestKillMatrix:
    def test_sort_verifier_alone_leaves_no_escapes(self):
        """The 0-1 sorting verifier, pinned to the int64 plan path, must
        kill every live mutant of the comparator-visible fault classes."""
        sorting = {"sorting": verifiers_for_backend("int64")["sorting"]}
        matrix = run_conformance(
            networks=[k_network([2, 2])],
            faults=("stuck", "drop", "flip", "swap_outputs"),
            verifiers=sorting,
            seed=0,
            sites_per_fault=3,
            backend="int64",
        )
        assert matrix.trials, "no mutants injected"
        assert matrix.complete(), [t.as_dict() for t in matrix.escapes()]
        killed = sum(matrix.cell(f, "sorting")[0] for f in matrix.faults)
        assert killed > 0


# ---------------------------------------------------------------------------
# Steady-state allocation guarantee (mirrors the serve buffer-reuse test)
# ---------------------------------------------------------------------------


class TestSteadyStateAllocation:
    def test_single_vector_sort_path_reuses_buffers(self):
        """Repeated single-vector ``evaluate_comparators`` calls must hit
        the memoized plan executor: after one warmup, zero new scratch
        allocations and one pool reuse per call."""
        net = k_network([2, 2, 2])
        vec = np.arange(net.width)[::-1].copy()
        evaluate_comparators(net, vec)  # warm: lowering + scratch alloc
        ex = plan_executor(net, semantics="sort")
        allocs_after_warmup = ex.buffer_allocs
        reuses_before = ex.buffer_reuses
        for shift in range(5):
            evaluate_comparators(net, np.roll(vec, shift))
        assert ex.buffer_allocs == allocs_after_warmup, "steady state allocated"
        assert ex.buffer_reuses == reuses_before + 5
