"""Unit tests for sequence predicates and arrangements (paper §3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sequences as seq


class TestIsStep:
    def test_empty_and_singleton_are_step(self):
        assert seq.is_step([])
        assert seq.is_step([7])

    def test_constant_is_step(self):
        assert seq.is_step([3, 3, 3, 3])

    def test_single_drop_is_step(self):
        assert seq.is_step([4, 4, 3, 3, 3])

    def test_increasing_is_not_step(self):
        assert not seq.is_step([1, 2])

    def test_two_level_drop_is_not_step(self):
        assert not seq.is_step([5, 4, 3])

    def test_non_monotone_is_not_step(self):
        assert not seq.is_step([2, 1, 2])

    def test_paper_definition_pairwise(self):
        # 0 <= x_i - x_j <= 1 for all i < j, checked against brute force.
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = rng.integers(0, 4, size=6)
            brute = all(
                0 <= int(x[i]) - int(x[j]) <= 1 for i in range(6) for j in range(i + 1, 6)
            )
            assert seq.is_step(x) == brute

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            seq.is_step(np.zeros((2, 2)))


class TestStepPoint:
    def test_all_equal_gives_zero(self):
        assert seq.step_point([2, 2, 2]) == 0

    def test_drop_position(self):
        assert seq.step_point([3, 3, 2, 2]) == 2

    def test_drop_at_first(self):
        assert seq.step_point([1, 0, 0]) == 1

    def test_requires_step_sequence(self):
        with pytest.raises(ValueError):
            seq.step_point([1, 2, 3])

    def test_singleton(self):
        assert seq.step_point([5]) == 0


class TestSmooth:
    def test_smoothness_value(self):
        assert seq.smoothness([3, 1, 2]) == 2
        assert seq.smoothness([]) == 0
        assert seq.smoothness([4]) == 0

    def test_is_smooth(self):
        assert seq.is_smooth([3, 1, 2], 2)
        assert not seq.is_smooth([3, 1, 2], 1)

    def test_step_implies_1_smooth(self):
        for total in range(12):
            assert seq.is_smooth(seq.make_step(5, total), 1)


class TestBitonic:
    def test_step_is_bitonic(self):
        assert seq.is_bitonic([2, 2, 1, 1])

    def test_rotated_step_is_bitonic(self):
        assert seq.is_bitonic([1, 2, 2, 1])
        assert seq.is_bitonic([1, 1, 2, 2])

    def test_three_transitions_not_bitonic(self):
        assert not seq.is_bitonic([1, 0, 1, 0])

    def test_two_smooth_not_bitonic(self):
        assert not seq.is_bitonic([2, 1, 0])

    def test_all_rotations_of_step_are_bitonic(self):
        base = seq.make_step(7, 4)
        for s in range(7):
            assert seq.is_bitonic(np.roll(base, s))

    def test_num_transitions(self):
        assert seq.num_transitions([1, 1, 0, 0, 1]) == 2
        assert seq.num_transitions([1]) == 0
        assert seq.num_transitions([]) == 0


class TestStaircase:
    def test_equal_sums_satisfy_any_k(self):
        xs = [[1, 1], [2, 0], [0, 2]]
        assert seq.is_staircase(xs, 0)

    def test_decreasing_sums_within_k(self):
        xs = [[3, 1], [2, 1], [1, 1]]  # sums 4, 3, 2
        assert seq.is_staircase(xs, 2)
        assert not seq.is_staircase(xs, 1)

    def test_increasing_sums_fail(self):
        xs = [[0, 0], [1, 1]]  # sums 0 < 2: violates sum(X_i) >= sum(X_j)
        assert not seq.is_staircase(xs, 5)

    def test_slack_values(self):
        lo, hi = seq.staircase_slack([[2], [1], [3]])
        assert lo == -2 and hi == 1


class TestMakeStep:
    def test_total_preserved(self):
        for w in (1, 2, 5, 8):
            for t in range(0, 3 * w):
                x = seq.make_step(w, t)
                assert int(x.sum()) == t
                assert seq.is_step(x)

    def test_base_offset(self):
        x = seq.make_step(4, 2, base=3)
        assert list(x) == [4, 4, 3, 3]

    def test_errors(self):
        with pytest.raises(ValueError):
            seq.make_step(0, 1)
        with pytest.raises(ValueError):
            seq.make_step(3, -1)

    def test_random_step_is_step(self, rng):
        for _ in range(50):
            assert seq.is_step(seq.random_step(6, rng))

    def test_random_bitonic_is_bitonic(self, rng):
        for _ in range(50):
            assert seq.is_bitonic(seq.random_bitonic(6, rng))


class TestArrangements:
    @pytest.mark.parametrize("r,c", [(2, 3), (3, 2), (1, 4), (4, 1), (3, 3)])
    def test_all_are_permutations(self, r, c):
        for name in seq.ARRANGEMENTS:
            perm = seq.arrangement(name, r, c)
            assert sorted(perm) == list(range(r * c))

    def test_row_major_identity(self):
        assert list(seq.row_major(2, 3)) == [0, 1, 2, 3, 4, 5]

    def test_reverse_row_major_is_reversal(self):
        assert list(seq.reverse_row_major(2, 3)) == [5, 4, 3, 2, 1, 0]

    def test_column_major_definition(self):
        # x_i at row i % r, col i // r: cell (row, col) holds x_{col*r + row}.
        perm = seq.column_major(2, 3)
        # cell (0,0)=x0 (1,0)=x1 (0,1)=x2 (1,1)=x3 (0,2)=x4 (1,2)=x5
        assert list(perm) == [0, 2, 4, 1, 3, 5]

    def test_reverse_column_major_is_reversed_column_major(self):
        r, c = 3, 4
        cm = seq.column_major(r, c)
        rcm = seq.reverse_column_major(r, c)
        assert list(rcm) == list(cm[::-1])

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            seq.arrangement("diagonal", 2, 2)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            seq.row_major(0, 3)


class TestStrided:
    def test_paper_subsequence(self):
        x = list(range(12))
        assert seq.strided(x, 0, 3) == [0, 3, 6, 9]
        assert seq.strided(x, 2, 3) == [2, 5, 8, 11]

    def test_strided_partitions(self):
        x = list(range(12))
        union = sorted(sum((seq.strided(x, i, 4) for i in range(4)), []))
        assert union == x

    def test_strided_of_step_is_step(self):
        x = seq.make_step(12, 7)
        for i in range(3):
            assert seq.is_step(seq.strided(x, i, 3))

    def test_errors(self):
        with pytest.raises(ValueError):
            seq.strided([1, 2], 0, 0)
        with pytest.raises(ValueError):
            seq.strided([1, 2], 2, 2)


class TestSplitBlocks:
    def test_even_split(self):
        assert seq.split_blocks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_raises(self):
        with pytest.raises(ValueError):
            seq.split_blocks([1, 2, 3], 2)

    def test_bad_block(self):
        with pytest.raises(ValueError):
            seq.split_blocks([1], 0)
