"""File round-trips and golden structural snapshots.

The golden numbers pin down the exact built structure of key
constructions; any change to the construction algorithms (intended or
not) will trip these, forcing a conscious review of the diff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Network
from repro.networks import k_network, l_network, r_network
from repro.sim import propagate_counts


class TestFileRoundTrip:
    def test_save_load(self, tmp_path, rng):
        net = l_network([3, 2])
        path = tmp_path / "net.json"
        net.save(path)
        clone = Network.load(path)
        assert clone == net
        x = rng.integers(0, 12, size=net.width)
        assert list(propagate_counts(clone, x)) == list(propagate_counts(net, x))

    def test_loaded_network_validates(self, tmp_path):
        net = k_network([2, 3])
        path = tmp_path / "net.json"
        net.save(path)
        assert Network.load(path).name == "K(2,3)"


GOLDEN = {
    # name -> (width, depth, size, max_balancer, total_fanin)
    "K(2,2,2)": (8, 5, 12, 4, 40),
    "K(2,3,4)": (24, 5, 23, 12, 120),
    "K(2,2,2,2)": (16, 12, 60, 4, 192),
    "L(2,2)": (4, 3, 6, 2, 12),
    "L(2,2,2)": (8, 12, 48, 2, 96),
    "R(3,3)": (9, 7, 20, 3, 49),
    "R(4,4)": (16, 12, 60, 4, 192),
    "R(6,6)": (36, 16, 112, 6, 396),
}


class TestGoldenStructures:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_structure_snapshot(self, name):
        fam = name[0]
        args = [int(x) for x in name[2:-1].split(",")]
        net = {"K": lambda: k_network(args), "L": lambda: l_network(args), "R": lambda: r_network(*args)}[fam]()
        total_fanin = sum(b.width for b in net.balancers)
        got = (net.width, net.depth, net.size, net.max_balancer_width, total_fanin)
        assert got == GOLDEN[name], f"{name}: structure changed to {got}"

    def test_golden_outputs(self):
        """Pin exact output vectors for a few canonical inputs."""
        net = k_network([2, 2, 2])
        assert list(propagate_counts(net, np.array([11, 0, 0, 0, 0, 0, 0, 0]))) == [
            2, 2, 2, 1, 1, 1, 1, 1,
        ]
        assert list(propagate_counts(net, np.arange(8))) == [4, 4, 4, 4, 3, 3, 3, 3]
