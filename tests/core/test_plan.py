"""The flat execution plan must be an exact drop-in for the reference
evaluator: byte-identical outputs across families, degenerate shapes,
single vs batch calls, fault overrides, obs on and off, and process-pool
sharding — plus the structural guarantees (scratch-pool reuse, plan
serialization round-trip, corrupted-plan rejection) the cache and the
serving layer lean on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.core.network import NetworkBuilder, identity_network, single_balancer_network
from repro.core.plan import ExecutionPlan, PlanExecutor, lower_network, plan_executor
from repro.faults.mutator import FaultyNetwork, StuckOverride
from repro.networks import k_network, l_network, r_network
from repro.sim import propagate_counts, propagate_counts_reference


def _reference_batch(net, x: np.ndarray) -> np.ndarray:
    return np.stack([propagate_counts_reference(net, row) for row in x])


def _random_batch(net, batch: int, seed: int, high: int = 1000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, size=(batch, net.width)).astype(np.int64)


# ---------------------------------------------------------------------------
# Equivalence with the per-balancer reference, across families.
# ---------------------------------------------------------------------------


_FACTOR_LISTS = st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=4)


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(factors=_FACTOR_LISTS, seed=st.integers(0, 2**32 - 1))
    def test_k_family(self, factors, seed):
        net = k_network(factors)
        x = _random_batch(net, 3, seed)
        assert np.array_equal(plan_executor(net).run(x), _reference_batch(net, x))

    @settings(max_examples=15, deadline=None)
    @given(factors=_FACTOR_LISTS, seed=st.integers(0, 2**32 - 1))
    def test_l_family(self, factors, seed):
        net = l_network(factors)
        x = _random_batch(net, 3, seed)
        assert np.array_equal(plan_executor(net).run(x), _reference_batch(net, x))

    @settings(max_examples=10, deadline=None)
    @given(
        p=st.integers(min_value=2, max_value=4),
        q=st.integers(min_value=2, max_value=4),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_r_family(self, p, q, seed):
        net = r_network(p, q)
        x = _random_batch(net, 3, seed)
        assert np.array_equal(plan_executor(net).run(x), _reference_batch(net, x))

    def test_single_vector_matches_batch(self):
        net = k_network([2, 3, 2])
        x = _random_batch(net, 1, 7)
        via_batch = propagate_counts(net, x)[0]
        via_single = propagate_counts(net, x[0])
        assert via_single.shape == (net.width,)
        assert np.array_equal(via_single, via_batch)

    def test_degenerate_identity_network(self):
        net = identity_network(5)
        x = _random_batch(net, 4, 0)
        assert np.array_equal(plan_executor(net).run(x), x)

    def test_degenerate_single_balancer(self):
        net = single_balancer_network(7)
        x = _random_batch(net, 4, 1)
        assert np.array_equal(plan_executor(net).run(x), _reference_batch(net, x))

    def test_width_one_network(self):
        net = identity_network(1)
        x = np.array([[3], [0], [9]], dtype=np.int64)
        assert np.array_equal(plan_executor(net).run(x), x)

    def test_irregular_mixed_width_layers(self):
        # Balancers of widths 2, 3 and 4 sharing layers: exercises several
        # segments per layer and the general (non width-2) kernel.
        b = NetworkBuilder(9)
        w = list(b.inputs)
        y = b.balancer(w[0:2]) + b.balancer(w[2:5]) + b.balancer(w[5:9])
        z = b.balancer(y[0:4]) + b.balancer(y[4:6]) + b.balancer(y[6:9])
        net = b.finish(z, name="mixed")
        x = _random_batch(net, 5, 3)
        assert np.array_equal(plan_executor(net).run(x), _reference_batch(net, x))

    def test_obs_on_and_off_byte_identical(self):
        net = k_network([2, 2, 3])
        x = _random_batch(net, 6, 4)
        obs.disable()
        off = propagate_counts(net, x)
        with obs.capture() as (reg, _):
            on = propagate_counts(net, x)
            assert reg.get("sim.counts.batches").value == 1
            assert reg.get("sim.counts.layer_seconds") is not None
        assert off.tobytes() == on.tobytes()

    def test_faulty_network_stays_on_override_path(self):
        base = k_network([2, 2, 3])
        # Stick a final-layer balancer: its outputs are network outputs, so
        # the fault must be visible (an internal balancer whose outputs all
        # feed one downstream balancer would be masked — totals-only flow).
        net = FaultyNetwork(
            base.inputs,
            base.outputs,
            base.balancers,
            base.num_wires,
            name=base.name,
            fault_overrides={base.size - 1: StuckOverride(0)},
        )
        x = _random_batch(net, 5, 5, high=50)
        got = propagate_counts(net, x)
        assert np.array_equal(got, _reference_batch(net, x))
        # The override must actually change the output vs the pristine net.
        assert not np.array_equal(got, propagate_counts(base, x))

    def test_workers_match_serial(self):
        net = k_network([2, 2, 2, 2])
        x = _random_batch(net, 32, 6)
        serial = propagate_counts(net, x)
        sharded = propagate_counts(net, x, workers=2)
        assert np.array_equal(serial, sharded)
        plan_executor(net).close_pool()

    def test_small_batch_falls_back_to_serial(self):
        net = k_network([2, 2])
        ex = plan_executor(net)
        x = _random_batch(net, 2, 8)
        assert np.array_equal(ex.run_parallel(x, workers=4), ex.run(x))
        assert ex._workers_pool is None  # fallback never built a pool


# ---------------------------------------------------------------------------
# Executor mechanics: scratch pooling, layer timing, validation.
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_scratch_pool_reuses_buffers(self):
        ex = PlanExecutor(lower_network(k_network([2, 3])))
        x = _random_batch(k_network([2, 3]), 8, 0)
        ex.run(x)
        assert ex.buffer_allocs == 1 and ex.buffer_reuses == 0
        for _ in range(5):
            ex.run(x)
        assert ex.buffer_allocs == 1 and ex.buffer_reuses == 5

    def test_scratch_pool_evicts_lru(self):
        net = k_network([2, 3])
        ex = PlanExecutor(lower_network(net), max_pooled=2)
        for batch in (1, 2, 3):  # 3 evicts 1 (LRU)
            ex.run(_random_batch(net, batch, batch))
        assert sorted(b for b, _ in ex.pool._pool) == [2, 3]
        ex.run(_random_batch(net, 1, 9))  # re-allocates batch 1
        assert ex.buffer_allocs == 4

    def test_layer_times_accumulate(self):
        net = k_network([2, 2, 2])
        ex = plan_executor(net)
        plan = ex.plan
        times = np.zeros(plan.depth, dtype=np.float64)
        out_timed = ex.run(_random_batch(net, 4, 1), layer_times=times)
        assert np.all(times >= 0.0) and times.sum() > 0.0
        assert np.array_equal(out_timed, ex.run(_random_batch(net, 4, 1)))

    def test_rejects_wrong_width(self):
        ex = plan_executor(k_network([2, 2]))
        with pytest.raises(ValueError, match="expected input shape"):
            ex.run(np.zeros((3, 5), dtype=np.int64))

    def test_executor_memoized_per_network(self):
        net = k_network([2, 2])
        assert plan_executor(net) is plan_executor(net)
        assert lower_network(net) is lower_network(net)


# ---------------------------------------------------------------------------
# Plan serialization: round-trip and corruption rejection.
# ---------------------------------------------------------------------------


class TestPlanArrays:
    def test_round_trip(self):
        net = l_network([2, 3, 2])
        plan = lower_network(net)
        clone = ExecutionPlan.from_arrays(plan.to_arrays(), name=plan.name)
        x = _random_batch(net, 4, 2)
        assert np.array_equal(PlanExecutor(clone).run(x), PlanExecutor(plan).run(x))
        assert clone.depth == plan.depth and clone.size == plan.size

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda a: a.pop("in_flat"),
            lambda a: a.update(scalars=a["scalars"][:2]),
            lambda a: a.update(in_flat=a["in_flat"] + 10**6),  # out-of-range ids
            lambda a: a.update(seg_width=a["seg_width"][:-1]),
        ],
    )
    def test_rejects_corrupted_arrays(self, mangle):
        plan = lower_network(k_network([2, 3]))
        arrays = {k: v.copy() for k, v in plan.to_arrays().items()}
        mangle(arrays)
        with pytest.raises((ValueError, KeyError)):
            ExecutionPlan.from_arrays(arrays)
