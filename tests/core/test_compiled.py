"""Unit tests for the layer compiler."""

from __future__ import annotations

import numpy as np

from repro.core import NetworkBuilder, compile_network
from repro.networks import k_network


class TestCompile:
    def test_memoized(self):
        net = k_network([2, 2, 2])
        assert compile_network(net) is compile_network(net)

    def test_layer_count_matches_depth(self):
        net = k_network([2, 3, 2])
        comp = compile_network(net)
        assert comp.depth == net.depth
        assert comp.width == net.width

    def test_groups_partition_balancers(self):
        net = k_network([2, 2, 3])
        comp = compile_network(net)
        total = sum(g.count for layer in comp.layers for g in layer)
        assert total == net.size

    def test_width_groups_sorted_and_grouped(self):
        b = NetworkBuilder(7)
        o1 = b.balancer([0, 1])
        o2 = b.balancer([2, 3])
        o3 = b.balancer([4, 5, 6])
        net = b.finish(o1 + o2 + o3)
        comp = compile_network(net)
        assert len(comp.layers) == 1
        widths = [g.width for g in comp.layers[0]]
        assert widths == [2, 3]
        assert comp.layers[0][0].in_idx.shape == (2, 2)
        assert comp.layers[0][1].in_idx.shape == (1, 3)

    def test_index_arrays_reference_valid_wires(self):
        net = k_network([3, 2, 2])
        comp = compile_network(net)
        for layer in comp.layers:
            for g in layer:
                assert g.in_idx.max() < comp.num_wires
                assert g.out_idx.max() < comp.num_wires
                assert g.in_idx.min() >= 0

    def test_identity_network_compiles_empty(self):
        from repro.core import identity_network

        comp = compile_network(identity_network(3))
        assert comp.layers == ()
        assert list(comp.input_idx) == [0, 1, 2]
