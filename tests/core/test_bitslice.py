"""The bit-sliced 0-1 backend must be an exact drop-in for the int64
executor on every 0-1 batch: byte-identical outputs across families,
degenerate widths and lane counts, structural and semantic mutants — and a
typed refusal (never silent masking) on anything a single bit cannot hold."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitplan import (
    LANES,
    BitPlan,
    NotZeroOneError,
    evaluate_zero_one_packed,
    pack_zero_one,
    unpack_zero_one,
)
from repro.core.network import NetworkBuilder, single_balancer_network
from repro.core.plan import BACKENDS, PlanExecutor, lower_network, plan_executor
from repro.faults.mutator import flip_balancer, stuck_balancer, swap_outputs
from repro.networks import k_network, l_network, r_network
from repro.sim import evaluate_comparators


def _bits(net_width: int, batch: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(batch, net_width)).astype(np.int64)


def _wide_network(width: int) -> NetworkBuilder:
    """A width-``width`` layered network mixing 2- and 3-balancers, so
    multi-word packing (width > 64 wires, several segment widths) is
    exercised without a construction family that large."""
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for shift in (0, 1):
        new = list(wires)
        pos = shift
        while pos + 1 < width:
            size = 3 if pos + 2 < width and pos % 2 == 0 else 2
            outs = b.balancer([wires[pos + i] for i in range(size)])
            for i in range(size):
                new[pos + i] = outs[i]
            pos += size
        wires = new
    return b.finish(wires, name=f"wide({width})")


# ---------------------------------------------------------------------------
# The refusal contract comes first: a packed bit cannot hold 2, 64 or -1,
# and masking would certify the wrong network.
# ---------------------------------------------------------------------------


class TestNotZeroOne:
    @pytest.mark.parametrize("bad", [2, -1, 64, 3])
    def test_pack_rejects_out_of_range(self, bad):
        x = np.zeros((4, 3), dtype=np.int64)
        x[2, 1] = bad
        with pytest.raises(NotZeroOneError) as exc:
            pack_zero_one(x)
        # The message names the value, its position, and the escape hatch.
        assert str(bad) in str(exc.value)
        assert "(2, 1)" in str(exc.value)
        assert "int64" in str(exc.value)

    def test_pack_rejects_fractional_floats(self):
        with pytest.raises(NotZeroOneError):
            pack_zero_one(np.array([[0.0, 0.5]]))

    def test_pack_accepts_float_zeros_and_ones(self):
        packed, batch = pack_zero_one(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert batch == 2
        assert np.array_equal(
            unpack_zero_one(packed, batch), [[0, 1], [1, 0]]
        )

    def test_value_64_would_silently_alias_without_the_check(self):
        """64 = 0b1000000 has a zero low bit: `x & 1` would turn it into
        a 0 and verify a different input.  The typed error is the fix."""
        x = np.ones((2, 2), dtype=np.int64)
        x[0, 0] = 64
        with pytest.raises(NotZeroOneError, match="64"):
            pack_zero_one(x)

    def test_bitsliced_executor_refuses_counting_batches(self):
        net = k_network([2, 2])
        ex = PlanExecutor(lower_network(net), backend="bitsliced")
        counts = np.full((3, net.width), 7, dtype=np.int64)
        with pytest.raises(NotZeroOneError):
            ex.run(counts)
        # The int64 backend takes the same batch without complaint.
        PlanExecutor(lower_network(net)).run(counts)

    def test_error_is_a_value_error(self):
        # Callers catching ValueError on bad input keep working.
        assert issubclass(NotZeroOneError, ValueError)


# ---------------------------------------------------------------------------
# Packing round-trip, including the ragged final word.
# ---------------------------------------------------------------------------


class TestPackRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=70),
        batch=st.integers(min_value=1, max_value=200),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_round_trip(self, width, batch, seed):
        x = _bits(width, batch, seed)
        packed, b = pack_zero_one(x)
        assert b == batch
        assert packed.shape == (width, -(-batch // LANES))
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_zero_one(packed, batch), x)

    @pytest.mark.parametrize("batch", [1, 63, 64, 65, 128, 129])
    def test_lane_boundaries(self, batch):
        x = _bits(5, batch, seed=batch)
        packed, b = pack_zero_one(x)
        assert packed.shape[1] == -(-batch // LANES)
        assert np.array_equal(unpack_zero_one(packed, b), x)

    def test_layout_is_wire_major_lane_minor(self):
        # Row n lives in bit n%64 of word n//64 on every wire.
        x = np.zeros((66, 2), dtype=np.int64)
        x[0, 0] = 1   # word 0, bit 0, wire 0
        x[63, 1] = 1  # word 0, bit 63, wire 1
        x[65, 0] = 1  # word 1, bit 1, wire 0
        packed, _ = pack_zero_one(x)
        assert packed[0, 0] == np.uint64(1)
        assert packed[1, 0] == np.uint64(1) << np.uint64(63)
        assert packed[0, 1] == np.uint64(2)

    def test_padding_lanes_are_zero(self):
        packed, _ = pack_zero_one(np.ones((3, 2), dtype=np.int64))
        assert packed[0, 0] == np.uint64(0b111)

    def test_unpack_rejects_overflowing_batch(self):
        packed, _ = pack_zero_one(np.ones((3, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="does not fit"):
            unpack_zero_one(packed, LANES + 1)


# ---------------------------------------------------------------------------
# Differential equivalence with the int64 executor.
# ---------------------------------------------------------------------------


_FACTOR_LISTS = st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=4)


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(factors=_FACTOR_LISTS, batch=st.integers(1, 130), seed=st.integers(0, 2**32 - 1))
    def test_k_family(self, factors, batch, seed):
        net = k_network(factors)
        x = _bits(net.width, batch, seed)
        a = plan_executor(net, backend="int64").run(x)
        b = plan_executor(net, backend="bitsliced").run(x)
        assert a.dtype == b.dtype == np.int64
        assert a.tobytes() == b.tobytes()

    @settings(max_examples=15, deadline=None)
    @given(factors=_FACTOR_LISTS, batch=st.integers(1, 130), seed=st.integers(0, 2**32 - 1))
    def test_l_family(self, factors, batch, seed):
        net = l_network(factors)
        x = _bits(net.width, batch, seed)
        assert (
            plan_executor(net, backend="bitsliced").run(x).tobytes()
            == plan_executor(net, backend="int64").run(x).tobytes()
        )

    @settings(max_examples=10, deadline=None)
    @given(
        p=st.integers(min_value=2, max_value=4),
        q=st.integers(min_value=2, max_value=4),
        batch=st.integers(1, 130),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_r_family(self, p, q, batch, seed):
        net = r_network(p, q)
        x = _bits(net.width, batch, seed)
        assert (
            plan_executor(net, backend="bitsliced").run(x).tobytes()
            == plan_executor(net, backend="int64").run(x).tobytes()
        )

    def test_searched_variant(self):
        net = k_network([2, 2, 2, 2], variant="searched")
        x = _bits(net.width, 200, seed=7)
        assert (
            plan_executor(net, backend="bitsliced").run(x).tobytes()
            == plan_executor(net, backend="int64").run(x).tobytes()
        )

    def test_width_one_identity(self):
        net = NetworkBuilder(1)
        net = net.finish(list(net.inputs), name="id1")
        x = _bits(1, 5, seed=0)
        assert (
            plan_executor(net, backend="bitsliced").run(x).tobytes()
            == plan_executor(net, backend="int64").run(x).tobytes()
        )

    def test_width_65_multiword_state(self):
        net = _wide_network(65)
        x = _bits(65, 130, seed=3)
        assert (
            plan_executor(net, backend="bitsliced").run(x).tobytes()
            == plan_executor(net, backend="int64").run(x).tobytes()
        )

    def test_single_wide_balancer(self):
        # One p=7 balancer: the transposition kernel vs the counting formula.
        net = single_balancer_network(7)
        x = _bits(7, 128, seed=11)
        assert (
            plan_executor(net, backend="bitsliced").run(x).tobytes()
            == plan_executor(net, backend="int64").run(x).tobytes()
        )

    def test_structural_mutants_agree_between_backends(self):
        # A broken network must be *identically* broken on both backends —
        # otherwise the fuzz tiers would disagree about what they killed.
        base = k_network([2, 2, 2])
        for mutant in (
            flip_balancer(base, base.layers()[-1][0].index),
            swap_outputs(base, 0, base.width - 1),
        ):
            x = _bits(mutant.width, 256, seed=5)
            assert (
                plan_executor(mutant, backend="bitsliced").run(x).tobytes()
                == plan_executor(mutant, backend="int64").run(x).tobytes()
            )


class TestFaultOverrides:
    def test_stuck_balancer_matches_comparator_semantics(self):
        net = k_network([2, 2, 2])
        for b in (net.balancers[0], net.balancers[len(net.balancers) // 2]):
            faulty = stuck_balancer(net, b.index)
            x = _bits(net.width, 200, seed=b.index)
            packed, batch = pack_zero_one(x)
            out = unpack_zero_one(evaluate_zero_one_packed(faulty, packed), batch)
            expect = evaluate_comparators(faulty, x).astype(np.int64)
            assert out.tobytes() == expect.tobytes()

    def test_pristine_packed_path_matches_executor(self):
        net = l_network([3, 2])
        x = _bits(net.width, 70, seed=2)
        packed, batch = pack_zero_one(x)
        out = unpack_zero_one(evaluate_zero_one_packed(net, packed), batch)
        assert out.tobytes() == plan_executor(net).run(x).tobytes()

    def test_shape_mismatch_rejected(self):
        net = k_network([2, 2])
        with pytest.raises(ValueError, match="packed input"):
            evaluate_zero_one_packed(net, np.zeros((net.width + 1, 1), dtype=np.uint64))


# ---------------------------------------------------------------------------
# The public packed API and the executor plumbing around it.
# ---------------------------------------------------------------------------


class TestExecutorSurface:
    def test_backends_tuple(self):
        assert BACKENDS == ("int64", "bitsliced")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            PlanExecutor(lower_network(k_network([2])), backend="uint8")

    def test_plan_executor_memoizes_per_backend(self):
        net = k_network([2, 3])
        assert plan_executor(net) is plan_executor(net, backend="int64")
        bit = plan_executor(net, backend="bitsliced")
        assert bit is plan_executor(net, backend="bitsliced")
        assert bit is not plan_executor(net, backend="int64")

    def test_run_packed_requires_bitsliced(self):
        net = k_network([2, 2])
        ex = PlanExecutor(lower_network(net))  # int64
        with pytest.raises(ValueError, match="bitsliced"):
            ex.run_packed(np.zeros((net.width, 1), dtype=np.uint64))

    def test_run_packed_round_trip(self):
        net = k_network([2, 2, 2])
        ex = plan_executor(net, backend="bitsliced")
        x = _bits(net.width, 100, seed=9)
        packed, batch = pack_zero_one(x)
        out = unpack_zero_one(ex.run_packed(packed), batch)
        assert out.tobytes() == plan_executor(net).run(x).tobytes()

    def test_run_packed_rejects_wrong_width(self):
        ex = plan_executor(k_network([2, 2]), backend="bitsliced")
        with pytest.raises(ValueError, match="packed shape"):
            ex.run_packed(np.zeros((3, 1), dtype=np.uint64))

    def test_bit_scratch_pool_reuses_buffers(self):
        ex = PlanExecutor(lower_network(k_network([2, 2])), backend="bitsliced")
        x = _bits(4, 80, seed=1)  # 2 words
        ex.run(x)
        assert ex.buffer_allocs == 1 and ex.buffer_reuses == 0
        ex.run(x)
        ex.run(x)
        assert ex.buffer_allocs == 1 and ex.buffer_reuses == 2
        stats = ex.scratch_stats()
        assert stats["pooled_batch_sizes"] == [2]  # keyed by word count
        assert stats["batches"] == 3

    def test_bitplan_segments_mirror_plan(self):
        plan = lower_network(k_network([2, 3]))
        bp = BitPlan(plan)
        assert bp.width == plan.width and bp.num_wires == plan.num_wires
        assert len(bp.segments) == plan.num_segments
        assert bp.max_gather >= bp.max_count > 0


class TestCachedBitPlan:
    def test_cached_plan_backend_round_trip(self, tmp_path):
        from repro.core.cache import PlanCache, cached_plan

        cache = PlanCache(tmp_path)
        factors = [2, 3]
        build = lambda: k_network(factors)  # noqa: E731
        bp = cached_plan("K", factors, build, cache=cache, backend="bitsliced")
        assert isinstance(bp, BitPlan)
        # A second call hits the cache and still lowers to a BitPlan.
        bp2 = cached_plan(
            "K", factors, lambda: pytest.fail("must hit"), cache=cache, backend="bitsliced"
        )
        assert isinstance(bp2, BitPlan)
        x = _bits(bp.width, 90, seed=4)
        packed, batch = pack_zero_one(x)
        ex = PlanExecutor(bp2.plan, backend="bitsliced")
        assert (
            unpack_zero_one(ex.run_packed(packed), batch).tobytes()
            == plan_executor(k_network(factors)).run(x).tobytes()
        )

    def test_backend_keys_do_not_collide(self, tmp_path):
        from repro.core.cache import PlanCache, cached_plan

        cache = PlanCache(tmp_path)
        factors = [2, 2]
        p_int = cached_plan("K", factors, lambda: k_network(factors), cache=cache)
        p_bit = cached_plan(
            "K", factors, lambda: k_network(factors), cache=cache, backend="bitsliced"
        )
        assert isinstance(p_bit, BitPlan) and not isinstance(p_int, BitPlan)
        # Both artifacts live side by side and stats break them down.
        backends = cache.stats()["backends"]
        assert backends.get("int64", 0) >= 1
        assert backends.get("bitsliced", 0) >= 1
