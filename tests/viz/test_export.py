"""Tests for DOT / layered-JSON exports."""

from __future__ import annotations

import json

from repro.core import identity_network, single_balancer_network
from repro.networks import k_network
from repro.viz import to_dot, to_layered_json


class TestDot:
    def test_contains_all_balancers(self):
        net = k_network([2, 2, 2])
        dot = to_dot(net)
        assert dot.startswith("digraph")
        for b in net.balancers:
            assert f"b{b.index} [" in dot

    def test_terminals_present(self):
        net = single_balancer_network(3)
        dot = to_dot(net)
        for i in range(3):
            assert f"x{i}" in dot and f"y{i}" in dot

    def test_edge_count(self):
        """Every balancer input and every network output is one edge."""
        net = k_network([2, 3])
        dot = to_dot(net)
        edges = [l for l in dot.splitlines() if "->" in l and "[label=" in l]
        expected = sum(b.width for b in net.balancers) + net.width
        assert len(edges) == expected

    def test_identity(self):
        dot = to_dot(identity_network(2))
        assert "in0 -> out0" in dot.replace(" ", "").replace('[label="0",fontsize=8];', "") or "->" in dot


class TestLayeredJson:
    def test_round_trip_parses(self):
        net = k_network([2, 2, 2])
        doc = json.loads(to_layered_json(net))
        assert doc["width"] == 8
        assert doc["depth"] == net.depth
        assert len(doc["layers"]) == net.depth

    def test_groups_cover_all_balancers(self):
        net = k_network([3, 2, 2])
        doc = json.loads(to_layered_json(net))
        total = sum(g["count"] for layer in doc["layers"] for g in layer)
        assert total == net.size

    def test_wire_ids_consistent(self):
        net = k_network([2, 3])
        doc = json.loads(to_layered_json(net))
        assert doc["inputs"] == list(net.inputs)
        assert doc["outputs"] == list(net.outputs)

    def test_indent_option(self):
        assert "\n" in to_layered_json(single_balancer_network(2), indent=2)
