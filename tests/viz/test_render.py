"""Tests for ASCII rendering."""

from __future__ import annotations

import numpy as np

from repro.core import identity_network
from repro.networks import k_network
from repro.viz import render_matrix, render_network, render_sequence


class TestRenderNetwork:
    def test_contains_all_rows(self):
        net = k_network([2, 2, 2])
        text = render_network(net)
        lines = text.splitlines()
        assert len(lines) == net.width + 1  # header + one line per position
        assert net.name in lines[0]

    def test_output_labels_are_permutation(self):
        net = k_network([2, 3])
        text = render_network(net)
        labels = sorted(int(line.rsplit("y", 1)[1]) for line in text.splitlines()[1:])
        assert labels == list(range(net.width))

    def test_identity_renders(self):
        text = render_network(identity_network(3))
        assert "width=3" in text

    def test_width_limit(self):
        net = k_network([8, 8])
        assert "exceeds render limit" in render_network(net, max_width=4)

    def test_depth_limit(self):
        net = k_network([2, 2, 2])
        assert "exceeds render limit" in render_network(net, max_layers=2)


class TestRenderSequence:
    def test_strip_length(self):
        out = render_sequence([3, 3, 2, 2, 2], "x")
        assert out.startswith("x[")
        assert "min=2 max=3" in out

    def test_empty(self):
        assert render_sequence([]) == "[]"

    def test_constant_sequence(self):
        out = render_sequence([5, 5, 5])
        assert "min=5 max=5" in out


class TestRenderMatrix:
    def test_shape(self):
        text = render_matrix(np.arange(12), 3, 4, label="m")
        lines = text.splitlines()
        assert lines[0] == "m"
        assert len(lines) == 4
        assert all(len(l) == 4 for l in lines[1:])

    def test_no_label(self):
        assert len(render_matrix([1, 2, 3, 4], 2, 2).splitlines()) == 2
