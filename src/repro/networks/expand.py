"""Expanding wide comparators into 2-comparator sub-networks.

The paper's trade-off buys depth with wide comparators, but physical
comparator hardware is usually binary.  ``expand_comparators`` replaces
every ``p``-comparator (p > 2) with an inlined arbitrary-width Batcher
sorting network, yielding an equivalent **sorting** network built solely
from 2-comparators.  The expanded depth is the honest depth of a
wide-comparator design on binary hardware — the benches use it to show
that intermediate factorizations minimize *expanded* depth too.

.. warning::
   The expansion preserves the *sorting* semantics only: a sorting network
   on ``p`` inputs is not a substitute for a ``p``-balancer in counting
   semantics (that is exactly the paper's Figure 3 lesson).  For counting
   with 2-balancers use the ``L`` family with binary factors, or the
   bitonic baseline.
"""

from __future__ import annotations

from ..baselines.batcher_general import build_general_sort
from ..core.network import Network, NetworkBuilder

__all__ = ["expand_comparators", "expanded_depth"]


def expand_comparators(net: Network, threshold: int = 2) -> Network:
    """Return an equivalent sorting network in which every comparator
    wider than ``threshold`` is replaced by a Batcher 2-comparator
    sub-network.

    ``threshold`` must be >= 2 (2-comparators are irreducible).
    """
    if threshold < 2:
        raise ValueError("threshold must be >= 2")
    b = NetworkBuilder(net.width)
    mapping: dict[int, int] = {w: mine for w, mine in zip(net.inputs, b.inputs)}
    for bal in net.balancers:
        ins = [mapping[w] for w in bal.inputs]
        if bal.width <= threshold:
            outs = b.balancer(ins)
        else:
            outs = build_general_sort(b, ins)
        for theirs, mine in zip(bal.outputs, outs):
            mapping[theirs] = mine
    return b.finish([mapping[w] for w in net.outputs], name=f"{net.name}|expanded")


def expanded_depth(net: Network, threshold: int = 2) -> int:
    """Depth of :func:`expand_comparators` without keeping the network."""
    return expand_comparators(net, threshold).depth
