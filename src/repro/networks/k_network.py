"""The ``K`` counting-network family (paper §5.1).

``K(p0..pn-1)`` instantiates the generic construction of §4 with the base
``C(p_i, p_j)`` = a single ``p_i * p_j``-balancer (``d = 1``) and the
``opt_rescan`` staircase-merger (``depth(S) = 2d + 1 = 3``), giving
(Proposition 6) ``depth(K) = 1.5 n² - 3.5 n + 2`` from balancers of width at
most ``max(p_i * p_j)``.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder
from .counting import build_counting, counting_network, single_balancer_base

__all__ = ["k_network", "build_k_network"]


def build_k_network(b: NetworkBuilder, wires: list[int], factors: list[int]) -> list[int]:
    """Append ``K(factors)`` onto ``wires`` (width ``prod(factors)``)."""
    return build_counting(b, wires, factors, single_balancer_base, variant="opt_rescan")


def k_network(factors: list[int] | tuple[int, ...]) -> Network:
    """Standalone ``K(factors)`` of width ``prod(factors)``."""
    return counting_network(
        factors,
        base=single_balancer_base,
        variant="opt_rescan",
        name=f"K({','.join(map(str, factors))})",
    )
