"""The ``K`` counting-network family (paper §5.1).

``K(p0..pn-1)`` instantiates the generic construction of §4 with the base
``C(p_i, p_j)`` = a single ``p_i * p_j``-balancer (``d = 1``) and the
``opt_rescan`` staircase-merger (``depth(S) = 2d + 1 = 3``), giving
(Proposition 6) ``depth(K) = 1.5 n² - 3.5 n + 2`` from balancers of width at
most ``max(p_i * p_j)``.

``variant="searched"`` additionally substitutes best-known counting
networks from :mod:`repro.search.registry` wherever they are strictly
shallower than the stock sub-construction (the single-balancer base itself,
at depth 1, is never beaten — the wins come from replacing whole
``C``-prefixes, e.g. the AHS bitonic network of width 16 at depth 10
replaces the stock ``C(2,2,2,2)`` prefix of depth 12).
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder
from .counting import build_counting, counting_network, single_balancer_base

__all__ = ["k_network", "build_k_network", "NETWORK_VARIANTS"]

#: Construction variants shared by the K and L families.
NETWORK_VARIANTS = ("stock", "searched")


def _check_variant(variant: str) -> bool:
    if variant not in NETWORK_VARIANTS:
        raise ValueError(f"variant must be one of {NETWORK_VARIANTS}, got {variant!r}")
    return variant == "searched"


def build_k_network(
    b: NetworkBuilder, wires: list[int], factors: list[int], variant: str = "stock"
) -> list[int]:
    """Append ``K(factors)`` onto ``wires`` (width ``prod(factors)``)."""
    return build_counting(
        b,
        wires,
        factors,
        single_balancer_base,
        variant="opt_rescan",
        searched=_check_variant(variant),
    )


def k_network(factors: list[int] | tuple[int, ...], variant: str = "stock") -> Network:
    """Standalone ``K(factors)`` of width ``prod(factors)``."""
    searched = _check_variant(variant)
    suffix = "[searched]" if searched else ""
    return counting_network(
        factors,
        base=single_balancer_base,
        variant="opt_rescan",
        name=f"K({','.join(map(str, factors))}){suffix}",
        searched=searched,
    )
