"""The constant-depth counting network ``R(p, q)`` (paper §5.3, Figure 13).

``R(p, q)`` counts ``pq`` wires in depth at most 16 using balancers of width
at most ``max(p, q)``.  Let ``p̂ = floor(sqrt(p))`` and ``p̄ = p - p̂²``
(likewise ``q̂``, ``q̄``).  The ``p x q`` input matrix splits into quadrants:

* **A** (``p̂² x q̂²``) — counted by ``K(p̂, p̂, q̂, q̂)`` (depth 12, balancer
  widths are pairwise products ``p̂², p̂q̂, q̂² <= max(p,q)`` by Eq. 1);
* **B** (``p̂² x q̄``) — split into column bands of ``q̄0 = floor(q̄/2)`` and
  ``q̄1 = ceil(q̄/2)`` columns, counted by ``K(q̄0, p̂, p̂)`` and
  ``K(q̄1, p̂, p̂)`` (Eq. 2 bounds the widths), merged by ``T(p̂², q̄0, q̄1)``;
* **C** (``p̄ x q̂²``) — symmetric to B with rows split instead;
* **D** (``p̄ x q̄``) — four sub-blocks ``p̄_i x q̄_j`` each counted by one
  balancer (Eq. 3 bounds ``p̄_i * q̄_j``), merged by a cascade of two-mergers.

Finally ``T(p̂², q̂², q̄)`` merges A'B', ``T(p̄, q̂², q̄)`` merges C'D', and
``T(q, p̂², p̄)`` merges the halves (row balancers of width exactly ``p``,
column balancers of width ``q``).

Because every quadrant passes through a *counting* network (which ignores
input arrangement) before any merging, only the quadrant cardinalities
matter; the implementation therefore partitions the flat wire list by size
rather than tracking matrix cells.  Degenerate parameter values (``p̄ = 0``
for square ``p``, bands of width 0 or 1, ...) follow the paper's rule: use
no network or a single balancer, and skip the affected two-mergers.
"""

from __future__ import annotations

from math import isqrt

from ..core.network import Network, NetworkBuilder
from .counting import build_counting, single_balancer_base
from .two_merger import build_two_merger

__all__ = ["build_r_network", "r_network", "r_base"]


def _k_step(b: NetworkBuilder, wires: list[int], factors: list[int]) -> list[int]:
    """Count a quadrant with the ``K`` family (single-balancer base,
    opt_rescan staircases), tolerating empty regions and unit factors."""
    if not wires:
        return []
    return build_counting(b, wires, factors, single_balancer_base, variant="opt_rescan")


def _band(b: NetworkBuilder, wires: list[int], h: int, cols: int) -> list[int]:
    """Count a ``h² x cols`` band (quadrant B or C): split, count each half
    with ``K``, merge with ``T(h², c0, c1)``."""
    if not wires or cols == 0:
        return []
    c0, c1 = cols // 2, cols - cols // 2
    g0, g1 = wires[: h * h * c0], wires[h * h * c0 :]
    s0 = _k_step(b, g0, [c0, h, h]) if c0 else []
    s1 = _k_step(b, g1, [c1, h, h])
    return build_two_merger(b, s0, s1, p=h * h)


def build_r_network(b: NetworkBuilder, wires: list[int], p: int, q: int) -> list[int]:
    """Append ``R(p, q)`` onto the ``p*q`` wires; returns output wires in
    sequence order (a step sequence for every input)."""
    if p < 1 or q < 1:
        raise ValueError(f"p, q must be >= 1, got {p}, {q}")
    if len(wires) != p * q:
        raise ValueError(f"expected {p * q} wires, got {len(wires)}")
    if p * q <= 1:
        return list(wires)
    if p == 1 or q == 1:
        # Width pq equals max(p, q): one balancer respects the width bound.
        return b.maybe_balancer(wires)

    ph, qh = isqrt(p), isqrt(q)
    pb, qb = p - ph * ph, q - qh * qh

    # Partition the flat input by quadrant cardinalities.
    sizes = [ph * ph * qh * qh, ph * ph * qb, pb * qh * qh, pb * qb]
    offs = [0]
    for s in sizes:
        offs.append(offs[-1] + s)
    a_w = wires[offs[0] : offs[1]]
    b_w = wires[offs[1] : offs[2]]
    c_w = wires[offs[2] : offs[3]]
    d_w = wires[offs[3] : offs[4]]

    a2 = _k_step(b, a_w, [ph, ph, qh, qh])
    b2 = _band(b, b_w, ph, qb)
    c2 = _band(b, c_w, qh, pb)

    # Quadrant D: four single balancers then a two-merger cascade.
    d2: list[int] = []
    if pb and qb:
        p0_, p1_ = pb // 2, pb - pb // 2
        q0_, q1_ = qb // 2, qb - qb // 2
        chunks = []
        pos = 0
        for size in (p0_ * q0_, p0_ * q1_, p1_ * q0_, p1_ * q1_):
            chunks.append(b.maybe_balancer(d_w[pos : pos + size]) if size else [])
            pos += size
        d00, d01, d10, d11 = chunks
        e0 = build_two_merger(b, d00, d01, p=p0_) if p0_ else []
        e1 = build_two_merger(b, d10, d11, p=p1_)
        d2 = build_two_merger(b, e0, e1, p=qb)

    ab = build_two_merger(b, a2, b2, p=ph * ph)  # T(p̂², q̂², q̄)
    cd = build_two_merger(b, c2, d2, p=pb) if pb else []  # T(p̄, q̂², q̄)
    return build_two_merger(b, ab, cd, p=q)  # T(q, p̂², p̄)


def r_network(p: int, q: int) -> Network:
    """Standalone ``R(p, q)``: width ``pq``, depth <= 16, balancers of width
    at most ``max(p, q)``."""
    b = NetworkBuilder(p * q)
    out = build_r_network(b, list(b.inputs), p, q)
    return b.finish(out, name=f"R({p},{q})")


def r_base(b: NetworkBuilder, wires: list[int], p: int, q: int) -> list[int]:
    """Base factory for the ``L`` family: ``C(p, q) := R(p, q)``."""
    return build_r_network(b, wires, p, q)
