"""The generic counting network ``C(p0..pn-1)`` and merger ``M(p0..pn-1)``
(paper §4.1 and §4.2, Figures 7 and 8).

Both are parameterized by an assumed constant-depth base counting network
``C(p, q)`` (a *base factory*).  Instantiating the base with a single
``p*q``-balancer yields the ``K`` family (§5.1); instantiating it with the
``R(p, q)`` quadrant construction yields the ``L`` family (§5.2).

Construction (induction on the factorization length ``n``):

* ``C(p0..pn-1)``: split the width-``w`` input into ``p(n-1)`` contiguous
  blocks of width ``w(n-2) = p0*...*p(n-2)``; send block ``i`` through a copy
  ``C_i`` of ``C(p0..pn-2)``; merge the ``p(n-1)`` step outputs with
  ``M(p0..pn-1)``.

* ``M(p0..pn-1)`` on step inputs ``X_0 .. X_{p(n-1)-1}`` (each of length
  ``w(n-2)``): take ``p(n-2)`` copies of ``M(p0,..,p(n-3),p(n-1))``; copy
  ``M_i`` receives the strided subsequences ``X_j[i, p(n-2)]``; the outputs
  ``Y_0 .. Y_{p(n-2)-1}`` satisfy the ``p(n-1)``-staircase property
  (Proposition 2) and are combined by the staircase-merger
  ``S(w(n-3), p(n-1), p(n-2))``.

Factors equal to 1 contribute nothing to the width and are stripped; a
single remaining factor is realized by one balancer of that width (legal for
both ``K`` and ``L`` since a lone factor is the maximum).
"""

from __future__ import annotations

from math import prod

from ..core.network import Network, NetworkBuilder
from ..core.sequences import strided
from .staircase import BaseFactory, build_staircase_merger

__all__ = [
    "normalize_factors",
    "build_counting",
    "build_merger",
    "counting_network",
    "merger_network",
    "single_balancer_base",
    "searched_base",
    "clear_construction_cache",
]

# ---------------------------------------------------------------------------
# Construction-time memoization.
#
# The recursion builds the *same* sub-blocks over and over: ``C(p0..pn-1)``
# instantiates ``p(n-1)`` identical copies of ``C(p0..pn-2)``, and
# ``M(p0..pn-1)`` instantiates ``p(n-2)`` identical copies of the sub-merger.
# Each standalone sub-network is therefore built once, cached by
# ``(kind, factors, base, variant)``, and stamped into the outer builder via
# the vectorized :meth:`NetworkBuilder.subnetwork` relabeling — which
# allocates fresh wire ids in exactly the order a direct replay would, so
# the resulting network is wire-for-wire identical to the unmemoized build.
#
# The ``base`` factory participates in the key as a (strongly referenced)
# function object: distinct bases never collide, and holding the reference
# rules out id-reuse aliasing for ad-hoc lambdas.
# ---------------------------------------------------------------------------

_SUBNET_CACHE: dict[tuple, Network] = {}
_SUBNET_CACHE_MAX = 512


def clear_construction_cache() -> None:
    """Drop all memoized sub-networks (tests / memory pressure)."""
    _SUBNET_CACHE.clear()


def _cached_subnet(key: tuple, build) -> Network:
    net = _SUBNET_CACHE.get(key)
    if net is None:
        if len(_SUBNET_CACHE) >= _SUBNET_CACHE_MAX:
            _SUBNET_CACHE.clear()
        net = build()
        _SUBNET_CACHE[key] = net
    return net


def _counting_subnet(factors: list[int], base: "BaseFactory", variant: str) -> Network:
    """Standalone ``C(factors)``, memoized."""

    def build() -> Network:
        b = NetworkBuilder(prod(factors))
        out = build_counting(b, list(b.inputs), list(factors), base, variant)
        return b.finish(out, name=f"C({','.join(map(str, factors))})")

    return _cached_subnet(("C", tuple(factors), base, variant), build)


def _merger_subnet(
    factors: list[int], base: "BaseFactory", variant: str, searched: bool = False
) -> Network:
    """Standalone ``M(factors)`` (inputs concatenated), memoized."""

    def build() -> Network:
        block = prod(factors[:-1])
        b = NetworkBuilder(block * factors[-1])
        wires = list(b.inputs)
        inputs = [wires[i * block : (i + 1) * block] for i in range(factors[-1])]
        out = build_merger(b, inputs, list(factors), base, variant, searched=searched)
        return b.finish(out, name=f"M({','.join(map(str, factors))})")

    return _cached_subnet(("M", tuple(factors), base, variant, searched), build)


# ---------------------------------------------------------------------------
# The "searched" path: substitute best-known registry networks.
#
# ``repro.search.registry`` curates counting-validated small-width networks
# (seeded with the AHS bitonic networks, extendable by SAT/beam search).
# With ``searched=True`` the recursion substitutes a registry entry at a node
# whenever it is *strictly shallower* than the stock sub-construction it
# replaces — at whole ``C(factors)`` nodes (including the root) and at every
# base ``C(p, q)`` site inside the mergers.  Only ``kind="counting"``
# entries are eligible: the construction's correctness argument needs the
# substituted block to be a counting network, and a depth-optimal *sorting*
# network generally is not one (paper §2, Figure 3).
#
# The import of ``repro.search`` is deferred to call time: ``networks`` must
# stay importable without the search package's load-time validation cost,
# and ``search.registry`` itself imports ``core``/``verify``.
# ---------------------------------------------------------------------------

_SEARCHED_BASES: dict = {}


def _registry_subnet(entry) -> Network:
    """Standalone network for a registry entry, memoized like sub-blocks."""
    return _cached_subnet(
        ("REG", entry.width, entry.origin, entry.comparators), entry.network
    )


def _base_subnet(base: "BaseFactory", p: int, q: int) -> Network:
    """Standalone stock base ``C(p, q)`` (memoized) — the depth yardstick a
    registry entry must strictly beat."""

    def build() -> Network:
        b = NetworkBuilder(p * q)
        out = base(b, list(b.inputs), p, q)
        return b.finish(out, name=f"base({p},{q})")

    return _cached_subnet(("B", base, p, q), build)


def searched_base(base: "BaseFactory") -> "BaseFactory":
    """Wrap a base factory so every ``C(p, q)`` site consults the registry.

    The wrapper is memoized per wrapped factory (a stable function object,
    so it composes with the sub-network cache keys), and it resolves
    :func:`repro.search.default_registry` at call time — swapping the
    registry (tests) takes effect immediately, though previously memoized
    sub-networks must be dropped via :func:`clear_construction_cache`.
    """
    wrapped = _SEARCHED_BASES.get(base)
    if wrapped is None:

        def wrapped(b: NetworkBuilder, wires: list[int], p: int, q: int) -> list[int]:
            from ..search.registry import default_registry

            entry = default_registry().best(len(wires), kind="counting")
            if entry is not None and entry.depth < _base_subnet(base, p, q).depth:
                return b.subnetwork(_registry_subnet(entry), wires)
            return base(b, wires, p, q)

        wrapped.__name__ = f"searched({getattr(base, '__name__', 'base')})"
        _SEARCHED_BASES[base] = wrapped
    return wrapped


def _searched_c(factors: list[int], base: "BaseFactory", variant: str) -> Network:
    """Best available standalone ``C(factors)``: the registry entry at this
    width or the recursive construction (with searched children), whichever
    is strictly shallower."""
    from ..search.registry import default_registry

    recursive = _cached_subnet(
        ("Cs", tuple(factors), base, variant),
        lambda: _recursive_searched_c(factors, base, variant),
    )
    entry = default_registry().best(prod(factors), kind="counting")
    if entry is not None and entry.depth < recursive.depth:
        return _registry_subnet(entry)
    return recursive


def _recursive_searched_c(factors: list[int], base: "BaseFactory", variant: str) -> Network:
    """The stock-shaped ``C(factors)`` whose children and base sites are
    searched; substitution at *this* node is the caller's decision."""
    b = NetworkBuilder(prod(factors))
    wires = list(b.inputs)
    if len(factors) == 2:
        out = base(b, wires, factors[0], factors[1])
    else:
        p_last = factors[-1]
        block = prod(factors[:-1])
        sub = _searched_c(factors[:-1], base, variant)
        outputs = [
            b.subnetwork(sub, wires[i * block : (i + 1) * block]) for i in range(p_last)
        ]
        out = build_merger(b, outputs, list(factors), base, variant, searched=True)
    return b.finish(out, name=f"C({','.join(map(str, factors))})[searched]")


def normalize_factors(factors: list[int] | tuple[int, ...]) -> list[int]:
    """Validate a factorization and strip unit factors."""
    out = []
    for f in factors:
        if f < 1:
            raise ValueError(f"factors must be >= 1, got {f}")
        if f > 1:
            out.append(int(f))
    return out


def single_balancer_base(b: NetworkBuilder, wires: list[int], p: int, q: int) -> list[int]:
    """The ``K``-family base: ``C(p, q)`` is a single ``p*q``-balancer
    (depth ``d = 1``)."""
    return b.maybe_balancer(wires)


def build_counting(
    b: NetworkBuilder,
    wires: list[int],
    factors: list[int],
    base: BaseFactory,
    variant: str = "opt_rescan",
    searched: bool = False,
) -> list[int]:
    """Append ``C(factors)`` onto ``wires``; returns output wires in
    sequence order (a step sequence for every input).

    With ``searched=True``, counting-validated registry entries
    (:mod:`repro.search.registry`) replace any sub-construction they
    strictly beat on measured depth.
    """
    factors = normalize_factors(factors)
    if prod(factors) != len(wires):
        raise ValueError(f"factors {factors} have product {prod(factors)} != width {len(wires)}")
    n = len(factors)
    if n == 0:
        return list(wires)
    if n == 1:
        return b.maybe_balancer(wires)
    if searched:
        return b.subnetwork(_searched_c(factors, base, variant), list(wires))
    if n == 2:
        return base(b, list(wires), factors[0], factors[1])

    p_last = factors[-1]
    block = prod(factors[:-1])
    # The p_last copies of C(factors[:-1]) are identical: build one standalone
    # instance (memoized across calls) and stamp it in by array relabeling.
    sub = _counting_subnet(factors[:-1], base, variant)
    outputs = [
        b.subnetwork(sub, wires[i * block : (i + 1) * block]) for i in range(p_last)
    ]
    return build_merger(b, outputs, factors, base, variant)


def build_merger(
    b: NetworkBuilder,
    inputs: list[list[int]],
    factors: list[int],
    base: BaseFactory,
    variant: str = "opt_rescan",
    searched: bool = False,
) -> list[int]:
    """Append ``M(factors)`` onto the ``factors[-1]`` step-input wire lists
    (each of length ``prod(factors[:-1])``)."""
    factors = normalize_factors(factors)
    n = len(factors)
    if n < 2:
        raise ValueError(f"merger needs at least two factors, got {factors}")
    if len(inputs) != factors[-1]:
        raise ValueError(f"expected {factors[-1]} input sequences, got {len(inputs)}")
    block = prod(factors[:-1])
    for i, x in enumerate(inputs):
        if len(x) != block:
            raise ValueError(f"input {i} has length {len(x)}, expected {block}")

    # In the searched variant every base C(p, q) site — the merger base
    # case and the staircase's internal base calls — consults the registry.
    eff_base = searched_base(base) if searched else base

    if n == 2:
        # Base case: M(p0, p1) is the base counting network C(p0, p1) —
        # a counting network ignores input arrangement, so concatenate.
        flat = [w for x in inputs for w in x]
        return eff_base(b, flat, factors[0], factors[1])

    q = factors[-2]  # p(n-2): number of sub-merger copies
    p = factors[-1]  # p(n-1)
    sub_factors = factors[:-2] + [p]
    # The q sub-merger copies are identical up to input relabeling: stamp a
    # memoized standalone M(sub_factors) onto each strided wire selection.
    sub = _merger_subnet(sub_factors, base, variant, searched)
    ys = []
    for i in range(q):
        flat = [w for x in inputs for w in strided(x, i, q)]
        ys.append(b.subnetwork(sub, flat))
    r = prod(factors[:-2])  # w(n-3)
    return build_staircase_merger(b, ys, r, p, eff_base, variant=variant)


def counting_network(
    factors: list[int] | tuple[int, ...],
    base: BaseFactory | None = None,
    variant: str = "opt_rescan",
    name: str | None = None,
    searched: bool = False,
) -> Network:
    """Standalone generic counting network ``C(factors)``.

    With the default base (one ``p*q``-balancer) this *is* the ``K`` family;
    see :func:`repro.networks.k_network.k_network` and
    :func:`repro.networks.l_network.l_network` for the named families.
    """
    factors = list(factors)
    norm = normalize_factors(factors)
    width = prod(norm) if norm else 1
    if width < 1:
        raise ValueError("network width must be >= 1")
    base = base or single_balancer_base
    b = NetworkBuilder(width)
    out = build_counting(b, list(b.inputs), norm, base, variant, searched=searched)
    label = name or f"C({','.join(map(str, factors))})"
    return b.finish(out, name=label)


def merger_network(
    factors: list[int] | tuple[int, ...],
    base: BaseFactory | None = None,
    variant: str = "opt_rescan",
    name: str | None = None,
    searched: bool = False,
) -> Network:
    """Standalone merger ``M(factors)``: input sequence is the concatenation
    ``X_0 ++ ... ++ X_{factors[-1]-1}`` of the step inputs."""
    norm = normalize_factors(factors)
    if len(norm) < 2:
        raise ValueError("merger needs at least two non-unit factors")
    base = base or single_balancer_base
    block = prod(norm[:-1])
    b = NetworkBuilder(block * norm[-1])
    wires = list(b.inputs)
    inputs = [wires[i * block : (i + 1) * block] for i in range(norm[-1])]
    out = build_merger(b, inputs, norm, base, variant, searched=searched)
    label = name or f"M({','.join(map(str, factors))})"
    return b.finish(out, name=label)
