"""Closed-form depth predictions from the paper's propositions.

These are the *paper-side* numbers for every depth experiment; the
benchmarks compare them against the measured ``Network.depth`` of the
constructions (measured depth may fall below a formula when degenerate
parameter values let a sub-network shrink — the formulas are exact for
"regular" parameter regimes and upper bounds otherwise, cf. §5.3).
"""

from __future__ import annotations

__all__ = [
    "staircase_depth",
    "merger_depth",
    "counting_depth",
    "k_depth",
    "l_depth_bound",
    "r_depth_bound",
    "K_BASE_DEPTH",
    "R_DEPTH_BOUND",
]

K_BASE_DEPTH = 1  # d for the K family: C(p, q) is one balancer
R_DEPTH_BOUND = 16  # depth(R(p, q)) <= 16 (Section 5.3)


def staircase_depth(variant: str, d: int) -> int:
    """Depth of the staircase-merger ``S`` per variant (§4.3 / §4.3.1), as a
    function of the base depth ``d``:

    basic: ``d + 6``; small: ``d + 9``; opt_rescan: ``2d + 1``;
    opt_bitonic: ``d + 3``.
    """
    table = {"basic": d + 6, "small": d + 9, "opt_rescan": 2 * d + 1, "opt_bitonic": d + 3}
    try:
        return table[variant]
    except KeyError:
        raise ValueError(f"unknown staircase variant {variant!r}") from None


def merger_depth(n: int, d: int, depth_s: int) -> int:
    """Proposition 3: ``depth(M(p0..pn-1)) = d + (n-2) * depth(S)`` for
    ``n >= 2``."""
    if n < 2:
        raise ValueError("merger requires n >= 2")
    return d + (n - 2) * depth_s


def counting_depth(n: int, d: int, depth_s: int) -> int:
    """Proposition 1:
    ``depth(C(p0..pn-1)) = (n-1) d + (n²/2 - 3n/2 + 1) * depth(S)`` for
    ``n >= 2`` (the quadratic term is integral since n² - 3n is even)."""
    if n < 2:
        raise ValueError("counting network requires n >= 2")
    return (n - 1) * d + ((n * n - 3 * n + 2) // 2) * depth_s


def k_depth(n: int) -> int:
    """Proposition 6: ``depth(K) = 1.5 n² - 3.5 n + 2`` (integral for all
    n)."""
    if n < 2:
        raise ValueError("K requires n >= 2")
    return (3 * n * n - 7 * n + 4) // 2


def l_depth_bound(n: int) -> int:
    """Theorem 7: ``depth(L) <= 9.5 n² - 12.5 n + 3``."""
    if n < 2:
        raise ValueError("L requires n >= 2")
    return (19 * n * n - 25 * n + 6) // 2


def r_depth_bound() -> int:
    """Section 5.3: ``depth(R(p, q)) <= 16``."""
    return R_DEPTH_BOUND
