"""Closed-form depth predictions from the paper's propositions.

These are the *paper-side* numbers for every depth experiment; the
benchmarks compare them against the measured ``Network.depth`` of the
constructions (measured depth may fall below a formula when degenerate
parameter values let a sub-network shrink — the formulas are exact for
"regular" parameter regimes and upper bounds otherwise, cf. §5.3).
"""

from __future__ import annotations

from math import prod
from typing import Callable

__all__ = [
    "staircase_depth",
    "merger_depth",
    "counting_depth",
    "k_depth",
    "l_depth_bound",
    "r_depth_bound",
    "searched_counting_depth",
    "searched_k_depth",
    "K_BASE_DEPTH",
    "R_DEPTH_BOUND",
]

K_BASE_DEPTH = 1  # d for the K family: C(p, q) is one balancer
R_DEPTH_BOUND = 16  # depth(R(p, q)) <= 16 (Section 5.3)


def staircase_depth(variant: str, d: int) -> int:
    """Depth of the staircase-merger ``S`` per variant (§4.3 / §4.3.1), as a
    function of the base depth ``d``:

    basic: ``d + 6``; small: ``d + 9``; opt_rescan: ``2d + 1``;
    opt_bitonic: ``d + 3``.
    """
    table = {"basic": d + 6, "small": d + 9, "opt_rescan": 2 * d + 1, "opt_bitonic": d + 3}
    try:
        return table[variant]
    except KeyError:
        raise ValueError(f"unknown staircase variant {variant!r}") from None


def merger_depth(n: int, d: int, depth_s: int) -> int:
    """Proposition 3: ``depth(M(p0..pn-1)) = d + (n-2) * depth(S)`` for
    ``n >= 2``."""
    if n < 2:
        raise ValueError("merger requires n >= 2")
    return d + (n - 2) * depth_s


def counting_depth(n: int, d: int, depth_s: int) -> int:
    """Proposition 1:
    ``depth(C(p0..pn-1)) = (n-1) d + (n²/2 - 3n/2 + 1) * depth(S)`` for
    ``n >= 2`` (the quadratic term is integral since n² - 3n is even)."""
    if n < 2:
        raise ValueError("counting network requires n >= 2")
    return (n - 1) * d + ((n * n - 3 * n + 2) // 2) * depth_s


def k_depth(n: int) -> int:
    """Proposition 6: ``depth(K) = 1.5 n² - 3.5 n + 2`` (integral for all
    n)."""
    if n < 2:
        raise ValueError("K requires n >= 2")
    return (3 * n * n - 7 * n + 4) // 2


def l_depth_bound(n: int) -> int:
    """Theorem 7: ``depth(L) <= 9.5 n² - 12.5 n + 3``."""
    if n < 2:
        raise ValueError("L requires n >= 2")
    return (19 * n * n - 25 * n + 6) // 2


def r_depth_bound() -> int:
    """Section 5.3: ``depth(R(p, q)) <= 16``."""
    return R_DEPTH_BOUND


def searched_counting_depth(
    factors: list[int] | tuple[int, ...],
    variant: str,
    base_depth: int | Callable[[int, int], int],
    registry_depth: Callable[[int], int | None],
) -> int:
    """Predicted depth of ``C(factors)`` built with ``searched=True``.

    Mirrors the substitution rule of :mod:`repro.networks.counting` exactly:
    at every ``C``-prefix node (including the root) the construction takes
    ``min(recursive, registry)``, and every base ``C(p, q)`` site — the
    merger base case and both staircase base layers, all of width ``p*q`` —
    takes ``min(base_depth(p, q), registry(p*q))``.  Registry substitution
    requires a *strictly* shallower entry, but ``min`` is the same number.

    ``base_depth`` is the stock base's depth: a constant (``K_BASE_DEPTH``
    for the K family) or a callable ``(p, q) -> depth`` (measured ``R``
    depths for the L family).  ``registry_depth`` maps a width to the best
    counting-valid entry's depth, or ``None`` when the registry has no
    entry at that width (e.g. ``lambda w: e.depth if (e :=
    registry.best(w)) else None``).

    Exact in the same regime as the stock formulas: every staircase call
    has ``r >= 2`` (true whenever all factors are ``>= 2`` and ``n >= 3``).
    """
    if variant not in ("opt_rescan", "opt_bitonic"):
        raise ValueError(f"searched predictor supports opt_rescan/opt_bitonic, got {variant!r}")

    def d(p: int, q: int) -> int:
        return base_depth if isinstance(base_depth, int) else base_depth(p, q)

    def site(p: int, q: int) -> int:
        reg = registry_depth(p * q)
        stock = d(p, q)
        return stock if reg is None else min(stock, reg)

    def c(f: tuple[int, ...]) -> int:
        if len(f) == 0:
            return 0
        if len(f) == 1:
            return 1  # one balancer of width f[0]
        rec = d(f[0], f[1]) if len(f) == 2 else c(f[:-1]) + m(f)
        reg = registry_depth(prod(f))
        return rec if reg is None else min(rec, reg)

    def m(f: tuple[int, ...]) -> int:
        if len(f) == 2:
            return site(f[0], f[1])
        # q = f[-2] parallel copies of M(f[:-2] + (p,)), then S(r, p, q)
        # whose base sites are C(p, q) blocks of width p*q.
        return m(f[:-2] + (f[-1],)) + staircase_depth(variant, site(f[-1], f[-2]))

    return c(tuple(int(x) for x in factors))


def searched_k_depth(
    factors: list[int] | tuple[int, ...], registry_depth: Callable[[int], int | None]
) -> int:
    """Predicted measured depth of ``k_network(factors, variant="searched")``."""
    return searched_counting_depth(factors, "opt_rescan", K_BASE_DEPTH, registry_depth)
