"""The bitonic-converter network ``D(p, q)`` (paper §4.4, Figure 12).

``D(p, q)`` turns any sequence of length ``p*q`` with the *bitonic property*
(1-smooth, at most two transitions) into a step sequence, in depth 2:
arrange the input as a ``p x q`` matrix in column-major form, place a
``q``-balancer across each row, then a ``p``-balancer down each column; the
result has the step property in column-major order.

Used as the final layer of the optimized staircase-merger (§4.3.1), where
the preceding 2-balancer layer has confined the discrepancy to a single
bitonic block.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_bitonic_converter", "bitonic_converter"]


def build_bitonic_converter(b: NetworkBuilder, x: list[int], p: int, q: int) -> list[int]:
    """Append ``D(p, q)`` onto the ``p*q`` wires ``x``; returns the output
    wires in (column-major) sequence order."""
    if p < 1 or q < 1:
        raise ValueError(f"p, q must be >= 1, got {p}, {q}")
    if len(x) != p * q:
        raise ValueError(f"expected {p * q} wires, got {len(x)}")

    # Column-major arrangement: x[k] -> (row k % p, column k // p).
    cell = [[x[c * p + r] for c in range(q)] for r in range(p)]

    # Layer 1: q-balancer across each row (most tokens to column 0).
    for r in range(p):
        cell[r] = b.maybe_balancer(cell[r])

    # Layer 2: p-balancer down each column (most tokens to row 0).
    for c in range(q):
        col = b.maybe_balancer([cell[r][c] for r in range(p)])
        for r in range(p):
            cell[r][c] = col[r]

    # Output in column-major order.
    return [cell[k % p][k // p] for k in range(p * q)]


def bitonic_converter(p: int, q: int) -> Network:
    """Standalone ``D(p, q)``: width ``p*q``, depth at most 2."""
    b = NetworkBuilder(p * q)
    out = build_bitonic_converter(b, list(b.inputs), p, q)
    return b.finish(out, name=f"D({p},{q})")
