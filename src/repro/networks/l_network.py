"""The ``L`` counting-network family (paper §5.2) — the headline result.

``L(p0..pn-1)`` instantiates the generic construction of §4 with the base
``C(p_i, p_j) := R(p_i, p_j)`` (depth ``d <= 16``, §5.3) and the
``opt_bitonic`` staircase-merger (``depth(S) = d + 3 <= 19``), giving
(Theorem 7) ``depth(L) <= 9.5 n² - 12.5 n + 3`` from **balancers of width at
most max(p_i)** — the first arbitrary-width construction with small depth
and small constant factors.

``variant="searched"`` substitutes best-known counting networks from
:mod:`repro.search.registry` wherever they are strictly shallower; the
``R(p, q)`` bases (depth 3-16) lose to the AHS bitonic entries at widths
4/8/16, so searched ``L`` wins at both whole-``C`` nodes and base sites.
Note the substituted blocks use 2-balancers, trading L's max(p_i) balancer
width for depth — the point of the searched variant is the depth frontier.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder
from .counting import build_counting, counting_network
from .k_network import _check_variant
from .r_network import r_base

__all__ = ["l_network", "build_l_network"]


def build_l_network(
    b: NetworkBuilder, wires: list[int], factors: list[int], variant: str = "stock"
) -> list[int]:
    """Append ``L(factors)`` onto ``wires`` (width ``prod(factors)``)."""
    return build_counting(
        b, wires, factors, r_base, variant="opt_bitonic", searched=_check_variant(variant)
    )


def l_network(factors: list[int] | tuple[int, ...], variant: str = "stock") -> Network:
    """Standalone ``L(factors)`` of width ``prod(factors)``."""
    searched = _check_variant(variant)
    suffix = "[searched]" if searched else ""
    return counting_network(
        factors,
        base=r_base,
        variant="opt_bitonic",
        name=f"L({','.join(map(str, factors))}){suffix}",
        searched=searched,
    )
