"""The two-merger network ``T(p, q0, q1)`` (paper §4.4, Figure 11).

``T(p, q0, q1)`` merges two step sequences ``X0`` (length ``p*q0``) and
``X1`` (length ``p*q1``) into one step sequence of length ``p*(q0+q1)`` in
depth 2:

1. arrange ``X0`` as a ``p x q0`` matrix in **column-major** form and ``X1``
   as a ``p x q1`` matrix in **reverse column-major** form, side by side;
2. place a ``(q0+q1)``-balancer across each row — afterwards at most one
   column is 1-smooth, all columns to its left hold the higher value and all
   to its right the lower (Proposition 5);
3. place a ``p``-balancer across each column — the matrix now has the step
   property in column-major order, which is the output sequence.

The ``small`` flag applies the substitution from §4.3: each
``(q0+q1)``-balancer is replaced by a nested two-merger ``T(q, 1, 1)``
built from 2-balancers and ``q``-balancers (valid because each row of the
combined matrix is a step sequence followed by a reversed step sequence).
This trades depth 2 -> 5 for balancer width ``q0+q1`` -> ``max(2, q0, q1)``
and requires ``q0 == q1``.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_two_merger", "two_merger"]


def build_two_merger(
    b: NetworkBuilder,
    x0: list[int],
    x1: list[int],
    p: int,
    small: bool = False,
) -> list[int]:
    """Append ``T(p, q0, q1)`` onto wires ``x0`` (length ``p*q0``) and ``x1``
    (length ``p*q1``); returns the merged output wires in sequence order.

    ``q0`` and ``q1`` are inferred from the wire-list lengths.  Degenerate
    cases follow the paper's conventions: an empty side passes the other
    side through; ``p == 1`` reduces to a single row balancer.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if len(x0) % p or len(x1) % p:
        raise ValueError(f"input lengths {len(x0)}, {len(x1)} must be multiples of p={p}")
    q0, q1 = len(x0) // p, len(x1) // p
    if q0 == 0:
        return list(x1)
    if q1 == 0:
        return list(x0)

    # cell[r][c] = wire at row r, column c of the combined p x (q0+q1) matrix
    cell: list[list[int]] = [[-1] * (q0 + q1) for _ in range(p)]
    for k, w in enumerate(x0):  # column-major: x0[k] -> (k % p, k // p)
        cell[k % p][k // p] = w
    for k, w in enumerate(x1):  # reverse column-major, shifted right by q0
        cell[p - 1 - (k % p)][q0 + (q1 - 1 - (k // p))] = w

    # Layer 1: a (q0+q1)-balancer across each row; output 0 (most tokens)
    # lands in column 0 so columns decrease left to right.
    for r in range(p):
        if small:
            if q0 != q1:
                raise ValueError("small two-merger substitution requires q0 == q1")
            # Row = step (left half) ++ reversed step (right half): feed the
            # nested T(q, 1, 1) the right half un-reversed so both inputs
            # are step sequences.
            left = cell[r][:q0]
            right = list(reversed(cell[r][q0:]))
            cell[r] = build_two_merger(b, left, right, p=q0, small=False)
        else:
            cell[r] = b.maybe_balancer(cell[r])

    # Layer 2: a p-balancer down each column; output 0 lands in row 0.
    for c in range(q0 + q1):
        col = b.maybe_balancer([cell[r][c] for r in range(p)])
        for r in range(p):
            cell[r][c] = col[r]

    # Output: the combined matrix read in column-major order.
    return [cell[k % p][k // p] for k in range(p * (q0 + q1))]


def two_merger(p: int, q0: int, q1: int, small: bool = False) -> Network:
    """Standalone ``T(p, q0, q1)`` whose input sequence is ``X0 ++ X1``."""
    if q0 < 0 or q1 < 0 or q0 + q1 == 0:
        raise ValueError("q0, q1 must be non-negative with q0 + q1 >= 1")
    b = NetworkBuilder(p * (q0 + q1))
    wires = list(b.inputs)
    out = build_two_merger(b, wires[: p * q0], wires[p * q0 :], p, small=small)
    tag = ",small" if small else ""
    return b.finish(out, name=f"T({p},{q0},{q1}{tag})")
