"""The paper's network constructions: T, D, S, M, C, K, R, L."""

from .two_merger import build_two_merger, two_merger
from .bitonic_converter import bitonic_converter, build_bitonic_converter
from .staircase import STAIRCASE_VARIANTS, BaseFactory, build_staircase_merger, staircase_merger
from .counting import (
    build_counting,
    build_merger,
    counting_network,
    merger_network,
    normalize_factors,
    searched_base,
    single_balancer_base,
)
from .k_network import NETWORK_VARIANTS, build_k_network, k_network
from .r_network import build_r_network, r_base, r_network
from .l_network import build_l_network, l_network
from .expand import expand_comparators, expanded_depth
from . import depth_formulas

__all__ = [
    "build_two_merger",
    "two_merger",
    "bitonic_converter",
    "build_bitonic_converter",
    "STAIRCASE_VARIANTS",
    "BaseFactory",
    "build_staircase_merger",
    "staircase_merger",
    "build_counting",
    "build_merger",
    "counting_network",
    "merger_network",
    "normalize_factors",
    "searched_base",
    "single_balancer_base",
    "NETWORK_VARIANTS",
    "build_k_network",
    "k_network",
    "build_r_network",
    "r_base",
    "r_network",
    "build_l_network",
    "l_network",
    "depth_formulas",
    "expand_comparators",
    "expanded_depth",
]
