"""The staircase-merger network ``S(r, p, q)`` (paper §4.3 and §4.3.1).

``S(r, p, q)`` takes ``q`` input sequences ``X_0 .. X_{q-1}``, each of length
``r*p``, each with the step property, jointly satisfying the
``p``-staircase property, and produces one step sequence of length
``r*p*q``.  The inputs form an ``(r*p) x q`` matrix ``A`` with column ``i``
equal to ``X_i``; partitioned into ``r`` blocks ``A_0 .. A_{r-1}`` of
``p x q`` each, the column step points all fall inside two cyclically
adjacent blocks.  A first layer of base counting networks ``C(p, q)`` makes
each block a step sequence (read row-major); the variants differ in how the
remaining inter-block discrepancy is repaired:

``basic`` (depth ``d + 6``)
    Two (three if ``r`` is odd) layers of two-mergers ``T(p, q, q)`` over
    cyclically adjacent block pairs.
``small`` (depth ``d + 9``)
    Same, with each ``2q``-balancer inside the two-mergers replaced by a
    nested ``T(q, 1, 1)``, keeping all balancers at width ``<= max(2, p, q)``.
``opt_rescan`` (depth ``2d + 1``)
    One layer ℓ of 2-balancers across cyclically adjacent block boundaries
    (Proposition 4 confines the discrepancy to a single bitonic block),
    then a second layer of ``C(p, q)``.  This is the variant used by the
    ``K`` family, where ``d = 1`` gives ``depth(S) = 3``.
``opt_bitonic`` (depth ``d + 3``)
    Layer ℓ, then the depth-2 bitonic-converter ``D(p, q)`` on every block.
    This is the variant used by the ``L`` family.

All builders here operate on SSA wire lists; a *base factory*
``base(builder, wires, p, q) -> wires`` supplies the assumed constant-depth
counting network ``C(p, q)`` (one balancer for ``K``, the ``R(p, q)``
construction for ``L``).
"""

from __future__ import annotations

from typing import Callable

from ..core.network import Network, NetworkBuilder
from .bitonic_converter import build_bitonic_converter
from .two_merger import build_two_merger

__all__ = ["BaseFactory", "STAIRCASE_VARIANTS", "build_staircase_merger", "staircase_merger"]

BaseFactory = Callable[[NetworkBuilder, list[int], int, int], list[int]]

STAIRCASE_VARIANTS = ("basic", "small", "opt_rescan", "opt_bitonic")


def _merge_pair(
    b: NetworkBuilder,
    blocks: list[list[int]],
    j: int,
    k: int,
    p: int,
    q: int,
    small: bool,
) -> None:
    """Merge step blocks ``A_j`` and ``A_k`` with ``T(p, q, q)`` and split the
    merged step sequence back: the upper half (higher values) goes to the
    block with the smaller index, which sits higher in the matrix."""
    hi, lo = (j, k) if j < k else (k, j)
    merged = build_two_merger(b, blocks[j], blocks[k], p, small=small)
    half = len(blocks[j])
    blocks[hi] = merged[:half]
    blocks[lo] = merged[half:]


def _layer_ell(b: NetworkBuilder, blocks: list[list[int]], s: int) -> None:
    """The 2-balancer layer ℓ of §4.3.1.

    For every cyclically adjacent pair ``(A_k, A_{k+1 mod r})`` it connects
    element ``s-1-j`` of ``A_k``'s last-``s`` suffix with element ``j`` of
    ``A_{k+1}``'s first-``s`` prefix; each 2-balancer's first output (the
    higher value) is directed "north" — to the block with the smaller index,
    i.e. the one closer to the top of matrix ``A``.
    """
    r = len(blocks)
    if s == 0:
        return
    block_len = len(blocks[0])
    new_blocks = [list(blk) for blk in blocks]
    for k in range(r):
        nxt = (k + 1) % r
        for j in range(s):
            d_pos = block_len - s + (s - 1 - j)  # position in A_k's suffix
            u_pos = j  # position in A_nxt's prefix
            north_is_k = k < nxt  # wrap pair (r-1, 0): block 0 is north
            top, bottom = b.balancer([blocks[k][d_pos], blocks[nxt][u_pos]])
            if north_is_k:
                new_blocks[k][d_pos] = top
                new_blocks[nxt][u_pos] = bottom
            else:
                new_blocks[nxt][u_pos] = top
                new_blocks[k][d_pos] = bottom
    blocks[:] = new_blocks


def build_staircase_merger(
    b: NetworkBuilder,
    inputs: list[list[int]],
    r: int,
    p: int,
    base: BaseFactory,
    variant: str = "opt_rescan",
) -> list[int]:
    """Append ``S(r, p, q)`` onto the ``q`` input wire lists (each of length
    ``r*p``); returns the output wires in sequence (row-major) order."""
    if variant not in STAIRCASE_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; choose from {STAIRCASE_VARIANTS}")
    q = len(inputs)
    if q < 1:
        raise ValueError("staircase-merger needs at least one input sequence")
    if r < 1 or p < 1:
        raise ValueError(f"r, p must be >= 1, got r={r}, p={p}")
    for i, x in enumerate(inputs):
        if len(x) != r * p:
            raise ValueError(f"input {i} has length {len(x)}, expected r*p = {r * p}")

    # Matrix A: (r*p) rows x q columns, column i = X_i.  Block A_k holds rows
    # [k*p, (k+1)*p); as a sequence it is read in row-major order.
    blocks: list[list[int]] = []
    for k in range(r):
        block = [inputs[col][k * p + i] for i in range(p) for col in range(q)]
        blocks.append(block)

    # First layer: C(p, q) turns every block into a step sequence.
    for k in range(r):
        blocks[k] = base(b, blocks[k], p, q)

    if r == 1:
        # A single block is already a step sequence after the base layer;
        # there is no inter-block discrepancy to repair.
        return list(blocks[0])

    if variant in ("basic", "small"):
        small = variant == "small"
        # Layer 1: merge (A_0,A_1), (A_2,A_3), ...
        for i in range(0, r - 1, 2):
            _merge_pair(b, blocks, i, i + 1, p, q, small)
        # Layer 2: merge (A_1,A_2), (A_3,A_4), ..., wrapping to A_0 if r even.
        for i in range(1, r - 1, 2):
            _merge_pair(b, blocks, i, (i + 1) % r, p, q, small)
        if r % 2 == 0 and r > 2:
            _merge_pair(b, blocks, r - 1, 0, p, q, small)
        elif r == 2:
            _merge_pair(b, blocks, 1, 0, p, q, small)
        # Layer 3 (odd r): the single wrap merge of A_{r-1} and A_0.
        if r % 2 == 1 and r > 1:
            _merge_pair(b, blocks, r - 1, 0, p, q, small)
    else:
        s = (p * q) // 2
        _layer_ell(b, blocks, s)
        # Final layer repairs the one bitonic block (all others are step,
        # hence also bitonic, so the repair is applied uniformly).
        for k in range(r):
            if variant == "opt_rescan":
                blocks[k] = base(b, blocks[k], p, q)
            else:  # opt_bitonic
                blocks[k] = build_bitonic_converter(b, blocks[k], p, q)

    return [w for blk in blocks for w in blk]


def _single_balancer_base(b: NetworkBuilder, wires: list[int], p: int, q: int) -> list[int]:
    """Default base ``C(p, q)``: one ``p*q``-balancer (as in the ``K``
    family)."""
    return b.maybe_balancer(wires)


def staircase_merger(
    r: int,
    p: int,
    q: int,
    variant: str = "opt_rescan",
    base: BaseFactory | None = None,
) -> Network:
    """Standalone ``S(r, p, q)``: input sequence ``X_0 ++ ... ++ X_{q-1}``."""
    if q < 1:
        raise ValueError("q must be >= 1")
    base = base or _single_balancer_base
    b = NetworkBuilder(r * p * q)
    wires = list(b.inputs)
    inputs = [wires[i * r * p : (i + 1) * r * p] for i in range(q)]
    out = build_staircase_merger(b, inputs, r, p, base, variant=variant)
    return b.finish(out, name=f"S({r},{p},{q},{variant})")
