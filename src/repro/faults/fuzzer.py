"""Input fuzzing with a persistent seed corpus and violation shrinking.

The counting verifiers search a fixed input family; this fuzzer adds the
classic coverage-guided ingredients around them:

* a **seed corpus** (``tests/corpus/`` by default): JSON files of count
  vectors that have historically been interesting (past violations, shapes
  that exercise rare carry patterns).  Corpus entries are replayed first,
  then mutated, then supplemented with random batches;
* **mutation operators** over count vectors (increment/decrement, zero a
  coordinate, double a coordinate, swap coordinates, splice two parents);
* **shrinking**: a violating vector is reduced to a locally-minimal
  witness before reporting — no single coordinate can be zeroed,
  decremented or halved without losing the violation;
* a **differential oracle** against the :mod:`repro.baselines` sorters:
  the same batch goes through the target network and a baseline sorting
  network, and both are compared to ``np.sort``.

Everything is seeded; a report's ``seed`` plus the corpus reproduce the run
bit-for-bit (see ``docs/testing.md``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.network import Network
from ..sim.count_sim import propagate_counts
from ..sim.sort_sim import evaluate_comparators
from ..verify.counting import step_mask
from ..verify.inputs import random_counts, structured_counts

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "CorpusEntry",
    "FuzzViolation",
    "FuzzReport",
    "load_corpus",
    "save_corpus_entry",
    "mutate_input",
    "shrink_vector",
    "differential_sort_check",
    "fuzz_inputs",
]


def DEFAULT_CORPUS_DIR() -> pathlib.Path:
    """``tests/corpus/`` under the repo root (resolved lazily so installed
    wheels fall back to the current directory)."""
    from ..obs.export import repo_root

    return repo_root() / "tests" / "corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted seed input: a count vector plus provenance."""

    width: int
    counts: tuple[int, ...]
    note: str = ""

    def as_dict(self) -> dict:
        return {"width": self.width, "counts": list(self.counts), "note": self.note}


@dataclass(frozen=True)
class FuzzViolation:
    """A step-property violation found by the fuzzer, already shrunk."""

    input_counts: tuple[int, ...]
    output_counts: tuple[int, ...]
    original_input: tuple[int, ...]
    source: str  # "corpus" | "mutation" | "structured" | "random"

    def as_dict(self) -> dict:
        return {
            "input": list(self.input_counts),
            "output": list(self.output_counts),
            "original_input": list(self.original_input),
            "source": self.source,
        }


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_inputs` run."""

    network: str
    width: int
    seed: int
    trials: int = 0
    corpus_seeds: int = 0
    violations: list[FuzzViolation] = field(default_factory=list)
    differential_mismatches: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations and self.differential_mismatches == 0

    def as_dict(self) -> dict:
        return {
            "network": self.network,
            "width": self.width,
            "seed": self.seed,
            "trials": self.trials,
            "corpus_seeds": self.corpus_seeds,
            "violations": [v.as_dict() for v in self.violations],
            "differential_mismatches": self.differential_mismatches,
            "clean": self.clean,
        }


# ---------------------------------------------------------------------------
# Corpus persistence
# ---------------------------------------------------------------------------


def load_corpus(directory=None, width: int | None = None) -> list[CorpusEntry]:
    """Read every ``*.json`` corpus file under ``directory``.

    Each file holds either one entry object or a list of them; entries not
    matching ``width`` (when given) are skipped.  Missing directories yield
    an empty corpus — the fuzzer degrades to mutation + random search.
    """
    directory = pathlib.Path(directory) if directory is not None else DEFAULT_CORPUS_DIR()
    if not directory.is_dir():
        return []
    entries: list[CorpusEntry] = []
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text())
        for item in data if isinstance(data, list) else [data]:
            entry = CorpusEntry(
                width=int(item["width"]),
                counts=tuple(int(c) for c in item["counts"]),
                note=str(item.get("note", "")),
            )
            if width is None or entry.width == width:
                entries.append(entry)
    return entries


def save_corpus_entry(entry: CorpusEntry, directory=None, name: str | None = None) -> pathlib.Path:
    """Append ``entry`` to ``<directory>/<name>.json`` (created if absent)."""
    directory = pathlib.Path(directory) if directory is not None else DEFAULT_CORPUS_DIR()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name or f'width{entry.width}'}.json"
    existing = json.loads(path.read_text()) if path.exists() else []
    if not isinstance(existing, list):
        existing = [existing]
    existing.append(entry.as_dict())
    path.write_text(json.dumps(existing, indent=2) + "\n")
    return path


# ---------------------------------------------------------------------------
# Mutation & shrinking
# ---------------------------------------------------------------------------


def mutate_input(
    vec: np.ndarray, rng: np.random.Generator, partner: np.ndarray | None = None
) -> np.ndarray:
    """One seeded mutation of a count vector (always stays non-negative)."""
    out = np.array(vec, dtype=np.int64, copy=True)
    w = out.shape[0]
    op = int(rng.integers(0, 6 if partner is not None else 5))
    i = int(rng.integers(0, w))
    if op == 0:  # nudge
        out[i] = max(0, int(out[i]) + int(rng.integers(-2, 3)))
    elif op == 1:  # zero a coordinate
        out[i] = 0
    elif op == 2:  # double a coordinate (plus one so zeros move)
        out[i] = 2 * int(out[i]) + 1
    elif op == 3:  # swap two coordinates
        j = int(rng.integers(0, w))
        out[i], out[j] = out[j], out[i]
    elif op == 4:  # heavy spike
        out[i] = int(out[i]) + int(rng.integers(8, 64))
    else:  # splice with a corpus partner
        cut = int(rng.integers(1, w)) if w > 1 else 0
        out[cut:] = partner[cut:]
    return out


def shrink_vector(
    vec: Sequence[int],
    still_fails: Callable[[np.ndarray], bool],
    max_passes: int = 64,
) -> np.ndarray:
    """Greedy local minimization of a failing input.

    Repeatedly tries, per coordinate, the reductions *zero*, *halve*,
    *decrement* (in that order — biggest first), keeping any change under
    which ``still_fails`` holds, until a full pass makes no progress.  The
    result is locally minimal: no single-coordinate reduction preserves the
    failure.  ``still_fails(vec)`` must be True on entry.
    """
    cur = np.array(vec, dtype=np.int64, copy=True)
    if not still_fails(cur):
        raise ValueError("shrink_vector needs a failing input to start from")
    for _ in range(max_passes):
        progressed = False
        for i in range(cur.shape[0]):
            for candidate_value in (0, int(cur[i]) // 2, int(cur[i]) - 1):
                if candidate_value < 0 or candidate_value >= cur[i]:
                    continue
                candidate = cur.copy()
                candidate[i] = candidate_value
                if still_fails(candidate):
                    cur = candidate
                    progressed = True
                    break
        if not progressed:
            return cur
    return cur


def _violates_step(net: Network) -> Callable[[np.ndarray], bool]:
    def check(vec: np.ndarray) -> bool:
        return not bool(step_mask(propagate_counts(net, vec[None, :]))[0])

    return check


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def differential_sort_check(
    net: Network, baseline: Network, batch: np.ndarray
) -> int:
    """Differential oracle: rows where ``net`` and ``baseline`` disagree
    with ``np.sort`` (descending) — counts rows where *either* side is
    wrong, so a buggy baseline cannot mask a buggy target."""
    if net.width != baseline.width:
        raise ValueError(f"width mismatch: {net.width} vs {baseline.width}")
    want = -np.sort(-np.asarray(batch), axis=1)
    got_net = evaluate_comparators(net, batch)
    got_base = evaluate_comparators(baseline, batch)
    bad = ~np.all(got_net == want, axis=1) | ~np.all(got_base == want, axis=1)
    return int(bad.sum())


# ---------------------------------------------------------------------------
# Main loop
# ---------------------------------------------------------------------------


def fuzz_inputs(
    net: Network,
    rounds: int = 200,
    seed: int = 0,
    corpus_dir=None,
    baseline: Network | None = None,
    max_violations: int = 5,
    batch_size: int = 64,
) -> FuzzReport:
    """Fuzz ``net``'s step property; shrink and report violations.

    Order of attack: structured adversarial vectors, corpus replay, corpus
    mutation, then random batches — ``rounds`` counts the mutation/random
    iterations.  When ``baseline`` is given, each random batch also runs
    the differential sorting oracle.  Stops early after
    ``max_violations`` distinct shrunk witnesses.
    """
    rng = np.random.default_rng(seed)
    w = net.width
    report = FuzzReport(network=net.name, width=w, seed=seed)
    fails = _violates_step(net)
    seen: set[tuple[int, ...]] = set()

    def record(vec: np.ndarray, source: str) -> None:
        shrunk = shrink_vector(vec, fails)
        key = tuple(int(v) for v in shrunk)
        if key in seen:
            return
        seen.add(key)
        out = propagate_counts(net, shrunk)
        report.violations.append(
            FuzzViolation(
                input_counts=key,
                output_counts=tuple(int(v) for v in out),
                original_input=tuple(int(v) for v in vec),
                source=source,
            )
        )

    def sweep(batch: np.ndarray, source: str) -> None:
        if len(report.violations) >= max_violations:
            return
        report.trials += batch.shape[0]
        ok = step_mask(propagate_counts(net, batch))
        for idx in np.nonzero(~ok)[0]:
            record(batch[int(idx)], source)
            if len(report.violations) >= max_violations:
                return

    sweep(structured_counts(w), "structured")

    corpus = load_corpus(corpus_dir, width=w)
    report.corpus_seeds = len(corpus)
    pool = [np.array(e.counts, dtype=np.int64) for e in corpus]
    if pool:
        sweep(np.stack(pool), "corpus")

    for _ in range(rounds):
        if len(report.violations) >= max_violations:
            break
        if pool and rng.random() < 0.5:
            parent = pool[int(rng.integers(0, len(pool)))]
            partner = pool[int(rng.integers(0, len(pool)))]
            batch = np.stack(
                [mutate_input(parent, rng, partner) for _ in range(min(batch_size, 16))]
            )
            sweep(batch, "mutation")
        else:
            batch = random_counts(w, batch_size, rng)
            sweep(batch, "random")
            if baseline is not None:
                report.differential_mismatches += differential_sort_check(
                    net, baseline, rng.integers(0, 100, size=(min(batch_size, 32), w))
                )
    return report
