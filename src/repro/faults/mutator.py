"""Seeded structural and semantic faults for balancing networks.

Every mutation takes a known-good :class:`~repro.core.network.Network` and
returns a *mutant* that differs in exactly one localized way.  The fault
classes mirror how real implementations break:

``stuck``
    A balancer always routes to one output wire (a stuck toggle / dead
    routing bit).  Not expressible in the structural SSA IR — balancers
    split evenly by construction — so stuck mutants are
    :class:`FaultyNetwork` instances carrying a semantic override that the
    simulators honor (see ``fault_overrides`` hooks in
    :mod:`repro.sim.count_sim`, :mod:`repro.sim.sort_sim` and
    :mod:`repro.sim.token_sim`).
``drop``
    A balancer becomes a pass-through (dropped comparator).
``flip``
    A balancer's outputs are reversed (excess tokens to the bottom wire).
``toggle``
    Off-by-one toggle state: the balancer behaves as if one phantom token
    had already passed, i.e. its ``i``-th arrival routes to ``(i+1) mod p``
    — structurally, a rotation of its output wires.
``swap_wires``
    Misrouted internal wiring: two balancers in the same layer exchange one
    input wire each.
``swap_outputs``
    Misrouted network outputs: two positions of the output sequence are
    exchanged.
``dup_layer``
    A whole layer is applied twice.  Quiescently *equivalent* (balancing is
    idempotent) but it violates the construction's depth budget — the
    canonical fault only a structural audit can catch.

All mutants remain valid SSA networks (token conservation holds by
construction); only the ordering/step guarantees break.  Site selection is
seeded and enumerable so every CI failure is reproducible from its printed
``(fault, site)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.network import Balancer, Network

__all__ = [
    "FAULT_CLASSES",
    "StuckOverride",
    "FaultyNetwork",
    "Mutant",
    "drop_balancer",
    "flip_balancer",
    "toggle_balancer",
    "stuck_balancer",
    "swap_layer_inputs",
    "swap_outputs",
    "duplicate_layer",
    "enumerate_sites",
    "mutate",
    "sample_mutants",
]

#: The fault taxonomy, in the order reports print it.
FAULT_CLASSES = (
    "stuck",
    "drop",
    "flip",
    "toggle",
    "swap_wires",
    "swap_outputs",
    "dup_layer",
)


@dataclass(frozen=True)
class StuckOverride:
    """Semantic override: this balancer routes every token to ``port``.

    ``apply_counts`` maps a batch of input totals to per-output counts
    (quiescent-count semantics); ``stuck_port`` is also honored by the
    token simulator.  In comparator semantics a stuck balancer does not
    compare at all — values pass through unsorted.
    """

    stuck_port: int

    def apply_counts(self, totals: np.ndarray, width: int) -> np.ndarray:
        """``(B,)`` totals -> ``(width, B)`` output counts: all on one wire."""
        out = np.zeros((width, totals.shape[0]), dtype=np.int64)
        out[self.stuck_port] = totals
        return out


class FaultyNetwork(Network):
    """A network carrying per-balancer semantic fault overrides.

    Structure (and therefore :func:`~repro.core.compiled.compile_network`)
    is identical to the pristine network; simulators check
    ``fault_overrides`` before taking the compiled fast path.
    """

    def __init__(self, *args, fault_overrides: dict[int, StuckOverride], **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fault_overrides = dict(fault_overrides)


@dataclass(frozen=True)
class Mutant:
    """One injected fault: the mutated network plus its provenance."""

    network: Network
    fault: str
    site: tuple[int, ...]
    origin: str

    def describe(self) -> str:
        return f"{self.origin}+{self.fault}@{','.join(map(str, self.site))}"


# ---------------------------------------------------------------------------
# Individual mutations
# ---------------------------------------------------------------------------


def drop_balancer(net: Network, index: int) -> Network:
    """Mutant: balancer ``index`` becomes a pass-through (inputs wired
    straight to its outputs)."""
    alias: dict[int, int] = {}
    balancers = []
    for b in net.balancers:
        ins = tuple(alias.get(w, w) for w in b.inputs)
        if b.index == index:
            for w_in, w_out in zip(ins, b.outputs):
                alias[w_out] = w_in
            continue
        balancers.append(Balancer(len(balancers), ins, b.outputs))
    outputs = [alias.get(w, w) for w in net.outputs]
    return Network(
        net.inputs, outputs, balancers, net.num_wires, f"{net.name}-drop{index}", validate=False
    )


def flip_balancer(net: Network, index: int) -> Network:
    """Mutant: balancer ``index``'s outputs reversed (most tokens to the
    bottom wire)."""
    balancers = [
        Balancer(b.index, b.inputs, tuple(reversed(b.outputs))) if b.index == index else b
        for b in net.balancers
    ]
    return Network(net.inputs, net.outputs, balancers, net.num_wires, f"{net.name}-flip{index}")


def toggle_balancer(net: Network, index: int, offset: int = 1) -> Network:
    """Mutant: balancer ``index`` starts with its toggle advanced by
    ``offset`` — its ``i``-th arrival routes to ``(i + offset) mod p``.

    Quiescently this is a rotation of the output wires, so it is a pure
    structural mutation.  For width-2 balancers it coincides with ``flip``.
    """
    balancers = []
    for b in net.balancers:
        if b.index == index:
            k = offset % b.width
            rotated = tuple(b.outputs[-k:] + b.outputs[:-k]) if k else b.outputs
            balancers.append(Balancer(b.index, b.inputs, rotated))
        else:
            balancers.append(b)
    return Network(
        net.inputs, net.outputs, balancers, net.num_wires, f"{net.name}-toggle{index}"
    )


def stuck_balancer(net: Network, index: int, port: int = 0) -> FaultyNetwork:
    """Mutant: balancer ``index`` routes *every* token to output ``port``.

    Returns a :class:`FaultyNetwork`; the structure is unchanged, the
    simulators honor the override.
    """
    if not 0 <= index < net.size:
        raise ValueError(f"balancer index {index} out of range")
    width = net.balancers[index].width
    if not 0 <= port < width:
        raise ValueError(f"stuck port {port} out of range for width {width}")
    return FaultyNetwork(
        net.inputs,
        net.outputs,
        net.balancers,
        net.num_wires,
        f"{net.name}-stuck{index}.{port}",
        fault_overrides={index: StuckOverride(port)},
    )


def _toposort(balancers: Sequence[Balancer], inputs: Sequence[int]) -> list[Balancer]:
    """Re-emit ``balancers`` in a definition-before-use order, re-indexed.

    Mutations that rewire inputs can leave the list out of SSA order even
    when the dataflow graph is still acyclic (the consumer may precede the
    producer in the list); validation requires list order.
    """
    defined = set(inputs)
    remaining = list(balancers)
    out: list[Balancer] = []
    while remaining:
        rest = []
        for b in remaining:
            if all(w in defined for w in b.inputs):
                out.append(Balancer(len(out), b.inputs, b.outputs))
                defined.update(b.outputs)
            else:
                rest.append(b)
        if len(rest) == len(remaining):
            raise ValueError("mutation created a dataflow cycle")
        remaining = rest
    return out


def swap_layer_inputs(net: Network, index_a: int, index_b: int) -> Network:
    """Mutant: balancers ``index_a`` and ``index_b`` (same layer) exchange
    their first input wires — a misrouted internal wire pair.

    Both balancers consume wires produced strictly before their shared
    layer, so the exchange is acyclic; the balancer list is re-sorted
    topologically because the swapped-in wire's producer may appear later
    in list order.
    """
    a, b = net.balancers[index_a], net.balancers[index_b]
    wa, wb = a.inputs[0], b.inputs[0]
    balancers = []
    for bal in net.balancers:
        if bal.index == index_a:
            balancers.append(Balancer(bal.index, (wb,) + bal.inputs[1:], bal.outputs))
        elif bal.index == index_b:
            balancers.append(Balancer(bal.index, (wa,) + bal.inputs[1:], bal.outputs))
        else:
            balancers.append(bal)
    return Network(
        net.inputs,
        net.outputs,
        _toposort(balancers, net.inputs),
        net.num_wires,
        f"{net.name}-swapw{index_a}.{index_b}",
    )


def swap_outputs(net: Network, pos_a: int, pos_b: int) -> Network:
    """Mutant: output-sequence positions ``pos_a`` and ``pos_b`` exchanged
    (misrouted network outputs)."""
    outputs = list(net.outputs)
    outputs[pos_a], outputs[pos_b] = outputs[pos_b], outputs[pos_a]
    return Network(
        net.inputs,
        outputs,
        net.balancers,
        net.num_wires,
        f"{net.name}-swapo{pos_a}.{pos_b}",
    )


def duplicate_layer(net: Network, layer_index: int) -> Network:
    """Mutant: every balancer of layer ``layer_index`` is applied twice.

    Balancing is idempotent on quiescent counts, so this mutant is
    *behaviorally equivalent* — but it silently exceeds the construction's
    depth budget, which is exactly what the structural audit verifier
    exists to catch.
    """
    layers = net.layers()
    if not 0 <= layer_index < len(layers):
        raise ValueError(f"layer {layer_index} out of range (depth {len(layers)})")
    dup_ids = {b.index for b in layers[layer_index]}
    alias: dict[int, int] = {}
    balancers: list[Balancer] = []
    next_wire = net.num_wires
    for b in net.balancers:
        ins = tuple(alias.get(w, w) for w in b.inputs)
        balancers.append(Balancer(len(balancers), ins, b.outputs))
        if b.index in dup_ids:
            new_outs = tuple(range(next_wire, next_wire + b.width))
            next_wire += b.width
            balancers.append(Balancer(len(balancers), b.outputs, new_outs))
            for old, new in zip(b.outputs, new_outs):
                alias[old] = new
    outputs = [alias.get(w, w) for w in net.outputs]
    return Network(
        net.inputs,
        outputs,
        balancers,
        next_wire,
        f"{net.name}-dup{layer_index}",
    )


# ---------------------------------------------------------------------------
# Site enumeration & the seeded entry points
# ---------------------------------------------------------------------------


def _same_layer_pairs(net: Network) -> list[tuple[int, int]]:
    pairs: list[tuple[int, int]] = []
    for layer in net.layers():
        ids = [b.index for b in layer]
        pairs.extend((ids[i], ids[j]) for i in range(len(ids)) for j in range(i + 1, len(ids)))
    return pairs


def enumerate_sites(net: Network, fault: str) -> list[tuple[int, ...]]:
    """All injection sites for ``fault`` in ``net`` (possibly empty —
    e.g. ``swap_wires`` needs a layer with two balancers)."""
    if fault in ("drop", "flip"):
        return [(i,) for i in range(net.size)]
    if fault == "toggle":
        return [(i,) for i, b in enumerate(net.balancers) if b.width >= 2]
    if fault == "stuck":
        return [(i, p) for i, b in enumerate(net.balancers) for p in range(b.width)]
    if fault == "swap_wires":
        return [tuple(pair) for pair in _same_layer_pairs(net)]
    if fault == "swap_outputs":
        w = net.width
        return [(i, j) for i in range(w) for j in range(i + 1, w)]
    if fault == "dup_layer":
        return [(d,) for d in range(net.depth)]
    raise ValueError(f"unknown fault class {fault!r}; choose from {FAULT_CLASSES}")


_APPLIERS = {
    "drop": drop_balancer,
    "flip": flip_balancer,
    "toggle": toggle_balancer,
    "stuck": stuck_balancer,
    "swap_wires": swap_layer_inputs,
    "swap_outputs": swap_outputs,
    "dup_layer": duplicate_layer,
}


def mutate(net: Network, fault: str, site: Sequence[int]) -> Mutant:
    """Apply ``fault`` at ``site`` (one entry of :func:`enumerate_sites`)."""
    if fault not in _APPLIERS:
        raise ValueError(f"unknown fault class {fault!r}; choose from {FAULT_CLASSES}")
    mutant_net = _APPLIERS[fault](net, *site)
    return Mutant(mutant_net, fault, tuple(int(s) for s in site), net.name)


def sample_mutants(
    net: Network,
    fault: str,
    rng: np.random.Generator,
    max_sites: int = 3,
) -> list[Mutant]:
    """Up to ``max_sites`` seeded mutants of one fault class.

    Sites are sampled without replacement from :func:`enumerate_sites`,
    biased to include the final layer for single-balancer faults (the
    repair layer is where the paper's constructions are load-bearing, so
    final-layer faults are reliably detectable rather than redundant).
    """
    sites = enumerate_sites(net, fault)
    if not sites:
        return []
    chosen: list[tuple[int, ...]] = []
    if fault in ("drop", "flip", "toggle", "stuck") and net.size > 0:
        final = {b.index for b in net.layers()[-1]}
        final_sites = [s for s in sites if s[0] in final]
        if final_sites:
            chosen.append(final_sites[int(rng.integers(0, len(final_sites)))])
    remaining = [s for s in sites if s not in chosen]
    k = min(max_sites - len(chosen), len(remaining))
    if k > 0:
        picks = rng.choice(len(remaining), size=k, replace=False)
        chosen.extend(remaining[int(i)] for i in np.atleast_1d(picks))
    return [mutate(net, fault, site) for site in chosen]
