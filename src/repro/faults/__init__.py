"""Fault injection & conformance fuzzing for networks and the serving layer.

The verifiers in :mod:`repro.verify` are only trustworthy if they actually
catch broken networks, and the serving layer's exactly-once guarantee is
only trustworthy if it survives adverse conditions.  This package turns
both claims into running code:

* :mod:`repro.faults.mutator` — seeded structural/semantic faults applied
  to any :class:`~repro.core.network.Network` (stuck balancer, dropped
  balancer, flipped or rotated outputs, misrouted wires, duplicated layer);
* :mod:`repro.faults.harness` — the conformance harness: inject every fault
  class into known-good networks, run every verifier on every mutant, and
  report a kill-matrix (fault class x verifier -> caught/missed), with
  equivalent mutants detected and excluded as in classic mutation testing;
* :mod:`repro.faults.fuzzer` — input fuzzing with a persistent seed corpus
  (``tests/corpus/``), violation shrinking to locally-minimal witnesses,
  and differential oracles against the :mod:`repro.baselines` sorters;
* :mod:`repro.faults.chaos` — a chaos layer over
  :class:`~repro.serve.service.CountingService` and the token simulator:
  dropped batches, delayed completions, duplicate deliveries and mid-batch
  cancellations, with a typed :class:`FaultEscape` report when the
  exactly-once accounting does not close.

From the shell: ``python -m repro fuzz {mutate,inputs,chaos}`` (see
``docs/testing.md``).
"""

from .mutator import (
    FAULT_CLASSES,
    FaultyNetwork,
    Mutant,
    StuckOverride,
    drop_balancer,
    duplicate_layer,
    enumerate_sites,
    flip_balancer,
    mutate,
    sample_mutants,
    stuck_balancer,
    swap_layer_inputs,
    swap_outputs,
    toggle_balancer,
)
from .harness import (
    KillMatrix,
    FaultTrial,
    VERIFIERS,
    default_networks,
    run_conformance,
    verifiers_for_backend,
)
from .fuzzer import (
    CorpusEntry,
    FuzzReport,
    FuzzViolation,
    differential_sort_check,
    fuzz_inputs,
    load_corpus,
    mutate_input,
    save_corpus_entry,
    shrink_vector,
)
from .chaos import (
    ChaosReport,
    ChaosService,
    FaultEscape,
    InjectedFault,
    audit_exactly_once,
    chaos_token_check,
    run_chaos,
    run_shard_kill_chaos,
)

__all__ = [
    "FAULT_CLASSES",
    "FaultyNetwork",
    "Mutant",
    "StuckOverride",
    "drop_balancer",
    "duplicate_layer",
    "enumerate_sites",
    "flip_balancer",
    "mutate",
    "sample_mutants",
    "stuck_balancer",
    "swap_layer_inputs",
    "swap_outputs",
    "toggle_balancer",
    "KillMatrix",
    "FaultTrial",
    "VERIFIERS",
    "default_networks",
    "run_conformance",
    "verifiers_for_backend",
    "CorpusEntry",
    "FuzzReport",
    "FuzzViolation",
    "differential_sort_check",
    "fuzz_inputs",
    "load_corpus",
    "mutate_input",
    "save_corpus_entry",
    "shrink_vector",
    "ChaosReport",
    "ChaosService",
    "FaultEscape",
    "InjectedFault",
    "audit_exactly_once",
    "chaos_token_check",
    "run_chaos",
    "run_shard_kill_chaos",
]
