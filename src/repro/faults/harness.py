"""Conformance harness: does every verifier catch every fault class?

Classic mutation testing, aimed at the verifiers instead of the networks:
inject each fault class of :mod:`repro.faults.mutator` into known-good
networks, run every verifier on every mutant, and tabulate a **kill
matrix** (fault class x verifier -> caught / total).  A mutant no verifier
catches is re-checked for *semantic equivalence* against the pristine
network (balancing networks have redundancy — e.g. a duplicated layer is
quiescently idempotent, and some dropped balancers are genuinely unused);
equivalent mutants are excluded from the kill score exactly as in classic
mutation testing.  A non-equivalent mutant that no verifier catches is a
**silent escape** — the harness's whole purpose is to keep that set empty.

Verifier columns:

``counting``
    :func:`repro.verify.find_counting_violation` — the step-property search.
``sorting``
    :func:`repro.verify.find_sorting_violation` — the 0-1 principle.
``smoothing``
    :func:`repro.verify.find_smoothing_violation` with ``k=1`` (counting
    networks are 1-smoothers).
``contract``
    The merger contract specialized to one input: step in, step out
    (:func:`repro.verify.verify_merger` with ``lengths=[w]``).
``structure``
    A depth/size audit against the pristine network — the only verifier
    able to catch quiescently-equivalent faults like ``dup_layer``.

Verifiers the *pristine* network already fails (e.g. ``sorting`` for a
counting-only construction) are excluded per-network, so the matrix never
blames a fault for a pre-existing failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.network import Network
from ..sim.count_sim import propagate_counts
from ..sim.sort_sim import evaluate_comparators
from ..verify import (
    find_counting_violation,
    find_smoothing_violation,
    find_sorting_violation,
    verify_merger,
)
from .mutator import FAULT_CLASSES, Mutant, sample_mutants

__all__ = [
    "VERIFIERS",
    "FaultTrial",
    "KillMatrix",
    "default_networks",
    "semantically_equivalent",
    "verifiers_for_backend",
    "run_conformance",
]


# Each verifier: (mutant, pristine, rng) -> bool (True = fault detected).
Verifier = Callable[[Network, Network, np.random.Generator], bool]


def _v_counting(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
    return find_counting_violation(mutant, rng=rng) is not None


def _v_sorting(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
    return find_sorting_violation(mutant, rng=rng) is not None


def _v_smoothing(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
    return find_smoothing_violation(mutant, 1, rng=rng) is not None


def _v_contract(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
    seed = int(rng.integers(0, 2**31 - 1))
    return verify_merger(mutant, [mutant.width], seed=seed) is not None


def _v_structure(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
    return mutant.depth != pristine.depth or mutant.size != pristine.size


VERIFIERS: dict[str, Verifier] = {
    "counting": _v_counting,
    "sorting": _v_sorting,
    "smoothing": _v_smoothing,
    "contract": _v_contract,
    "structure": _v_structure,
}


def verifiers_for_backend(backend: str) -> dict[str, Verifier]:
    """The stock verifier columns with ``counting``/``sorting`` pinned to an
    evaluation backend.

    Both backends cover the same inputs in the same order, so the matrix a
    conformance run produces must be *identical* across backends — the
    bit-sliced conformance test asserts exactly that.
    """
    if backend == "auto":
        return dict(VERIFIERS)
    if backend not in ("int64", "bitsliced"):
        raise ValueError(f"unknown backend {backend!r}")

    def v_counting(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
        return find_counting_violation(mutant, rng=rng, backend=backend) is not None

    def v_sorting(mutant: Network, pristine: Network, rng: np.random.Generator) -> bool:
        return find_sorting_violation(mutant, rng=rng, backend=backend) is not None

    out = dict(VERIFIERS)
    out["counting"] = v_counting
    out["sorting"] = v_sorting
    return out


def default_networks() -> list[Network]:
    """The harness's stock targets: K/L/R families plus a classic baseline."""
    from ..baselines import bitonic_network
    from ..networks import k_network, l_network, r_network

    return [
        k_network([2, 3]),
        k_network([2, 2, 2]),
        l_network([2, 2, 2]),
        r_network(2, 3),
        bitonic_network(8),
    ]


def semantically_equivalent(
    a: Network, b: Network, rng: np.random.Generator, batches: int = 4, batch_size: int = 256
) -> bool:
    """Evidence-based equivalence: identical quiescent counts on structured
    plus random batches, and identical comparator outputs on random 0-1
    vectors.  Used only to classify mutants *no* verifier caught."""
    from ..verify.inputs import structured_counts

    if a.width != b.width:
        return False
    w = a.width
    if not np.array_equal(propagate_counts(a, structured_counts(w)), propagate_counts(b, structured_counts(w))):
        return False
    for _ in range(batches):
        x = rng.integers(0, 32, size=(batch_size, w))
        if not np.array_equal(propagate_counts(a, x), propagate_counts(b, x)):
            return False
    zo = (rng.random((batch_size, w)) < rng.random((batch_size, 1))).astype(np.int8)
    return bool(np.array_equal(evaluate_comparators(a, zo), evaluate_comparators(b, zo)))


@dataclass(frozen=True)
class FaultTrial:
    """One injected mutant and what happened to it."""

    origin: str
    fault: str
    site: tuple[int, ...]
    caught_by: tuple[str, ...]
    equivalent: bool
    applicable: tuple[str, ...]

    @property
    def escaped(self) -> bool:
        """A live (non-equivalent) mutant no verifier caught."""
        return not self.caught_by and not self.equivalent

    def as_dict(self) -> dict:
        return {
            "network": self.origin,
            "fault": self.fault,
            "site": list(self.site),
            "caught_by": list(self.caught_by),
            "equivalent": self.equivalent,
            "escaped": self.escaped,
        }


@dataclass
class KillMatrix:
    """Kill matrix over a conformance run.

    ``trials`` holds every injected mutant; the matrix projections
    (:meth:`cell`, :meth:`rows`) and the headline :meth:`complete` verdict
    are derived views.
    """

    trials: list[FaultTrial] = field(default_factory=list)
    verifiers: tuple[str, ...] = tuple(VERIFIERS)
    faults: tuple[str, ...] = FAULT_CLASSES
    seed: int = 0
    backend: str = "auto"

    def cell(self, fault: str, verifier: str) -> tuple[int, int]:
        """``(caught, total)`` live mutants of ``fault`` where ``verifier``
        was applicable."""
        caught = total = 0
        for t in self.trials:
            if t.fault != fault or t.equivalent or verifier not in t.applicable:
                continue
            total += 1
            caught += verifier in t.caught_by
        return caught, total

    def escapes(self) -> list[FaultTrial]:
        return [t for t in self.trials if t.escaped]

    def equivalents(self) -> list[FaultTrial]:
        return [t for t in self.trials if t.equivalent]

    def complete(self) -> bool:
        """True when every live mutant was caught by at least one verifier."""
        return not self.escapes()

    def rows(self) -> list[dict]:
        """Flat rows for table printing / ``BENCH_fuzz.json``."""
        out = []
        for fault in self.faults:
            row: dict = {"fault": fault}
            live = [t for t in self.trials if t.fault == fault and not t.equivalent]
            for v in self.verifiers:
                caught, total = self.cell(fault, v)
                row[v] = f"{caught}/{total}" if total else "-"
            row["live"] = len(live)
            row["equivalent"] = sum(1 for t in self.trials if t.fault == fault and t.equivalent)
            row["escaped"] = sum(1 for t in live if t.escaped)
            out.append(row)
        return out

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "backend": self.backend,
            "verifiers": list(self.verifiers),
            "faults": list(self.faults),
            "matrix": self.rows(),
            "trials": [t.as_dict() for t in self.trials],
            "summary": {
                "mutants": len(self.trials),
                "live": sum(1 for t in self.trials if not t.equivalent),
                "equivalent": len(self.equivalents()),
                "escaped": len(self.escapes()),
                "complete": self.complete(),
            },
        }


def _applicable_verifiers(
    net: Network, verifiers: dict[str, Verifier], rng: np.random.Generator
) -> tuple[str, ...]:
    """Verifiers the pristine network passes (others would blame the fault
    for a pre-existing failure — e.g. ``sorting`` on a merger-only net)."""
    ok = []
    for name, fn in verifiers.items():
        if not fn(net, net, np.random.default_rng(rng.integers(0, 2**31 - 1))):
            ok.append(name)
    return tuple(ok)


def run_conformance(
    networks: Iterable[Network] | None = None,
    faults: Sequence[str] = FAULT_CLASSES,
    verifiers: dict[str, Verifier] | None = None,
    seed: int = 0,
    sites_per_fault: int = 3,
    backend: str = "auto",
) -> KillMatrix:
    """Inject ``faults`` into each network and score every verifier.

    Fully seeded: the same ``seed`` reproduces the same mutants (sites are
    sampled per network/fault from a child generator), so a CI escape is
    reproducible locally from the printed ``(network, fault, site)``.
    ``backend`` pins the counting/sorting verifier engines (see
    :func:`verifiers_for_backend`); the mutants injected and the inputs
    covered do not depend on it, so matrices are comparable — and must be
    equal — across backends.
    """
    networks = list(networks) if networks is not None else default_networks()
    verifiers = dict(verifiers) if verifiers is not None else verifiers_for_backend(backend)
    unknown = [f for f in faults if f not in FAULT_CLASSES]
    if unknown:
        raise ValueError(f"unknown fault classes {unknown}; choose from {FAULT_CLASSES}")
    matrix = KillMatrix(
        verifiers=tuple(verifiers), faults=tuple(faults), seed=seed, backend=backend
    )
    root = np.random.default_rng(seed)
    for net in networks:
        rng = np.random.default_rng(root.integers(0, 2**31 - 1))
        applicable = _applicable_verifiers(net, verifiers, rng)
        for fault in faults:
            for mutant in sample_mutants(net, fault, rng, max_sites=sites_per_fault):
                caught = tuple(
                    name
                    for name in applicable
                    if verifiers[name](
                        mutant.network, net, np.random.default_rng(rng.integers(0, 2**31 - 1))
                    )
                )
                equivalent = False
                if not caught:
                    equivalent = semantically_equivalent(
                        mutant.network, net, np.random.default_rng(rng.integers(0, 2**31 - 1))
                    )
                matrix.trials.append(
                    FaultTrial(
                        origin=net.name,
                        fault=fault,
                        site=mutant.site,
                        caught_by=caught,
                        equivalent=equivalent,
                        applicable=applicable,
                    )
                )
    return matrix
