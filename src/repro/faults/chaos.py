"""Chaos layer: adverse conditions for the serving stack and the token sim.

PR 2's :class:`~repro.serve.service.CountingService` claims exactly-once
issuance as a *consequence of the counting property*; this module exercises
that claim under the failure modes a real deployment sees:

* **dropped batches** — the vectorized pass fails before or after values
  were issued (``drop-before`` is a clean rejection; ``drop-after`` loses
  issued values, which must be accounted, never silently reissued);
* **delayed completions** — slow consumers perturb batching windows;
* **duplicate deliveries** — an at-least-once client resubmits a request
  that already succeeded (the service must hand out *fresh* values);
* **mid-batch cancellation** — a waiter's task is cancelled while its
  request is queued or in flight (the batcher burns those values; they must
  show up as accounted losses, not duplicates).

After the run, :func:`audit_exactly_once` closes the books: every issued
value is *delivered exactly once* or *attributably lost* (a known dropped
batch or a cancelled request).  Anything else is a typed
:class:`FaultEscape` in the report — there are no silent escapes by
construction, because the audit is total over ``[0, issued)``.

:func:`chaos_token_check` applies the same philosophy to the asynchronous
token simulator: drain a network under the adversarial ``chaos`` scheduler
and verify the quiescent counts still match the schedule-independent
prediction and the step property.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.network import Network
from ..serve.service import CountingService, ExactlyOnceError
from ..sim.count_sim import propagate_counts
from ..sim.token_sim import TokenSimulator
from ..verify.counting import step_mask

__all__ = [
    "InjectedFault",
    "FaultEscape",
    "ChaosService",
    "ChaosReport",
    "audit_exactly_once",
    "run_chaos",
    "run_shard_kill_chaos",
    "chaos_token_check",
]


class InjectedFault(RuntimeError):
    """A deliberately injected batch failure (what chaos looks like to a
    client: the request errors and may be retried)."""


@dataclass(frozen=True)
class FaultEscape:
    """One way the exactly-once accounting failed to close.

    ``kind`` is machine-matchable: ``duplicate-delivery`` (a value reached
    clients twice), ``lost-value-delivered`` (a value recorded as lost in a
    dropped batch was nevertheless delivered), ``out-of-range`` (a value
    outside ``[0, issued)``), ``unaccounted-gap`` (more values missing than
    dropped batches and cancellations can explain), ``step-violation``
    (token-sim quiescent counts broke the step property), or
    ``exactly-once-violation`` (the service's own batch validator tripped —
    see :class:`~repro.serve.service.ExactlyOnceError`).
    """

    kind: str
    detail: str
    values: tuple[int, ...] = ()

    def as_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "values": list(self.values[:16])}


@dataclass
class ChaosReport:
    """Books for one chaos run; ``exactly_once`` is the headline verdict."""

    requests: int = 0
    retries: int = 0
    issued: int = 0
    delivered: int = 0
    lost_to_drops: int = 0
    cancelled_requests: int = 0
    cancelled_tokens: int = 0
    injected: dict[str, int] = field(default_factory=dict)
    escapes: list[FaultEscape] = field(default_factory=list)
    seed: int = 0
    flight_dump: str | None = None

    @property
    def exactly_once(self) -> bool:
        return not self.escapes

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "retries": self.retries,
            "issued": self.issued,
            "delivered": self.delivered,
            "lost_to_drops": self.lost_to_drops,
            "cancelled_requests": self.cancelled_requests,
            "cancelled_tokens": self.cancelled_tokens,
            "injected": dict(self.injected),
            "escapes": [e.as_dict() for e in self.escapes],
            "exactly_once": self.exactly_once,
            "flight_dump": self.flight_dump,
        }


class ChaosService:
    """A :class:`CountingService` with seeded batch-level fault injection.

    Wraps the service's batcher via the public
    :meth:`~repro.serve.batching.Batcher.wrap_apply` seam:

    * with probability ``drop_before_rate`` a batch fails *before* the
      issuance pass runs — a clean whole-batch rejection, nothing issued;
    * with probability ``drop_after_rate`` a batch fails *after* values
      were issued — the values are recorded in :attr:`lost_values` and the
      clients see :class:`InjectedFault` (the nasty case: an at-least-once
      client will retry and must receive *fresh* values);
    * when ``corrupt_state_after`` is set, the service's issuance state
      (``_out_counts``) is silently perturbed just before that batch number
      runs — a true exactly-once violation that the service's own validator
      must catch as :class:`~repro.serve.service.ExactlyOnceError` (and,
      with obs on, flight-dump).  Unlike a stuck-balancer network this
      exercises the planned :class:`~repro.core.plan.PlanExecutor` path.

    The service lifecycle is delegated; use it as an async context manager
    exactly like the wrapped service.
    """

    def __init__(
        self,
        service: CountingService,
        *,
        drop_before_rate: float = 0.0,
        drop_after_rate: float = 0.0,
        corrupt_state_after: int | None = None,
        seed: int = 0,
    ) -> None:
        for name, rate in (("drop_before_rate", drop_before_rate), ("drop_after_rate", drop_after_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if corrupt_state_after is not None and corrupt_state_after < 1:
            raise ValueError("corrupt_state_after must be >= 1")
        self.service = service
        self.drop_before_rate = drop_before_rate
        self.drop_after_rate = drop_after_rate
        self.corrupt_state_after = corrupt_state_after
        self.corrupted = False
        self.rng = np.random.default_rng(seed)
        self.batches = 0
        self.dropped_before = 0
        self.dropped_after = 0
        self.lost_values: list[int] = []
        service._batcher.wrap_apply(self._inject)

    def _inject(self, original, requests):
        self.batches += 1
        if self.corrupt_state_after is not None and self.batches == self.corrupt_state_after:
            self.corrupted = True
            self.service._out_counts[0] += 1
        roll = float(self.rng.random())
        if roll < self.drop_before_rate:
            self.dropped_before += 1
            raise InjectedFault(f"injected drop-before (batch of {len(requests)})")
        results = original(requests)
        if roll < self.drop_before_rate + self.drop_after_rate:
            self.dropped_after += 1
            for chunk in results:
                self.lost_values.extend(int(v) for v in np.asarray(chunk).ravel())
            raise InjectedFault(f"injected drop-after (batch of {len(requests)})")
        return results

    # -- delegation ---------------------------------------------------------

    async def start(self) -> None:
        await self.service.start()

    async def stop(self) -> None:
        await self.service.stop()

    async def __aenter__(self) -> "ChaosService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    async def fetch_and_increment_many(self, n: int) -> list[int]:
        return await self.service.fetch_and_increment_many(n)

    @property
    def issued(self) -> int:
        return self.service.issued


def audit_exactly_once(
    issued: int,
    delivered: Sequence[int],
    lost_values: Sequence[int],
    cancelled_tokens: int,
) -> list[FaultEscape]:
    """Close the books: every value in ``[0, issued)`` must be delivered
    exactly once or attributably lost.  Returns the (ideally empty) list of
    typed escapes."""
    escapes: list[FaultEscape] = []
    delivered_arr = np.asarray(sorted(delivered), dtype=np.int64)
    dupes = delivered_arr[:-1][delivered_arr[1:] == delivered_arr[:-1]] if delivered_arr.size else delivered_arr
    if dupes.size:
        escapes.append(
            FaultEscape(
                "duplicate-delivery",
                f"{dupes.size} value(s) delivered more than once",
                tuple(int(v) for v in np.unique(dupes)[:16]),
            )
        )
    out_of_range = delivered_arr[(delivered_arr < 0) | (delivered_arr >= issued)]
    if out_of_range.size:
        escapes.append(
            FaultEscape(
                "out-of-range",
                f"{out_of_range.size} delivered value(s) outside [0, {issued})",
                tuple(int(v) for v in out_of_range[:16]),
            )
        )
    lost = set(int(v) for v in lost_values)
    both = lost.intersection(int(v) for v in delivered_arr)
    if both:
        escapes.append(
            FaultEscape(
                "lost-value-delivered",
                f"{len(both)} value(s) recorded lost in a dropped batch but also delivered",
                tuple(sorted(both)[:16]),
            )
        )
    accounted = set(int(v) for v in np.unique(delivered_arr)) | lost
    gaps = [v for v in range(issued) if v not in accounted]
    if len(gaps) > cancelled_tokens:
        escapes.append(
            FaultEscape(
                "unaccounted-gap",
                f"{len(gaps)} issued value(s) unaccounted for, but only "
                f"{cancelled_tokens} token(s) were cancelled",
                tuple(gaps[:16]),
            )
        )
    return escapes


async def _chaos_client(
    chaos: ChaosService,
    ops: int,
    rng: np.random.Generator,
    report: ChaosReport,
    delivered: list[int],
    *,
    delay_rate: float,
    dup_rate: float,
    cancel_rate: float,
    amount_max: int,
    max_retries: int = 4,
) -> None:
    for _ in range(ops):
        amount = int(rng.integers(1, amount_max + 1))
        if float(rng.random()) < delay_rate:
            report.injected["delay"] = report.injected.get("delay", 0) + 1
            await asyncio.sleep(float(rng.random()) * 0.002)
        report.requests += 1
        if float(rng.random()) < cancel_rate:
            report.injected["cancel"] = report.injected.get("cancel", 0) + 1
            task = asyncio.ensure_future(chaos.fetch_and_increment_many(amount))
            await asyncio.sleep(0)
            task.cancel()
            try:
                delivered.extend(await task)
            except asyncio.CancelledError:
                report.cancelled_requests += 1
                report.cancelled_tokens += amount
            except InjectedFault:
                pass  # the batch failed before the cancel landed; nothing issued to us
            continue
        for attempt in range(max_retries + 1):
            try:
                values = await chaos.fetch_and_increment_many(amount)
            except InjectedFault:
                report.retries += 1
                continue
            except ExactlyOnceError:
                # The service's own validator tripped: every waiter of the
                # bad batch sees this.  Don't retry — record once and stop
                # this client; the run-level audit turns it into an escape.
                report.injected["exactly_once_error"] = (
                    report.injected.get("exactly_once_error", 0) + 1
                )
                return
            delivered.extend(values)
            if float(rng.random()) < dup_rate:
                # At-least-once client: spurious resubmit after success.
                # The service must answer with fresh values.
                report.injected["dup_submit"] = report.injected.get("dup_submit", 0) + 1
                report.requests += 1
                try:
                    delivered.extend(await chaos.fetch_and_increment_many(amount))
                except InjectedFault:
                    report.retries += 1
            break


def run_chaos(
    service: CountingService,
    requests: int = 1000,
    clients: int = 16,
    seed: int = 0,
    *,
    drop_before_rate: float = 0.03,
    drop_after_rate: float = 0.02,
    delay_rate: float = 0.05,
    dup_rate: float = 0.02,
    cancel_rate: float = 0.03,
    amount_max: int = 3,
    corrupt_state_after: int | None = None,
    flight_dir=None,
) -> ChaosReport:
    """Drive ``service`` with ``requests`` chaotic operations and audit.

    ``clients`` concurrent workers issue ``requests`` total operations
    under seeded injections (see module docstring).  Returns the
    :class:`ChaosReport`; ``report.exactly_once`` is False iff the audit
    found a typed escape.

    ``corrupt_state_after`` injects a silent issuance-state corruption just
    before that batch number — the service's validator must convert it into
    an ``exactly-once-violation`` escape.  ``flight_dir`` arms the flight
    recorder: the run executes with observability captured, the service
    dumps its span ring there on the first violation (any escape without a
    dump takes one at audit time), and the dump path is attached to the
    report as ``flight_dump``.
    """
    report = ChaosReport(seed=seed)
    delivered: list[int] = []

    async def main() -> None:
        chaos = ChaosService(
            service,
            drop_before_rate=drop_before_rate,
            drop_after_rate=drop_after_rate,
            corrupt_state_after=corrupt_state_after,
            seed=seed,
        )
        root = np.random.default_rng(seed)
        per_client = [requests // clients] * clients
        for i in range(requests % clients):
            per_client[i] += 1
        async with chaos:
            results = await asyncio.gather(
                *(
                    _chaos_client(
                        chaos,
                        ops,
                        np.random.default_rng(root.integers(0, 2**31 - 1)),
                        report,
                        delivered,
                        delay_rate=delay_rate,
                        dup_rate=dup_rate,
                        cancel_rate=cancel_rate,
                        amount_max=amount_max,
                    )
                    for ops in per_client
                ),
                return_exceptions=True,
            )
        for res in results:
            if isinstance(res, ExactlyOnceError):
                report.injected["exactly_once_error"] = (
                    report.injected.get("exactly_once_error", 0) + 1
                )
            elif isinstance(res, BaseException):
                raise res
        report.issued = chaos.issued
        report.delivered = len(delivered)
        report.lost_to_drops = len(chaos.lost_values)
        report.injected["drop_before"] = chaos.dropped_before
        report.injected["drop_after"] = chaos.dropped_after
        if report.injected.get("exactly_once_error"):
            report.escapes.append(
                FaultEscape(
                    "exactly-once-violation",
                    f"{service.net.name}: batch validation failed "
                    f"({report.injected['exactly_once_error']} client(s) affected, "
                    f"corrupt_state_after={corrupt_state_after})",
                )
            )
        report.escapes.extend(
            audit_exactly_once(chaos.issued, delivered, chaos.lost_values, report.cancelled_tokens)
        )

    if flight_dir is not None:
        from .. import obs

        prev_flight_dir = service.flight_dir
        service.flight_dir = flight_dir
        try:
            with obs.capture():
                asyncio.run(main())
                if report.escapes and service.last_flight_dump is None:
                    from ..obs.flight import dump_flight

                    service.last_flight_dump = dump_flight(
                        "fault-escape", detail=report.escapes[0].kind, directory=flight_dir
                    )
        finally:
            service.flight_dir = prev_flight_dir
        if service.last_flight_dump is not None:
            report.flight_dump = str(service.last_flight_dump)
    else:
        asyncio.run(main())
    return report


def run_shard_kill_chaos(
    *,
    shards: int = 2,
    clients: int = 6,
    ops: int = 120,
    kills: int = 1,
    kill_after_s: float = 0.3,
    kill_spacing_s: float = 0.6,
    amount_max: int = 3,
    seed: int = 0,
    factors: Sequence[int] = (2, 2),
    wal_dir: str | None = None,
    flight_dir=None,
) -> ChaosReport:
    """SIGKILL shards under live cluster load and audit exactly-once.

    The process-level analogue of :func:`run_chaos`: a real
    :class:`~repro.cluster.Cluster` (``shards`` workers behind the line-mode
    router, supervised) is driven by ``clients`` reconnecting TCP clients
    while a chaos task ``kill -9``\\ s a seeded choice of shard ``kills``
    times.  The supervisor restarts each victim, which replays its
    write-ahead log before reopening its socket.

    The audit is the cluster form of "delivered exactly once or
    attributably lost": all delivered values distinct (a duplicate means
    WAL replay under-counted — the fatal escape), and per-residue-class
    gaps bounded by the risked-token budget.  A *gap* is a value a shard
    committed to its WAL but whose ack died with the process; every such
    value belongs to a request whose client saw the connection drop and
    retried, so ``gaps <= risked_requests * amount_max`` — anything beyond
    that is an ``unaccounted-gap`` escape (WAL replay over-counted).

    Returns a :class:`ChaosReport`; cluster facts land in ``injected``
    (``shard_kill``, ``restarts``, ``risked``, ``reconnects``).  With
    ``flight_dir`` set, any escape triggers a flight-recorder dump whose
    path is attached as ``flight_dump``.
    """
    import tempfile

    from ..cluster import Cluster, ClusterConfig
    from ..serve.batching import OverloadedError
    from ..serve.loadgen import TCPCounterClient, audit_values

    report = ChaosReport(seed=seed)
    delivered: list[int] = []
    rng = np.random.default_rng(seed)

    async def main(wal_dir: str) -> None:
        cfg = ClusterConfig(
            shards=shards,
            wal_dir=wal_dir,
            factors=tuple(factors),
            max_delay=0.0005,
            poll_interval=0.1,
            mode="line",
        )
        async with Cluster(cfg) as cluster:
            host, port = cluster.address
            stop = asyncio.Event()

            async def client_worker(i: int) -> None:
                client = await TCPCounterClient.connect(
                    host, port, reconnect=True, backoff_seed=seed + i, backoff_base=0.02
                )
                crng = np.random.default_rng(seed + 7919 * i)
                try:
                    for _ in range(ops):
                        amount = int(crng.integers(1, amount_max + 1))
                        report.requests += 1
                        try:
                            delivered.extend(await client.inc(amount))
                        except OverloadedError:
                            # A shard is down/restarting: clean, value-free
                            # rejection.  Back off and keep offering load.
                            report.retries += 1
                            await asyncio.sleep(0.02)
                finally:
                    report.injected["risked"] = report.injected.get("risked", 0) + client.risked
                    report.injected["reconnects"] = (
                        report.injected.get("reconnects", 0) + client.reconnects
                    )
                    await client.close()

            async def busiest_shard() -> int:
                """The shard with the most traffic — killing an idle shard
                would make the chaos vacuous (few clients can all hash to
                one shard).  Falls back to a seeded pick."""
                try:
                    probe = await TCPCounterClient.connect(host, port)
                    try:
                        st = await probe.stats()
                    finally:
                        await probe.close()
                    entries = [
                        e
                        for e in st.get("cluster", {}).get("shards", [])
                        if e.get("reachable")
                    ]
                    if entries:
                        return int(
                            max(entries, key=lambda e: e.get("submitted", 0))["shard_id"]
                        )
                except (OSError, ConnectionError):
                    pass
                return int(rng.integers(0, shards))

            async def chaos_task() -> None:
                await asyncio.sleep(kill_after_s)
                for k in range(kills):
                    if stop.is_set():
                        return
                    cluster.kill_shard(await busiest_shard())
                    report.injected["shard_kill"] = report.injected.get("shard_kill", 0) + 1
                    if k + 1 < kills:
                        await asyncio.sleep(kill_spacing_s)

            await asyncio.gather(*(client_worker(i) for i in range(clients)), chaos_task())
            stop.set()
            # Let the supervisor finish any in-flight restart, then wait for
            # every shard to answer STATS (alive != socket bound).
            for _ in range(200):
                if cluster.settled:
                    break
                await asyncio.sleep(0.05)
            stats: dict = {}
            for _ in range(100):
                probe = await TCPCounterClient.connect(host, port)
                try:
                    stats = await probe.stats()
                finally:
                    await probe.close()
                entries = stats.get("cluster", {}).get("shards", [])
                if entries and all(e.get("reachable") for e in entries):
                    break
                await asyncio.sleep(0.1)
            report.issued = int(stats.get("issued", 0))
            report.injected["restarts"] = cluster.restarts

        report.delivered = len(delivered)
        audit = audit_values(delivered, stride=shards)
        if audit["duplicates"]:
            dupes = sorted(
                {v for v in delivered if delivered.count(v) > 1} if len(delivered) < 10000 else []
            )
            report.escapes.append(
                FaultEscape(
                    "duplicate-delivery",
                    f"{audit['duplicates']} value(s) delivered more than once after "
                    f"{report.injected.get('shard_kill', 0)} shard kill(s) — WAL replay "
                    "under-counted",
                    tuple(dupes[:16]),
                )
            )
        budget = report.injected.get("risked", 0) * amount_max
        if audit["gap_total"] > budget:
            report.escapes.append(
                FaultEscape(
                    "unaccounted-gap",
                    f"{audit['gap_total']} missing value(s) but the risked-request "
                    f"budget only covers {budget} — WAL replay over-counted",
                )
            )
        report.lost_to_drops = audit["gap_total"]

    if wal_dir is not None:
        asyncio.run(main(wal_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            asyncio.run(main(tmp))

    if report.escapes and flight_dir is not None:
        from ..obs.flight import dump_flight

        report.flight_dump = str(
            dump_flight("fault-escape", detail=report.escapes[0].kind, directory=flight_dir)
        )
    return report


def chaos_token_check(
    net: Network, tokens: int | None = None, seed: int = 0
) -> FaultEscape | None:
    """Drain ``tokens`` round-robin tokens under the adversarial ``chaos``
    scheduler and check the quiescent counts.

    Verifies both halves of the counting-network story: the counts match
    the schedule-independent prediction of the batched token kernel
    (:func:`repro.sim.token_sim.quiescent_counts`), and they satisfy the
    step property.  Returns a typed escape or ``None``.
    """
    from ..core.sequences import make_step
    from ..sim.token_sim import quiescent_counts

    total = tokens if tokens is not None else 4 * net.width + 3
    x = make_step(net.width, total)
    sim = TokenSimulator(net, seed=seed)
    sim.inject(x)
    result = sim.run("chaos")
    predicted = quiescent_counts(net, x)
    if not np.array_equal(result.output_counts, predicted):
        return FaultEscape(
            "schedule-dependence",
            f"{net.name}: token-sim counts {result.output_counts.tolist()} != "
            f"quiescent prediction {predicted.tolist()} (seed {seed})",
        )
    if not bool(step_mask(result.output_counts[None, :])[0]):
        return FaultEscape(
            "step-violation",
            f"{net.name}: counts {result.output_counts.tolist()} break the step "
            f"property under the chaos scheduler (seed {seed})",
        )
    return None
