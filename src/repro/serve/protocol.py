"""Line protocol for the TCP counting server.

One request per line, one response line per request, ASCII, ``\\n``
terminated (a trailing ``\\r`` is tolerated).  Deliberately minimal — the
interesting machinery is the batching underneath, not the framing:

============================  ==============================================
Request                       Response
============================  ==============================================
``INC``                       ``OK <v>`` — one counter value
``INC <n>``                   ``OK <v0> <v1> ... <v(n-1)>`` — ``n`` values
``STATS``                     ``OK <json>`` — service stats, one JSON object
``PING``                      ``OK pong``
``METRICS``                   ``OK <nbytes>`` then ``nbytes`` of payload —
                              Prometheus text exposition
``FLIGHT``                    ``OK <nbytes>`` then ``nbytes`` of payload —
                              flight-recorder JSON, on demand
(anything else)               ``ERR bad-request <detail>``
(queue full)                  ``ERR overloaded <detail>``
(server bug)                  ``ERR internal <detail>``
============================  ==============================================

``METRICS`` and ``FLIGHT`` are the only multi-line responses; they are
framed by byte count (``OK <nbytes>\\n`` header, then exactly ``nbytes``
of body) so pipelined clients stay in sync without sniffing payload
content.  Responses are answered strictly in request order, so the framing
is unambiguous per verb.

The cluster router (:mod:`repro.cluster.router`) speaks exactly this
protocol and adds one error code: ``ERR throttled <detail>`` when a
client's token bucket is empty.  Clients decode it as
:class:`ThrottledError`, a subclass of
:class:`~repro.serve.batching.OverloadedError`, so retry/back-off logic
written for load shedding handles rate limiting unchanged.

``parse_request``/``encode_*`` are pure functions shared by the server and
the load-generator client, so both sides agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .batching import OverloadedError

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_AMOUNT",
    "ProtocolError",
    "ThrottledError",
    "Request",
    "parse_request",
    "encode_request",
    "encode_values",
    "encode_stats",
    "encode_error",
    "encode_payload",
    "parse_payload_header",
    "parse_response",
]

#: Hard cap on one protocol line; longer lines are a protocol error.
MAX_LINE_BYTES = 1 << 16

#: Hard cap on ``INC <n>`` — bounds per-request memory on the server.
MAX_AMOUNT = 1 << 20


class ProtocolError(ValueError):
    """A malformed request or response line."""


class ThrottledError(OverloadedError):
    """The router's per-client token bucket rejected the request."""


@dataclass(frozen=True)
class Request:
    """A parsed request: ``verb`` is ``inc``/``stats``/``ping``/``metrics``/``flight``."""

    verb: str
    amount: int = 1


def parse_request(line: str) -> Request:
    """Parse one request line (without the newline)."""
    parts = line.strip().split()
    if not parts:
        raise ProtocolError("empty request")
    verb = parts[0].upper()
    if verb == "INC":
        if len(parts) == 1:
            return Request("inc", 1)
        if len(parts) != 2:
            raise ProtocolError(f"INC takes at most one argument, got {len(parts) - 1}")
        try:
            amount = int(parts[1])
        except ValueError:
            raise ProtocolError(f"INC amount must be an integer, got {parts[1]!r}") from None
        if not 1 <= amount <= MAX_AMOUNT:
            raise ProtocolError(f"INC amount must be in [1, {MAX_AMOUNT}], got {amount}")
        return Request("inc", amount)
    if verb == "STATS" and len(parts) == 1:
        return Request("stats")
    if verb == "PING" and len(parts) == 1:
        return Request("ping")
    if verb == "METRICS" and len(parts) == 1:
        return Request("metrics")
    if verb == "FLIGHT" and len(parts) == 1:
        return Request("flight")
    raise ProtocolError(f"unknown request {line.strip()!r}")


def encode_request(amount: int = 1) -> bytes:
    """Client side: the ``INC`` line for ``amount`` values."""
    if amount == 1:
        return b"INC\n"
    return f"INC {amount}\n".encode("ascii")


def encode_values(values) -> bytes:
    """Server side: the ``OK`` line for a sequence of dispensed values."""
    return ("OK " + " ".join(str(int(v)) for v in values) + "\n").encode("ascii")


def encode_stats(stats: dict) -> bytes:
    """Server side: the ``OK`` line for a stats snapshot (compact JSON)."""
    import json

    return ("OK " + json.dumps(stats, separators=(",", ":")) + "\n").encode("ascii")


def encode_payload(body: bytes) -> bytes:
    """Server side: the byte-framed response for ``METRICS``/``FLIGHT``.

    ``OK <nbytes>\\n`` header followed by exactly ``nbytes`` of body.
    """
    return f"OK {len(body)}\n".encode("ascii") + body


def parse_payload_header(line: str) -> int:
    """Client side: the body byte count from an ``OK <nbytes>`` header.

    Raises the same errors as :func:`parse_response` on ``ERR`` lines.
    """
    line = line.strip()
    if line.startswith("OK"):
        body = line[2:].strip()
        try:
            n = int(body)
        except ValueError:
            raise ProtocolError(f"non-integer payload header: {body!r}") from None
        if n < 0:
            raise ProtocolError(f"negative payload length: {n}")
        return n
    parse_response(line)  # raises OverloadedError/ProtocolError for ERR lines
    raise ProtocolError(f"unparseable payload header: {line!r}")


def encode_error(code: str, message: str) -> bytes:
    """Server side: an ``ERR`` line (message flattened to one line)."""
    flat = " ".join(str(message).split()) or code
    return f"ERR {code} {flat}\n".encode("ascii", errors="replace")


def parse_response(line: str) -> list[int]:
    """Client side: decode an ``INC`` response into its values.

    Raises :class:`~repro.serve.batching.OverloadedError` for
    ``ERR overloaded``, :class:`ProtocolError` otherwise on any error.
    """
    line = line.strip()
    if line.startswith("OK"):
        body = line[2:].strip()
        try:
            return [int(tok) for tok in body.split()]
        except ValueError:
            raise ProtocolError(f"non-integer OK payload: {body!r}") from None
    if line.startswith("ERR"):
        parts = line.split(maxsplit=2)
        code = parts[1] if len(parts) > 1 else "unknown"
        detail = parts[2] if len(parts) > 2 else ""
        if code == "throttled":
            raise ThrottledError(detail or "rate limited")
        if code == "overloaded":
            raise OverloadedError(detail or "server overloaded")
        raise ProtocolError(f"server error {code}: {detail}")
    raise ProtocolError(f"unparseable response line: {line!r}")
