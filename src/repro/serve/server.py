"""Asyncio TCP front-end for :class:`~repro.serve.service.CountingService`.

Each client connection is handled by one coroutine reading request lines
(see :mod:`repro.serve.protocol`) and awaiting the service; requests from
*different* connections land in the same batcher queue, so concurrency
across connections is what drives batch sizes up.  Within one connection
requests are processed in order — clients wanting parallelism open several
connections (exactly what :class:`~repro.serve.loadgen.LoadGenerator`
does).

Overload is a *response*, not a disconnect: a rejected request yields
``ERR overloaded ...`` and the connection stays usable, so well-behaved
clients can back off and retry without re-handshaking.
"""

from __future__ import annotations

import asyncio

from ..obs import runtime as _obs
from .batching import OverloadedError
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode_error,
    encode_payload,
    encode_stats,
    encode_values,
    parse_request,
)
from .service import CountingService

__all__ = ["CountingServer"]


class CountingServer:
    """Serve a :class:`CountingService` over a TCP line protocol.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  The server owns the service lifecycle: ``start`` starts
    the batcher, ``stop`` drains and stops it.
    """

    def __init__(
        self,
        service: CountingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self.connections = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (only valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Start the service batcher and bind the listening socket."""
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)

    async def stop(self) -> None:
        """Close the listener, then drain and stop the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "CountingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        if _obs.enabled:
            from ..obs.metrics import default_registry

            default_registry().counter("serve.connections").inc()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ConnectionError:
                    return
                if not raw:  # EOF
                    return
                if len(raw) > MAX_LINE_BYTES:
                    writer.write(encode_error("bad-request", "line too long"))
                    await writer.drain()
                    return
                writer.write(await self._respond(raw))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, raw: bytes) -> bytes:
        """One request line in, one response out; never raises."""
        span = self._obs_request_begin() if _obs.enabled else None
        try:
            req = parse_request(raw.decode("ascii", errors="replace"))
        except ProtocolError as exc:
            if span is not None:
                self._obs_request_end(span, "bad-request")
            return encode_error("bad-request", str(exc))
        if span is not None:
            span.fields["verb"] = req.verb
            span.mark("parsed")
        try:
            if req.verb == "inc":
                if span is not None:
                    span.fields["amount"] = req.amount
                values = await self.service.fetch_and_increment_many(req.amount, span=span)
                out = encode_values(values)
            elif req.verb == "stats":
                out = encode_stats(self.service.stats())
            elif req.verb == "metrics":
                out = encode_payload(self._metrics_text().encode("ascii", errors="replace"))
            elif req.verb == "flight":
                out = encode_payload(self._flight_json())
            else:
                out = b"OK pong\n"
            if span is not None:
                self._obs_request_end(span, "ok")
            return out
        except OverloadedError as exc:
            if span is not None:
                self._obs_request_end(span, "shed")
            return encode_error("overloaded", str(exc))
        except Exception as exc:  # noqa: BLE001 — a bug must not kill the loop
            if span is not None:
                self._obs_request_end(span, "error")
            return encode_error("internal", f"{type(exc).__name__}: {exc}")

    # -- exposition -----------------------------------------------------------

    def _metrics_text(self) -> str:
        """Render the ``METRICS`` payload.

        A fresh mirror registry (always-maintained service/batcher/cache
        counters — meaningful even with obs off) is rendered first, then the
        process-global registry (hot-path histograms, only populated while
        obs is on); the mirror wins name collisions.
        """
        from ..obs.exposition import render_registries
        from ..obs.metrics import MetricsRegistry, default_registry

        mirror = MetricsRegistry()
        self.service.publish_metrics(mirror)
        mirror.gauge("obs.enabled").set(1.0 if _obs.enabled else 0.0)
        mirror.counter("serve.connections_total").inc(self.connections)
        registries = [mirror]
        if _obs.enabled:
            registries.append(default_registry())
        return render_registries(registries)

    def _flight_json(self) -> bytes:
        """Render the on-demand ``FLIGHT`` payload (current span ring)."""
        import json

        from ..obs.flight import flight_payload

        payload = flight_payload("on-demand", detail="FLIGHT verb")
        return (json.dumps(payload, default=str) + "\n").encode("ascii", errors="replace")

    # -- instrumentation (obs-on only) ----------------------------------------

    def _obs_request_begin(self):
        from ..obs.spans import default_span_recorder

        return default_span_recorder().start("request", origin="server")

    def _obs_request_end(self, span, status: str) -> None:
        from ..obs.metrics import DEFAULT_TIME_BUCKETS, default_registry
        from ..obs.spans import default_span_recorder

        span.mark("responded")
        dur = default_span_recorder().finish(span, status)
        reg = default_registry()
        reg.histogram("serve.request_seconds", DEFAULT_TIME_BUCKETS).observe(dur)
        if status == "shed":
            reg.counter("serve.shed").inc()
