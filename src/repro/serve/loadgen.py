"""Load generation for the counting service: open- and closed-loop clients.

Two canonical load models (Schroeder et al.'s open-vs-closed distinction):

* **closed loop** — ``clients`` workers, each issuing ``ops`` requests
  back-to-back; offered load adapts to service speed.  This is the model of
  the paper's cited shared-memory experiment [9] and of
  :class:`repro.sim.ContentionSimulator`.
* **open loop** — requests arrive on a *seeded Poisson schedule* at
  ``rate`` requests/second regardless of completions; overload shows up as
  rejected requests rather than falling throughput.

Both models run against an in-process :class:`CountingService`
(:meth:`LoadGenerator.run_service`) or a TCP server
(:meth:`LoadGenerator.run_tcp`, one connection per client).  The result is
a :class:`LoadReport` with throughput, latency percentiles, the server's
batch-size histogram, and the exactly-once verdict over every value the
clients received.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

import numpy as np

from .batching import OverloadedError
from .protocol import encode_request, parse_payload_header, parse_response
from .service import CountingService

__all__ = ["TCPCounterClient", "LoadReport", "LoadGenerator"]


class TCPCounterClient:
    """Minimal asyncio client for the line protocol (one connection)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "TCPCounterClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def inc(self, amount: int = 1) -> list[int]:
        """``INC <amount>`` → the dispensed values."""
        self._writer.write(encode_request(amount))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return parse_response(line.decode("ascii", errors="replace"))

    async def stats(self) -> dict:
        """``STATS`` → the server's stats snapshot."""
        import json

        self._writer.write(b"STATS\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        body = line.decode("ascii", errors="replace").strip()
        if not body.startswith("OK "):
            raise ConnectionError(f"unexpected STATS response: {body!r}")
        return json.loads(body[3:])

    async def _payload(self, verb: bytes) -> bytes:
        """Issue a byte-framed verb (``METRICS``/``FLIGHT``) and read its body."""
        self._writer.write(verb + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        nbytes = parse_payload_header(line.decode("ascii", errors="replace"))
        return await self._reader.readexactly(nbytes)

    async def metrics(self) -> str:
        """``METRICS`` → the Prometheus text exposition."""
        return (await self._payload(b"METRICS")).decode("ascii", errors="replace")

    async def flight(self) -> dict:
        """``FLIGHT`` → the on-demand flight-recorder payload."""
        import json

        return json.loads((await self._payload(b"FLIGHT")).decode("ascii", errors="replace"))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class LoadReport:
    """Everything one load run measured."""

    mode: str
    clients: int
    requests: int
    rejected: int
    values: list[int]
    latencies_s: np.ndarray
    duration_s: float
    service_stats: dict = field(default_factory=dict)
    seed: int = 0

    # -- derived ------------------------------------------------------------

    @property
    def tokens(self) -> int:
        return len(self.values)

    @property
    def throughput(self) -> float:
        """Dispensed values per second (nan for an empty run)."""
        if not self.duration_s or not self.values:
            return float("nan")
        return self.tokens / self.duration_s

    def latency_percentile(self, pct: float) -> float:
        if len(self.latencies_s) == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, pct))

    @property
    def distinct(self) -> bool:
        return len(set(self.values)) == len(self.values)

    @property
    def contiguous(self) -> bool:
        """Values form a gap-free range (from their own minimum)."""
        if not self.values:
            return False
        return self.distinct and max(self.values) - min(self.values) + 1 == len(self.values)

    @property
    def exactly_once(self) -> bool:
        """Every request got distinct values forming one contiguous range."""
        return self.contiguous

    def summary(self) -> dict:
        lat = self.latencies_s
        return {
            "mode": self.mode,
            "clients": self.clients,
            "requests": self.requests,
            "rejected": self.rejected,
            "tokens": self.tokens,
            "duration_s": round(self.duration_s, 6),
            "throughput": round(self.throughput, 3) if self.values else None,
            "latency_mean_s": round(float(lat.mean()), 9) if len(lat) else None,
            "latency_p50_s": round(self.latency_percentile(50), 9) if len(lat) else None,
            "latency_p99_s": round(self.latency_percentile(99), 9) if len(lat) else None,
            "latency_max_s": round(float(lat.max()), 9) if len(lat) else None,
            "mean_batch_size": self.service_stats.get("mean_batch_size"),
            "distinct": self.distinct,
            "contiguous": self.contiguous,
            "exactly_once": self.exactly_once,
            "first_value": min(self.values) if self.values else None,
            "seed": self.seed,
        }

    def bench_payload(self) -> dict:
        """The ``BENCH_serve.json`` body (sans envelope)."""
        return {
            "summary": self.summary(),
            "batch_size_hist": self.service_stats.get("batch_size_hist", {}),
            "service": self.service_stats,
        }


class LoadGenerator:
    """Seeded open-/closed-loop driver for a counting service.

    Parameters
    ----------
    mode:
        ``"closed"`` (default) or ``"open"``.
    clients:
        Closed loop: concurrent workers.  Open loop: connection-pool size
        for TCP targets (arrivals beyond the pool queue per connection).
    ops:
        Closed loop: requests *per client*.  Open loop: total requests.
    amount:
        Values requested per ``INC`` (vector requests stress splitting).
    rate:
        Open loop: mean arrival rate, requests/second (Poisson).
    seed:
        Seeds the arrival-schedule RNG; two runs with equal config and seed
        offer identical schedules.
    """

    def __init__(
        self,
        *,
        mode: str = "closed",
        clients: int = 16,
        ops: int = 50,
        amount: int = 1,
        rate: float = 2000.0,
        seed: int = 0,
    ) -> None:
        if mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
        if clients < 1 or ops < 1 or amount < 1:
            raise ValueError("clients, ops, and amount must be >= 1")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.mode = mode
        self.clients = clients
        self.ops = ops
        self.amount = amount
        self.rate = rate
        self.seed = seed

    # -- targets --------------------------------------------------------------

    async def run_service(self, service: CountingService) -> LoadReport:
        """Drive an in-process service (must already be started)."""
        submit = service.fetch_and_increment_many
        report = await self._drive(lambda _i: submit)
        report.service_stats = service.stats()
        return report

    async def run_tcp(self, host: str, port: int) -> LoadReport:
        """Drive a TCP server: one connection per client slot."""
        pool = [await TCPCounterClient.connect(host, port) for _ in range(self.clients)]
        locks = [asyncio.Lock() for _ in pool]

        def make_submit(i: int) -> Callable[[int], Awaitable[list[int]]]:
            client, lock = pool[i % len(pool)], locks[i % len(pool)]

            async def submit(amount: int) -> list[int]:
                async with lock:  # a connection carries one request at a time
                    return await client.inc(amount)

            return submit

        try:
            report = await self._drive(make_submit)
            report.service_stats = await pool[0].stats()
        finally:
            for c in pool:
                await c.close()
        return report

    # -- load models ------------------------------------------------------------

    async def _drive(self, make_submit) -> LoadReport:
        values: list[int] = []
        latencies: list[float] = []
        rejected = 0
        loop = asyncio.get_running_loop()

        async def one_request(submit) -> None:
            nonlocal rejected
            t0 = loop.time()
            try:
                got = await submit(self.amount)
            except OverloadedError:
                rejected += 1
                return
            latencies.append(loop.time() - t0)
            values.extend(got)

        t_start = time.perf_counter()
        if self.mode == "closed":

            async def worker(i: int) -> None:
                submit = make_submit(i)
                for _ in range(self.ops):
                    await one_request(submit)

            await asyncio.gather(*(worker(i) for i in range(self.clients)))
            requests = self.clients * self.ops
        else:
            rng = np.random.default_rng(self.seed)
            offsets = np.cumsum(rng.exponential(1.0 / self.rate, size=self.ops))
            start = loop.time()
            tasks = []
            for i in range(self.ops):
                delay = start + float(offsets[i]) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(loop.create_task(one_request(make_submit(i))))
            await asyncio.gather(*tasks)
            requests = self.ops
        duration = time.perf_counter() - t_start

        return LoadReport(
            mode=self.mode,
            clients=self.clients,
            requests=requests,
            rejected=rejected,
            values=values,
            latencies_s=np.asarray(latencies, dtype=np.float64),
            duration_s=duration,
            seed=self.seed,
        )
