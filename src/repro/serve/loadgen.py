"""Load generation for the counting service: open- and closed-loop clients.

Two canonical load models (Schroeder et al.'s open-vs-closed distinction):

* **closed loop** — ``clients`` workers, each issuing ``ops`` requests
  back-to-back; offered load adapts to service speed.  This is the model of
  the paper's cited shared-memory experiment [9] and of
  :class:`repro.sim.ContentionSimulator`.
* **open loop** — requests arrive on a *seeded Poisson schedule* at
  ``rate`` requests/second regardless of completions; overload shows up as
  rejected requests rather than falling throughput.

Both models run against an in-process :class:`CountingService`
(:meth:`LoadGenerator.run_service`) or a TCP server
(:meth:`LoadGenerator.run_tcp`, one connection per client).  The result is
a :class:`LoadReport` with throughput, latency percentiles, the server's
batch-size histogram, and the exactly-once verdict over every value the
clients received.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable

import numpy as np

from .batching import OverloadedError
from .protocol import encode_request, parse_payload_header, parse_response
from .service import CountingService

__all__ = [
    "TCPCounterClient",
    "LoadReport",
    "LoadGenerator",
    "audit_values",
    "run_multiprocess_tcp",
]

#: Errors that mean "the TCP peer went away" (a shard was killed, the
#: router dropped us) as opposed to a protocol-level rejection.
_CONN_ERRORS = (ConnectionError, BrokenPipeError, OSError, asyncio.IncompleteReadError, EOFError)


class TCPCounterClient:
    """Asyncio client for the line protocol (one connection).

    With ``reconnect=True`` (requires connecting via :meth:`connect` so the
    address is known), :meth:`inc` survives the peer dropping the
    connection — ``ConnectionResetError``/``BrokenPipeError``/EOF — by
    re-dialing with capped exponential backoff plus jitter and *retrying*
    the request.  A retried request is counted in :attr:`risked`: its
    first send may have reached a shard that committed values to the WAL
    before dying, so those values can resurface as *gaps* (never
    duplicates) in the cluster audit — :func:`audit_values` budgets gaps
    against exactly this counter.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str | None = None,
        port: int | None = None,
        reconnect: bool = False,
        max_retries: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_seed: int | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self.host = host
        self.port = port
        self.reconnect = reconnect
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = random.Random(backoff_seed)
        self.reconnects = 0
        self.risked = 0
        if reconnect and (host is None or port is None):
            raise ValueError("reconnect=True requires host and port")

    @classmethod
    async def connect(cls, host: str, port: int, **kwargs) -> "TCPCounterClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port, **kwargs)

    def backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff with jitter for retry ``attempt``."""
        delay = min(self.backoff_cap, self.backoff_base * (2**attempt))
        return delay * (0.5 + 0.5 * self._rng.random())

    async def _redial(self) -> None:
        """Re-open the connection, backing off between failed attempts."""
        for attempt in range(self.max_retries):
            await asyncio.sleep(self.backoff_delay(attempt))
            try:
                self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                continue
            self.reconnects += 1
            return
        raise ConnectionError(
            f"could not reconnect to {self.host}:{self.port} after {self.max_retries} attempts"
        )

    async def inc(self, amount: int = 1) -> list[int]:
        """``INC <amount>`` → the dispensed values (reconnecting if enabled)."""
        for _attempt in range(self.max_retries + 1):
            try:
                return await self._inc_once(amount)
            except _CONN_ERRORS:
                if not self.reconnect:
                    raise
                # The request line may have reached a shard that committed
                # before dying: the retry risks a gap, never a duplicate.
                self.risked += 1
                self._writer.close()
                await self._redial()
        raise ConnectionError(f"request failed after {self.max_retries} reconnects")

    async def _inc_once(self, amount: int) -> list[int]:
        self._writer.write(encode_request(amount))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return parse_response(line.decode("ascii", errors="replace"))

    async def stats(self) -> dict:
        """``STATS`` → the server's stats snapshot."""
        import json

        self._writer.write(b"STATS\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        body = line.decode("ascii", errors="replace").strip()
        if not body.startswith("OK "):
            raise ConnectionError(f"unexpected STATS response: {body!r}")
        return json.loads(body[3:])

    async def _payload(self, verb: bytes) -> bytes:
        """Issue a byte-framed verb (``METRICS``/``FLIGHT``) and read its body."""
        self._writer.write(verb + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        nbytes = parse_payload_header(line.decode("ascii", errors="replace"))
        return await self._reader.readexactly(nbytes)

    async def metrics(self) -> str:
        """``METRICS`` → the Prometheus text exposition."""
        return (await self._payload(b"METRICS")).decode("ascii", errors="replace")

    async def flight(self) -> dict:
        """``FLIGHT`` → the on-demand flight-recorder payload."""
        import json

        return json.loads((await self._payload(b"FLIGHT")).decode("ascii", errors="replace"))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def audit_values(values, stride: int = 1) -> dict:
    """The exactly-once audit over a set of dispensed values.

    A single server dispenses one contiguous range; a cluster of ``S``
    shards dispenses ``S`` interleaved residue classes, each contiguous
    *within its own class* (shard ``i`` serves ``i, i+S, i+2S, ...``).
    The audit therefore checks: all values distinct, and every residue
    class mod ``stride`` gap-free from its own minimum.  ``gap_total``
    counts missing values inside those spans — after a shard kill these
    are tokens committed to the WAL whose ack never reached a client, and
    the chaos harness budgets them against the clients' risked-request
    count (gaps are the benign failure mode; duplicates never are).
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    n = len(values)
    distinct = len(set(values)) == n
    classes: dict[int, dict] = {}
    gap_total = 0
    if values:
        by_class: dict[int, list[int]] = {}
        for v in values:
            by_class.setdefault(v % stride, []).append(v)
        for r, vs in sorted(by_class.items()):
            vs.sort()
            span = (vs[-1] - vs[0]) // stride + 1
            gaps = span - len(set(vs))
            gap_total += gaps
            classes[r] = {"n": len(vs), "min": vs[0], "max": vs[-1], "gaps": gaps}
    return {
        "n": n,
        "stride": stride,
        "distinct": distinct,
        "duplicates": n - len(set(values)),
        "classes": classes,
        "gap_total": gap_total,
        "exactly_once": bool(values) and distinct and gap_total == 0,
    }


@dataclass
class LoadReport:
    """Everything one load run measured."""

    mode: str
    clients: int
    requests: int
    rejected: int
    values: list[int]
    latencies_s: np.ndarray
    duration_s: float
    service_stats: dict = field(default_factory=dict)
    seed: int = 0
    stride: int = 1  # value-space stride (num_shards for a cluster target)
    risked: int = 0  # requests retried after a connection drop
    reconnects: int = 0

    # -- derived ------------------------------------------------------------

    @property
    def tokens(self) -> int:
        return len(self.values)

    @property
    def throughput(self) -> float:
        """Dispensed values per second (nan for an empty run)."""
        if not self.duration_s or not self.values:
            return float("nan")
        return self.tokens / self.duration_s

    def latency_percentile(self, pct: float) -> float:
        if len(self.latencies_s) == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, pct))

    def audit(self) -> dict:
        """The stride-aware exactly-once audit (see :func:`audit_values`)."""
        return audit_values(self.values, self.stride)

    @property
    def distinct(self) -> bool:
        return len(set(self.values)) == len(self.values)

    @property
    def contiguous(self) -> bool:
        """Values gap-free per residue class (one contiguous range at stride 1)."""
        if not self.values:
            return False
        return self.distinct and self.audit()["gap_total"] == 0

    @property
    def exactly_once(self) -> bool:
        """Every request got distinct values, gap-free per residue class."""
        return self.contiguous

    def summary(self) -> dict:
        lat = self.latencies_s
        return {
            "mode": self.mode,
            "clients": self.clients,
            "requests": self.requests,
            "rejected": self.rejected,
            "tokens": self.tokens,
            "duration_s": round(self.duration_s, 6),
            "throughput": round(self.throughput, 3) if self.values else None,
            "latency_mean_s": round(float(lat.mean()), 9) if len(lat) else None,
            "latency_p50_s": round(self.latency_percentile(50), 9) if len(lat) else None,
            "latency_p99_s": round(self.latency_percentile(99), 9) if len(lat) else None,
            "latency_max_s": round(float(lat.max()), 9) if len(lat) else None,
            "mean_batch_size": self.service_stats.get("mean_batch_size"),
            "distinct": self.distinct,
            "contiguous": self.contiguous,
            "exactly_once": self.exactly_once,
            "first_value": min(self.values) if self.values else None,
            "seed": self.seed,
            "stride": self.stride,
            "risked": self.risked,
            "reconnects": self.reconnects,
        }

    def bench_payload(self) -> dict:
        """The ``BENCH_serve.json`` body (sans envelope)."""
        return {
            "summary": self.summary(),
            "batch_size_hist": self.service_stats.get("batch_size_hist", {}),
            "service": self.service_stats,
        }


class LoadGenerator:
    """Seeded open-/closed-loop driver for a counting service.

    Parameters
    ----------
    mode:
        ``"closed"`` (default) or ``"open"``.
    clients:
        Closed loop: concurrent workers.  Open loop: connection-pool size
        for TCP targets (arrivals beyond the pool queue per connection).
    ops:
        Closed loop: requests *per client*.  Open loop: total requests.
    amount:
        Values requested per ``INC`` (vector requests stress splitting).
    rate:
        Open loop: mean arrival rate, requests/second (Poisson).
    seed:
        Seeds the arrival-schedule RNG; two runs with equal config and seed
        offer identical schedules.
    reconnect:
        TCP targets only: survive dropped connections by re-dialing with
        backoff and retrying (the chaos-under-load client behaviour).
    """

    def __init__(
        self,
        *,
        mode: str = "closed",
        clients: int = 16,
        ops: int = 50,
        amount: int = 1,
        rate: float = 2000.0,
        seed: int = 0,
        reconnect: bool = False,
    ) -> None:
        if mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
        if clients < 1 or ops < 1 or amount < 1:
            raise ValueError("clients, ops, and amount must be >= 1")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.mode = mode
        self.clients = clients
        self.ops = ops
        self.amount = amount
        self.rate = rate
        self.seed = seed
        self.reconnect = reconnect

    # -- targets --------------------------------------------------------------

    async def run_service(self, service: CountingService) -> LoadReport:
        """Drive an in-process service (must already be started)."""
        submit = service.fetch_and_increment_many
        report = await self._drive(lambda _i: submit)
        report.service_stats = service.stats()
        return report

    async def run_tcp(self, host: str, port: int) -> LoadReport:
        """Drive a TCP server: one connection per client slot.

        The target may be a single :class:`CountingServer` or a cluster
        router — the report's ``stride`` is auto-detected from the
        target's ``STATS`` so the exactly-once audit fits either.
        """
        pool = [
            await TCPCounterClient.connect(
                host, port, reconnect=self.reconnect, backoff_seed=self.seed + i
            )
            for i in range(self.clients)
        ]
        locks = [asyncio.Lock() for _ in pool]

        def make_submit(i: int) -> Callable[[int], Awaitable[list[int]]]:
            client, lock = pool[i % len(pool)], locks[i % len(pool)]

            async def submit(amount: int) -> list[int]:
                async with lock:  # a connection carries one request at a time
                    return await client.inc(amount)

            return submit

        try:
            report = await self._drive(make_submit)
            report.risked = sum(c.risked for c in pool)
            report.reconnects = sum(c.reconnects for c in pool)
            try:
                report.service_stats = await pool[0].stats()
            except _CONN_ERRORS:
                report.service_stats = {}
            report.stride = _stride_from_stats(report.service_stats)
        finally:
            for c in pool:
                await c.close()
        return report

    # -- load models ------------------------------------------------------------

    async def _drive(self, make_submit) -> LoadReport:
        values: list[int] = []
        latencies: list[float] = []
        rejected = 0
        loop = asyncio.get_running_loop()

        async def one_request(submit) -> None:
            nonlocal rejected
            t0 = loop.time()
            try:
                got = await submit(self.amount)
            except OverloadedError:
                rejected += 1
                return
            latencies.append(loop.time() - t0)
            values.extend(got)

        t_start = time.perf_counter()
        if self.mode == "closed":

            async def worker(i: int) -> None:
                submit = make_submit(i)
                for _ in range(self.ops):
                    await one_request(submit)

            await asyncio.gather(*(worker(i) for i in range(self.clients)))
            requests = self.clients * self.ops
        else:
            rng = np.random.default_rng(self.seed)
            offsets = np.cumsum(rng.exponential(1.0 / self.rate, size=self.ops))
            start = loop.time()
            tasks = []
            for i in range(self.ops):
                delay = start + float(offsets[i]) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(loop.create_task(one_request(make_submit(i))))
            await asyncio.gather(*tasks)
            requests = self.ops
        duration = time.perf_counter() - t_start

        return LoadReport(
            mode=self.mode,
            clients=self.clients,
            requests=requests,
            rejected=rejected,
            values=values,
            latencies_s=np.asarray(latencies, dtype=np.float64),
            duration_s=duration,
            seed=self.seed,
        )


def _stride_from_stats(stats: dict) -> int:
    """The value-space stride a ``STATS`` payload implies (1 = single server)."""
    cluster = stats.get("cluster")
    if isinstance(cluster, dict) and cluster.get("value_stride"):
        return int(cluster["value_stride"])
    if stats.get("value_stride"):
        return int(stats["value_stride"])
    return 1


# -- multi-process load generation --------------------------------------------


def _mp_child(conn, host, port, kwargs) -> None:
    """Child entry: run one LoadGenerator and ship the raw measurements back."""
    try:
        gen = LoadGenerator(**kwargs)
        report = asyncio.run(gen.run_tcp(host, port))
        conn.send(
            {
                "values": report.values,
                "latencies": report.latencies_s.tolist(),
                "requests": report.requests,
                "rejected": report.rejected,
                "duration_s": report.duration_s,
                "risked": report.risked,
                "reconnects": report.reconnects,
                "stride": report.stride,
                "service_stats": report.service_stats,
            }
        )
    except Exception as exc:  # noqa: BLE001 — report child failure to parent
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def run_multiprocess_tcp(
    host: str,
    port: int,
    *,
    procs: int = 2,
    clients: int = 8,
    ops: int = 50,
    amount: int = 1,
    mode: str = "closed",
    rate: float = 2000.0,
    seed: int = 0,
    reconnect: bool = False,
    timeout: float = 600.0,
) -> LoadReport:
    """Drive one TCP target from ``procs`` OS processes and merge the reports.

    A single asyncio loop saturates around one core; a cluster needs
    *client-side* parallelism too, or the loadgen itself becomes the
    bottleneck it is trying to measure.  Each child runs an independent
    seeded :class:`LoadGenerator` (``seed + 1000 * i``); the merged report
    concatenates values and latencies, so the stride-aware exactly-once
    audit runs over *everything every process saw* — the cluster-level
    verdict, not a per-process one.
    """
    import multiprocessing

    if procs < 1:
        raise ValueError("procs must be >= 1")
    ctx = multiprocessing.get_context("spawn")
    children = []
    for i in range(procs):
        parent_end, child_end = ctx.Pipe(duplex=False)
        kwargs = dict(
            mode=mode,
            clients=clients,
            ops=ops,
            amount=amount,
            rate=rate,
            seed=seed + 1000 * i,
            reconnect=reconnect,
        )
        proc = ctx.Process(target=_mp_child, args=(child_end, host, port, kwargs), daemon=True)
        proc.start()
        child_end.close()
        children.append((proc, parent_end))

    results = []
    errors = []
    for proc, parent_end in children:
        if parent_end.poll(timeout):
            payload = parent_end.recv()
            if "error" in payload:
                errors.append(payload["error"])
            else:
                results.append(payload)
        else:
            errors.append(f"loadgen worker pid={proc.pid} timed out")
            proc.kill()
        parent_end.close()
        proc.join(timeout=10)
    if errors:
        raise RuntimeError("; ".join(errors))

    values: list[int] = []
    latencies: list[float] = []
    for r in results:
        values.extend(r["values"])
        latencies.extend(r["latencies"])
    return LoadReport(
        mode=mode,
        clients=procs * clients,
        requests=sum(r["requests"] for r in results),
        rejected=sum(r["rejected"] for r in results),
        values=values,
        latencies_s=np.asarray(latencies, dtype=np.float64),
        duration_s=max((r["duration_s"] for r in results), default=0.0),
        service_stats=results[0]["service_stats"] if results else {},
        seed=seed,
        stride=max((r["stride"] for r in results), default=1),
        risked=sum(r["risked"] for r in results),
        reconnects=sum(r["reconnects"] for r in results),
    )
