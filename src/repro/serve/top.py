"""``repro top`` — a live terminal dashboard for a running counting server.

Polls ``STATS`` (always-on service counters) and ``METRICS`` (Prometheus
exposition) over one TCP connection and renders a small refreshing panel:
throughput, request-latency p50/p99, queue depth, shed rate, batch
coalescing, and plan-cache hit rate.  Rates are computed from successive
samples (deltas over the poll interval), so the display shows *current*
behaviour, not lifetime averages.

Rendering is a pure function (:func:`render_frame`) over two
:class:`TopSample` snapshots — the tests drive it with synthetic samples
and never open a socket.  Latency percentiles come from the scraped
``repro_serve_request_seconds`` histogram via
:func:`~repro.obs.exposition.percentile_from_buckets`, clamped by the
exported ``_max`` gauge so the p99 line is always finite; when the server
runs with observability off the latency rows degrade to ``n/a`` while the
always-on rows keep updating.
"""

from __future__ import annotations

import asyncio
import time

from ..obs.exposition import histogram_from_samples, parse_prometheus, percentile_from_buckets
from .loadgen import TCPCounterClient

__all__ = ["TopSample", "sample_server", "render_frame", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


class TopSample:
    """One poll: wall-clock time, STATS snapshot, parsed METRICS series."""

    def __init__(self, t: float, stats: dict, series: dict | None = None):
        self.t = t
        self.stats = stats
        self.series = series or {}

    def histogram(self, base: str):
        """(bounds, cumulative, sum, count) for a scraped histogram, or None."""
        return histogram_from_samples(self.series, base)

    def gauge(self, name: str, default: float | None = None) -> float | None:
        entry = self.series.get(name)
        if entry is None or not entry["samples"]:
            return default
        return entry["samples"][0][1]


async def sample_server(client: TCPCounterClient) -> TopSample:
    """Take one sample over an established connection."""
    stats = await client.stats()
    try:
        series = parse_prometheus(await client.metrics())
    except (ValueError, ConnectionError):
        series = {}
    return TopSample(time.perf_counter(), stats, series)


def _rate(prev: TopSample, cur: TopSample, key: str) -> float:
    dt = cur.t - prev.t
    if dt <= 0:
        return float("nan")
    return (cur.stats.get(key, 0) - prev.stats.get(key, 0)) / dt


def _fmt_num(v, unit: str = "", na: str = "n/a") -> str:
    if v is None:
        return na
    try:
        f = float(v)
    except (TypeError, ValueError):
        return na
    if f != f:  # nan
        return na
    if abs(f) >= 1000:
        return f"{f:,.0f}{unit}"
    if abs(f) >= 1:
        return f"{f:.1f}{unit}"
    return f"{f:.4g}{unit}"


def _fmt_latency(seconds) -> str:
    if seconds is None or seconds != seconds:
        return "n/a"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def render_frame(prev: TopSample, cur: TopSample) -> str:
    """Render one dashboard frame from two consecutive samples."""
    st = cur.stats
    net = st.get("network", {})
    lines = [
        f"repro top — {net.get('name', '?')} "
        f"(width {net.get('width', '?')}, depth {net.get('depth', '?')})",
        "",
    ]

    throughput = _rate(prev, cur, "issued")
    req_rate = _rate(prev, cur, "submitted")
    shed_rate = _rate(prev, cur, "rejected")
    offered = (req_rate or 0) + (shed_rate or 0)
    shed_pct = (
        100.0 * shed_rate / offered if shed_rate == shed_rate and offered > 0 else None
    )

    p50 = p99 = None
    hist = cur.histogram("repro_serve_request_seconds")
    if hist is not None:
        bounds, cum, _, total = hist
        if total > 0:
            mx = cur.gauge("repro_serve_request_seconds_max")
            p50 = percentile_from_buckets(bounds, cum, 50, max_value=mx)
            p99 = percentile_from_buckets(bounds, cum, 99, max_value=mx)

    cache = st.get("cache") or {}
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    hit_rate = 100.0 * cache.get("hits", 0) / lookups if lookups else None

    ex = st.get("executor") or {}
    touches = ex.get("buffer_allocs", 0) + ex.get("buffer_reuses", 0)
    reuse_pct = 100.0 * ex.get("buffer_reuses", 0) / touches if touches else None

    rows = [
        ("throughput", f"{_fmt_num(throughput, ' tok/s')}"),
        ("requests", f"{_fmt_num(req_rate, ' req/s')}"),
        ("latency p50", _fmt_latency(p50)),
        ("latency p99", _fmt_latency(p99)),
        ("queue depth", f"{st.get('queue_depth', 0)} / {st.get('queue_limit', '?')}"),
        ("shed rate", _fmt_num(shed_pct, "%") if shed_pct is not None else "0%"),
        ("batch size", _fmt_num(st.get("mean_batch_size"), " (mean)")),
        ("issued total", f"{st.get('issued', 0):,}"),
        ("cache hits", _fmt_num(hit_rate, "%") if hit_rate is not None else "n/a"),
        ("buffer reuse", _fmt_num(reuse_pct, "%") if reuse_pct is not None else "n/a"),
    ]
    width = max(len(label) for label, _ in rows)
    lines.extend(f"  {label:<{width}}  {value}" for label, value in rows)
    if "cluster" in st:
        lines.extend(_cluster_rows(prev, cur))
    if not cur.series:
        lines.append("")
        lines.append("  (METRICS histograms empty — start the server with REPRO_OBS=1)")
    return "\n".join(lines) + "\n"


def _cluster_rows(prev: TopSample, cur: TopSample) -> list[str]:
    """Per-shard rows for a cluster router target.

    The aggregate panel above already sums the shards; these rows break the
    same quantities out per shard (rates from successive samples, p99 from
    the router's per-shard scrape) plus supervisor facts (up, restarts).
    Falls back cleanly: a single-process server has no ``cluster`` key and
    never reaches here.
    """
    cluster = cur.stats.get("cluster", {})
    shards = cluster.get("shards", [])
    prev_shards = {
        s.get("shard_id"): s for s in prev.stats.get("cluster", {}).get("shards", [])
    }
    dt = cur.t - prev.t
    router = cluster.get("router", {})
    lines = [
        "",
        f"  cluster: {cluster.get('num_shards', '?')} shards, "
        f"router mode={router.get('mode', '?')}, "
        f"throttled={router.get('throttled', 0)}, "
        f"shard errors={router.get('shard_errors', 0)}",
        f"  {'shard':>5}  {'state':<7} {'req/s':>9}  {'queue':>9}  {'shed':>7}  "
        f"{'p99':>8}  {'restarts':>8}",
    ]
    for s in shards:
        sid = s.get("shard_id")
        p = prev_shards.get(sid, {})
        if dt > 0 and "submitted" in s and "submitted" in p:
            rate = (s.get("submitted", 0) - p.get("submitted", 0)) / dt
            shed = (s.get("rejected", 0) - p.get("rejected", 0)) / dt
        else:
            rate = shed = float("nan")
        state = "up" if s.get("up", s.get("reachable")) else "DOWN"
        queue = f"{s.get('queue_depth', '?')}/{s.get('queue_limit', '?')}"
        lines.append(
            f"  {sid:>5}  {state:<7} {_fmt_num(rate):>9}  {queue:>9}  "
            f"{_fmt_num(shed):>7}  {_fmt_latency(s.get('request_p99_s')):>8}  "
            f"{s.get('restarts', 0):>8}"
        )
    return lines


async def run_top(
    host: str,
    port: int,
    *,
    interval: float = 1.0,
    iterations: int = 0,
    clear: bool = True,
    out=None,
) -> int:
    """Poll and render until interrupted (``iterations=0`` means forever).

    Returns the number of frames rendered; prints a connection error and
    returns what was rendered so far if the server goes away.
    """
    import sys

    out = out if out is not None else sys.stdout
    frames = 0
    try:
        client = await TCPCounterClient.connect(host, port)
    except OSError as exc:
        print(f"repro top: cannot connect to {host}:{port}: {exc}", file=out)
        return 0
    try:
        prev = await sample_server(client)
        while iterations == 0 or frames < iterations:
            await asyncio.sleep(interval)
            cur = await sample_server(client)
            frame = render_frame(prev, cur)
            if clear:
                out.write(_CLEAR)
            out.write(frame)
            out.flush()
            prev = cur
            frames += 1
    except (ConnectionError, asyncio.IncompleteReadError):
        print("repro top: server closed the connection", file=out)
    finally:
        await client.close()
    return frames
