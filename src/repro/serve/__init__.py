"""Serving layer: a concurrent counting service with batching & backpressure.

The paper builds counting networks because they make *low-contention shared
counters*; this package turns the repo's compiled networks into an actual
service.  Pieces:

* :mod:`repro.serve.batching` — :class:`Batcher`, the asyncio micro-batcher
  (``max_batch`` / ``max_delay`` coalescing, bounded queue, load-shedding
  :class:`OverloadedError`);
* :mod:`repro.serve.service` — :class:`CountingService`, exactly-once
  ``fetch_and_increment`` over a counting network via vectorized
  quiescent-count batches;
* :mod:`repro.serve.protocol` — the TCP line protocol (``INC`` / ``STATS``
  / ``PING`` / ``METRICS`` / ``FLIGHT``) shared by server and client;
* :mod:`repro.serve.server` — :class:`CountingServer`, the asyncio TCP
  front-end;
* :mod:`repro.serve.loadgen` — :class:`LoadGenerator` (seeded open-/
  closed-loop load) and :class:`LoadReport`;
* :mod:`repro.serve.top` — the ``repro top`` live terminal dashboard
  (throughput, p50/p99, queue depth, shed and cache-hit rates; per-shard
  rows when pointed at a cluster router).

The multi-process flavour of all of this — sharded workers behind a
consistent-hash router, with write-ahead durability — lives in
:mod:`repro.cluster` and speaks this exact protocol.

Quickstart::

    import asyncio
    from repro import k_network
    from repro.serve import CountingService

    async def main():
        async with CountingService(k_network([2, 3])) as svc:
            vals = await asyncio.gather(*(svc.fetch_and_increment() for _ in range(12)))
            assert sorted(vals) == list(range(12))

    asyncio.run(main())

From the shell: ``python -m repro serve`` and ``python -m repro loadgen``
(see ``docs/serving.md``).
"""

from .batching import Batcher, BatcherStats, OverloadedError
from .loadgen import (
    LoadGenerator,
    LoadReport,
    TCPCounterClient,
    audit_values,
    run_multiprocess_tcp,
)
from .protocol import ProtocolError, Request, ThrottledError, parse_request, parse_response
from .server import CountingServer
from .service import CountingService, ExactlyOnceError
from .top import TopSample, render_frame, run_top

__all__ = [
    "TopSample",
    "render_frame",
    "run_top",
    "Batcher",
    "BatcherStats",
    "OverloadedError",
    "CountingService",
    "ExactlyOnceError",
    "CountingServer",
    "ProtocolError",
    "ThrottledError",
    "Request",
    "parse_request",
    "parse_response",
    "LoadGenerator",
    "LoadReport",
    "TCPCounterClient",
    "audit_values",
    "run_multiprocess_tcp",
]
