"""Asyncio micro-batching with bounded-queue backpressure.

The serving layer's throughput story rests on *coalescing*: many concurrent
``fetch_and_increment`` requests become one vectorized pass over the
compiled network (one ``propagate_counts`` call per batch instead of one
lock-protected traversal per token).  :class:`Batcher` is the generic
engine: callers :meth:`~Batcher.submit` requests, a single worker task
drains the queue into batches of at most ``max_batch`` items, waiting at
most ``max_delay`` seconds after the first item of a batch for company, and
applies the caller's ``apply_batch`` function to each batch.

Backpressure is load-shedding, not blocking: the queue holds at most
``queue_limit`` pending requests and :meth:`~Batcher.submit` raises
:class:`OverloadedError` immediately when it is full.  A rejected request
has no side effects — the caller can retry, back off, or surface the error.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs import runtime as _obs

__all__ = ["OverloadedError", "BatcherStats", "Batcher"]


class OverloadedError(RuntimeError):
    """The pending-request queue is full; the request was rejected."""


@dataclass
class BatcherStats:
    """Counters maintained by a :class:`Batcher` across its lifetime.

    ``batch_size_hist`` maps batch size (requests coalesced into one
    ``apply_batch`` call) to the number of batches of that size.
    """

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    batches: int = 0
    batch_size_hist: dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per batch (nan before the first batch)."""
        if not self.batches:
            return float("nan")
        return sum(s * n for s, n in self.batch_size_hist.items()) / self.batches

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_hist": {str(k): v for k, v in sorted(self.batch_size_hist.items())},
        }


class Batcher:
    """Coalesce concurrent submissions into bounded batches.

    ``apply_batch`` receives the list of submitted request objects and must
    return one result per request, in order; it runs on the event loop (the
    serving use case is vectorized numpy, which releases nothing and
    finishes in microseconds).  If it raises, every request of that batch
    receives the exception.

    The batcher must be started (``await batcher.start()`` or
    ``async with batcher:``) before :meth:`submit` is called.
    """

    def __init__(
        self,
        apply_batch: Callable[[list[Any]], Sequence[Any]],
        *,
        max_batch: int = 64,
        max_delay: float = 0.001,
        queue_limit: int = 1024,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self._apply = apply_batch
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.queue_limit = int(queue_limit)
        self.stats = BatcherStats()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self._worker: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the drain worker (idempotent)."""
        if self._worker is None:
            self._closed = False
            self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop accepting work, drain what is queued, and join the worker."""
        if self._worker is None:
            return
        self._closed = True
        # Sentinel wakes the worker even when the queue is empty.  The queue
        # may be full of real work; put_nowait would raise, so use put().
        await self._queue.put(_STOP)
        await self._worker
        self._worker = None

    async def __aenter__(self) -> "Batcher":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._worker is not None and not self._worker.done()

    def wrap_apply(
        self, wrapper: Callable[[Callable[[list[Any]], Sequence[Any]], list[Any]], Sequence[Any]]
    ) -> None:
        """Install ``wrapper(original_apply, requests)`` around the batch
        function — the documented interception seam for fault injection and
        tests (see :mod:`repro.faults.chaos`).

        The wrapper runs on the worker exactly like ``apply_batch``: it may
        call the original zero, one or several times, or raise to fail the
        whole batch.  Wrappers compose (each call wraps the current chain).
        """
        original = self._apply
        self._apply = lambda requests: wrapper(original, requests)

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (waiting for a batch slot)."""
        return self._queue.qsize()

    # -- submission ---------------------------------------------------------

    async def submit(self, request: Any, span: Any | None = None) -> Any:
        """Enqueue ``request`` and await its result.

        ``span`` (optional, obs-on only) is the caller's request span: it
        rides the queue alongside the request so the worker can link it to
        the batch that serves it and measure queue wait.  Raises
        :class:`OverloadedError` immediately if the queue is full, and
        ``RuntimeError`` if the batcher is not running.
        """
        if self._closed or self._worker is None:
            raise RuntimeError("batcher is not running; call start() first")
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, fut, span))
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise OverloadedError(
                f"pending queue full ({self.queue_limit} requests); retry later"
            ) from None
        self.stats.submitted += 1
        if span is not None:
            span.mark("enqueued")
        return await fut

    # -- worker -------------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            # Drain whatever is already queued, then (if still under
            # max_batch and a delay budget exists) linger for stragglers.
            stop = self._drain_available(batch)
            if not stop and len(batch) < self.max_batch and self.max_delay > 0:
                stop = await self._linger(batch, loop)
            self._dispatch(batch)
            if stop:
                return

    def _drain_available(self, batch: list) -> bool:
        """Move already-queued items into ``batch``; True if _STOP was hit."""
        while len(batch) < self.max_batch and not self._queue.empty():
            item = self._queue.get_nowait()
            if item is _STOP:
                return True
            batch.append(item)
        return False

    async def _linger(self, batch: list, loop: asyncio.AbstractEventLoop) -> bool:
        """Wait up to ``max_delay`` (from now) for more items; True on _STOP."""
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            timeout = deadline - loop.time()
            if timeout <= 0:
                return False
            try:
                item = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                return False
            if item is _STOP:
                return True
            batch.append(item)
        return False

    def _dispatch(self, batch: list) -> None:
        """Apply one batch and complete its futures."""
        requests = [req for req, _, _ in batch]
        self.stats.batches += 1
        size = len(batch)
        self.stats.batch_size_hist[size] = self.stats.batch_size_hist.get(size, 0) + 1
        bspan = self._obs_batch_begin(batch) if _obs.enabled else None
        try:
            results = self._apply(requests)
        except Exception as exc:  # noqa: BLE001 — propagate to every waiter
            if bspan is not None:
                self._obs_batch_end(bspan, "error")
            for _, fut, _ in batch:
                if not fut.done():
                    fut.set_exception(exc)
            return
        if bspan is not None:
            self._obs_batch_end(bspan, "ok")
        if len(results) != size:
            err = RuntimeError(
                f"apply_batch returned {len(results)} results for {size} requests"
            )
            for _, fut, _ in batch:
                if not fut.done():
                    fut.set_exception(err)
            return
        for (_, fut, _), res in zip(batch, results):
            if not fut.done():  # waiter may have been cancelled
                fut.set_result(res)
        self.stats.completed += size

    # -- instrumentation (obs-on only; see repro.obs.spans) ------------------

    def _obs_batch_begin(self, batch: list):
        """Open a batch span, link waiting request spans to it, and publish
        it in the recorder's ``current_batch`` slot so the layers under
        ``apply_batch`` (service verify, plan executor) can attach to it."""
        from ..obs.metrics import DEFAULT_TIME_BUCKETS, default_registry
        from ..obs.spans import default_span_recorder

        rec = default_span_recorder()
        bspan = rec.start("batch", size=len(batch))
        qwait = default_registry().histogram("serve.queue_wait_seconds", DEFAULT_TIME_BUCKETS)
        for _, _, rspan in batch:
            if rspan is None:
                continue
            wait = rspan.mark("batched") - rspan.marks.get("enqueued", 0.0)
            qwait.observe(max(wait, 0.0))
            rspan.fields["batch_id"] = bspan.span_id
        rec.current_batch = bspan
        return bspan

    def _obs_batch_end(self, bspan, status: str) -> None:
        from ..obs.metrics import DEFAULT_TIME_BUCKETS, default_registry
        from ..obs.spans import default_span_recorder

        rec = default_span_recorder()
        rec.current_batch = None
        dur = rec.finish(bspan, status)
        default_registry().histogram("serve.batch_seconds", DEFAULT_TIME_BUCKETS).observe(dur)


_STOP = object()
