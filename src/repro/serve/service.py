"""An asyncio Fetch&Increment service backed by a counting network.

This is the serving-layer realization of the paper's thesis: a counting
network *is* a low-contention shared counter.  :class:`CountingService`
owns one network (built directly, or planned with
:func:`repro.analysis.plan_network`) and exposes ``fetch_and_increment``
over an async API; concurrent requests are coalesced by a
:class:`~repro.serve.batching.Batcher` into vectorized batches.

Batched issuance uses the quiescent-state identity that powers all the
repo's verification (see :mod:`repro.sim.count_sim`): tokens enter
round-robin, so after ``T`` total tokens the input count vector is the
step sequence ``make_step(w, T)`` and the per-wire output counts follow
from one :func:`propagate_counts` pass over the compiled network.  The
values dispensed by a batch of ``n`` tokens are, per output wire ``i``,
``i + w*k`` for each newly dispensed ``k`` — and because a counting
network's outputs have the step property, their union is *exactly* the
contiguous range ``[T, T+n)``.  Exactly-once issuance is therefore not a
locking discipline here; it is the counting property itself, and the
service re-verifies it on every batch (``validate=True``) so a non-counting
network is caught immediately rather than corrupting clients.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

import numpy as np

from ..core.network import Network
from ..core.plan import PlanExecutor, plan_executor
from ..core.sequences import make_step
from ..obs import runtime as _obs
from ..sim.count_sim import propagate_counts
from .batching import Batcher, BatcherStats, OverloadedError

__all__ = ["ExactlyOnceError", "CountingService", "OverloadedError"]


class ExactlyOnceError(RuntimeError):
    """A batch's dispensed values were not the expected contiguous range.

    Raised when the served network violates the counting property — e.g. a
    sorting-only or deliberately broken network was plugged in.  The batch
    that trips this is *not* issued.
    """


class CountingService:
    """Exactly-once ``fetch_and_increment`` over a counting network.

    Parameters
    ----------
    net:
        The backing network.  Must be a counting network for the
        exactly-once guarantee to hold; violations raise
        :class:`ExactlyOnceError` at issue time when ``validate`` is on.
    max_batch / max_delay / queue_limit:
        Batching and backpressure knobs, passed to
        :class:`~repro.serve.batching.Batcher`: at most ``max_batch``
        requests per vectorized pass, at most ``max_delay`` seconds of
        lingering after the first request of a batch, at most
        ``queue_limit`` requests pending before submissions are rejected
        with :class:`~repro.serve.batching.OverloadedError`.
    validate:
        Re-check per batch that dispensed values form the contiguous range
        ``[issued, issued + n)``.  Costs one O(n) comparison per batch.
    """

    def __init__(
        self,
        net: Network,
        *,
        max_batch: int = 64,
        max_delay: float = 0.001,
        queue_limit: int = 1024,
        validate: bool = True,
    ) -> None:
        self.net = net
        self.validate = bool(validate)
        self._total = 0
        self._out_counts = np.zeros(net.width, dtype=np.int64)
        self._wire_ids = np.arange(net.width, dtype=np.int64)
        # Long-lived executor over the network's flat plan: lowering happens
        # once here (not on the first request), and the scratch-buffer pool
        # makes steady-state issuance allocation-free.  Networks carrying
        # semantic fault overrides (FaultyNetwork) are not plannable — they
        # stay on propagate_counts' override path.
        self._executor: PlanExecutor | None = (
            None if getattr(net, "fault_overrides", None) else plan_executor(net)
        )
        self._batcher = Batcher(
            self._apply_batch,
            max_batch=max_batch,
            max_delay=max_delay,
            queue_limit=queue_limit,
        )

    @classmethod
    def from_plan(
        cls,
        width: int,
        max_balancer: int,
        family: str = "K",
        **kwargs,
    ) -> "CountingService":
        """Plan the shallowest in-budget family member and serve it.

        Accepts the same constraints as :func:`repro.analysis.plan_network`
        (the served width may be padded up when ``width`` has no in-budget
        factorization — padding is sound for counting).
        """
        from ..analysis.planner import plan_network

        plan = plan_network(width, max_balancer, family)
        return cls(plan.build(), **kwargs)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await self._batcher.start()

    async def stop(self) -> None:
        await self._batcher.stop()

    async def __aenter__(self) -> "CountingService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- async API ----------------------------------------------------------

    async def fetch_and_increment(self) -> int:
        """Take the next counter value (one token through the network)."""
        values = await self._batcher.submit(1)
        return int(values[0])

    async def fetch_and_increment_many(self, n: int) -> list[int]:
        """Take ``n`` values in one request (still one queue slot)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        values = await self._batcher.submit(int(n))
        return [int(v) for v in values]

    # -- introspection ------------------------------------------------------

    @property
    def issued(self) -> int:
        """Total values dispensed so far."""
        return self._total

    @property
    def batcher_stats(self) -> BatcherStats:
        return self._batcher.stats

    def stats(self) -> dict:
        """One JSON-friendly snapshot: network, issuance, batching."""
        return {
            "network": {
                "name": self.net.name,
                "width": self.net.width,
                "depth": self.net.depth,
                "size": self.net.size,
            },
            "issued": self._total,
            "queue_depth": self._batcher.queue_depth,
            "max_batch": self._batcher.max_batch,
            "max_delay": self._batcher.max_delay,
            "queue_limit": self._batcher.queue_limit,
            "executor": self._executor.scratch_stats() if self._executor else None,
            **self._batcher.stats.as_dict(),
        }

    # -- issuance core ------------------------------------------------------

    def issue_batch(self, n: int) -> np.ndarray:
        """Synchronously dispense the next ``n`` values (ascending).

        This is the vectorized kernel behind the async API; it is also
        usable directly from synchronous code (tests, benchmarks).  Not
        thread-safe — the async API serializes all calls on the batcher
        worker.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        w = self.net.width
        t0 = self._total
        t1 = t0 + n
        out_after = propagate_counts(self.net, make_step(w, t1))
        delta = out_after - self._out_counts
        if self.validate and (np.any(delta < 0) or int(delta.sum()) != n):
            raise ExactlyOnceError(
                f"{self.net.name}: batch of {n} produced per-wire deltas "
                f"summing to {int(delta.sum())}"
            )
        # Wire i dispenses values i + w*k for k in [out_before[i], out_after[i]).
        reps = np.repeat(self._wire_ids, delta)
        offs = np.arange(n, dtype=np.int64) - np.repeat(np.cumsum(delta) - delta, delta)
        values = np.sort(reps + w * (self._out_counts[reps] + offs))
        if self.validate and not np.array_equal(values, np.arange(t0, t1)):
            raise ExactlyOnceError(
                f"{self.net.name} is not serving exactly-once: batch after "
                f"{t0} tokens dispensed {values[:8].tolist()}... expected "
                f"[{t0}, {t1})"
            )
        self._total = t1
        self._out_counts = out_after
        return values

    def _apply_batch(self, amounts: list[int]) -> Sequence[np.ndarray]:
        """Batcher callback: one vectorized pass serves every request."""
        n = int(sum(amounts))
        values = self.issue_batch(n)
        if _obs.enabled:
            self._obs_record(len(amounts), n)
        bounds = np.cumsum(amounts[:-1])
        return np.split(values, bounds)

    def _obs_record(self, requests: int, tokens: int) -> None:
        """Publish one batch's accounting (only reached while obs is on)."""
        from ..obs.metrics import default_registry

        reg = default_registry()
        reg.counter("serve.batches").inc()
        reg.counter("serve.requests").inc(requests)
        reg.counter("serve.tokens").inc(tokens)
        reg.histogram("serve.batch_size", tuple(float(2**i) for i in range(11))).observe(
            requests
        )
