"""An asyncio Fetch&Increment service backed by a counting network.

This is the serving-layer realization of the paper's thesis: a counting
network *is* a low-contention shared counter.  :class:`CountingService`
owns one network (built directly, or planned with
:func:`repro.analysis.plan_network`) and exposes ``fetch_and_increment``
over an async API; concurrent requests are coalesced by a
:class:`~repro.serve.batching.Batcher` into vectorized batches.

Batched issuance uses the quiescent-state identity that powers all the
repo's verification (see :mod:`repro.sim.count_sim`): tokens enter
round-robin, so after ``T`` total tokens the input count vector is the
step sequence ``make_step(w, T)`` and the per-wire output counts follow
from one :func:`propagate_counts` pass over the compiled network.  The
values dispensed by a batch of ``n`` tokens are, per output wire ``i``,
``i + w*k`` for each newly dispensed ``k`` — and because a counting
network's outputs have the step property, their union is *exactly* the
contiguous range ``[T, T+n)``.  Exactly-once issuance is therefore not a
locking discipline here; it is the counting property itself, and the
service re-verifies it on every batch (``validate=True``) so a non-counting
network is caught immediately rather than corrupting clients.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

import numpy as np

from ..core.network import Network
from ..core.plan import PlanExecutor, plan_executor
from ..core.sequences import make_step
from ..obs import runtime as _obs
from ..sim.count_sim import propagate_counts
from .batching import Batcher, BatcherStats, OverloadedError

__all__ = ["ExactlyOnceError", "CountingService", "OverloadedError"]


class ExactlyOnceError(RuntimeError):
    """A batch's dispensed values were not the expected contiguous range.

    Raised when the served network violates the counting property — e.g. a
    sorting-only or deliberately broken network was plugged in.  The batch
    that trips this is *not* issued.
    """


class CountingService:
    """Exactly-once ``fetch_and_increment`` over a counting network.

    Parameters
    ----------
    net:
        The backing network.  Must be a counting network for the
        exactly-once guarantee to hold; violations raise
        :class:`ExactlyOnceError` at issue time when ``validate`` is on.
    max_batch / max_delay / queue_limit:
        Batching and backpressure knobs, passed to
        :class:`~repro.serve.batching.Batcher`: at most ``max_batch``
        requests per vectorized pass, at most ``max_delay`` seconds of
        lingering after the first request of a batch, at most
        ``queue_limit`` requests pending before submissions are rejected
        with :class:`~repro.serve.batching.OverloadedError`.
    validate:
        Re-check per batch that dispensed values form the contiguous range
        ``[issued, issued + n)``.  Costs one O(n) comparison per batch.
    value_base / value_stride:
        Affine transform applied to dispensed values: the ``k``-th token this
        service issues is handed out as ``value_base + value_stride * k``.
        The defaults (0, 1) are the plain counter.  A shard in a
        :mod:`repro.cluster` deployment serves ``value_base=shard_id`` and
        ``value_stride=num_shards`` so the shards jointly partition the
        integers by residue class — the same decomposition the paper applies
        to a counting network's output wires — and exactly-once across the
        cluster reduces to exactly-once per shard.  Validation always runs
        on the untransformed local values.
    commit:
        Optional durability hook ``commit(seq, total)`` called after a batch
        is issued and validated but *before* any waiter is acked — the
        append-before-ack point where :class:`repro.cluster.TokenWAL`
        records ``total`` (tokens issued so far).  If it raises, the batch's
        waiters all receive the error and the values count as lost (clients
        retry and get fresh ones); the hook is never retried for that batch.
    flight_dir:
        When set (and observability is on), the first
        :class:`ExactlyOnceError` this service raises writes a
        flight-recorder dump (see :mod:`repro.obs.flight`) into this
        directory before propagating; the path lands in
        :attr:`last_flight_dump`.
    """

    def __init__(
        self,
        net: Network,
        *,
        max_batch: int = 64,
        max_delay: float = 0.001,
        queue_limit: int = 1024,
        validate: bool = True,
        flight_dir=None,
        value_base: int = 0,
        value_stride: int = 1,
        commit=None,
    ) -> None:
        if value_stride < 1:
            raise ValueError("value_stride must be >= 1")
        if value_base < 0 or value_base >= value_stride:
            raise ValueError("value_base must be in [0, value_stride)")
        self.net = net
        self.validate = bool(validate)
        self.flight_dir = flight_dir
        self.value_base = int(value_base)
        self.value_stride = int(value_stride)
        self.commit = commit
        self._batch_seq = 0
        self.last_flight_dump = None
        self._flight_dumped = False
        self._total = 0
        self._out_counts = np.zeros(net.width, dtype=np.int64)
        self._wire_ids = np.arange(net.width, dtype=np.int64)
        # Long-lived executor over the network's flat plan: lowering happens
        # once here (not on the first request), and the scratch-buffer pool
        # makes steady-state issuance allocation-free.  Networks carrying
        # semantic fault overrides (FaultyNetwork) are not plannable — they
        # stay on propagate_counts' override path.
        self._executor: PlanExecutor | None = (
            None if getattr(net, "fault_overrides", None) else plan_executor(net)
        )
        self._batcher = Batcher(
            self._apply_batch,
            max_batch=max_batch,
            max_delay=max_delay,
            queue_limit=queue_limit,
        )

    @classmethod
    def from_plan(
        cls,
        width: int,
        max_balancer: int,
        family: str = "K",
        variant: str = "stock",
        **kwargs,
    ) -> "CountingService":
        """Plan the shallowest in-budget family member and serve it.

        Accepts the same constraints as :func:`repro.analysis.plan_network`
        (the served width may be padded up when ``width`` has no in-budget
        factorization — padding is sound for counting).  ``variant=
        "searched"`` plans and serves the searched-base construction.
        """
        from ..analysis.planner import plan_network

        plan = plan_network(width, max_balancer, family, variant=variant)
        return cls(plan.build(), **kwargs)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await self._batcher.start()

    async def stop(self) -> None:
        await self._batcher.stop()

    async def __aenter__(self) -> "CountingService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- async API ----------------------------------------------------------

    async def fetch_and_increment(self, *, span=None) -> int:
        """Take the next counter value (one token through the network)."""
        values = await self._submit(1, span)
        return int(values[0])

    async def fetch_and_increment_many(self, n: int, *, span=None) -> list[int]:
        """Take ``n`` values in one request (still one queue slot)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        values = await self._submit(int(n), span)
        return [int(v) for v in values]

    async def _submit(self, amount: int, span):
        """Submit through the batcher, minting a request span when needed.

        Callers with their own span (the TCP server) pass it through; bare
        in-process callers (tests, chaos clients) get a service-origin span
        so the request → batch → executor linkage exists without a server.
        """
        if span is None and _obs.enabled:
            from ..obs.spans import default_span_recorder

            rec = default_span_recorder()
            span = rec.start("request", verb="inc", amount=amount, origin="service")
            try:
                values = await self._batcher.submit(amount, span)
            except Exception:
                rec.finish(span, "error")
                raise
            rec.finish(span, "ok")
            return values
        return await self._batcher.submit(amount, span)

    # -- introspection ------------------------------------------------------

    @property
    def issued(self) -> int:
        """Total values dispensed so far (local token count, pre-transform)."""
        return self._total

    def restore(self, total: int) -> None:
        """Reset issuance state to ``total`` tokens already dispensed.

        This is the WAL-recovery entry point (see :mod:`repro.cluster.wal`):
        a restarted shard replays its log to the last durable token count and
        resumes issuing from there, never re-dispensing a value that could
        already have been acked.  The per-wire output counts are re-derived
        from the quiescent-state identity — ``total`` alone determines them —
        so no per-wire state needs logging.  Only valid while no batch is in
        flight (call before :meth:`start` or between batches).
        """
        if total < 0:
            raise ValueError("total must be >= 0")
        w = self.net.width
        self._total = int(total)
        self._out_counts = (
            propagate_counts(self.net, make_step(w, int(total)))
            if total
            else np.zeros(w, dtype=np.int64)
        )

    @property
    def batcher_stats(self) -> BatcherStats:
        return self._batcher.stats

    def stats(self) -> dict:
        """One JSON-friendly snapshot: network, issuance, batching, cache."""
        from ..core.cache import default_cache

        cache = default_cache().stats()
        return {
            "network": {
                "name": self.net.name,
                "width": self.net.width,
                "depth": self.net.depth,
                "size": self.net.size,
            },
            "issued": self._total,
            "value_base": self.value_base,
            "value_stride": self.value_stride,
            "queue_depth": self._batcher.queue_depth,
            "max_batch": self._batcher.max_batch,
            "max_delay": self._batcher.max_delay,
            "queue_limit": self._batcher.queue_limit,
            "executor": self._executor.scratch_stats() if self._executor else None,
            "cache": {k: cache[k] for k in ("hits", "misses", "stores", "corrupt")},
            **self._batcher.stats.as_dict(),
        }

    def publish_metrics(self, registry) -> None:
        """Mirror the always-maintained service stats into ``registry``.

        This is the scrape-time half of the ``METRICS`` verb: the counters
        here (issuance, batching, shed, executor buffers, plan cache) are
        plain attributes kept regardless of the obs switch, so a scrape is
        meaningful even with ``REPRO_OBS`` off; when obs is on the server
        renders the hot-path histograms from the default registry alongside.
        """
        from ..core.cache import default_cache

        registry.gauge("serve.queue_depth").set(self._batcher.queue_depth)
        registry.counter("serve.issued_total").inc(self._total)
        bs = self._batcher.stats
        registry.counter("serve.submitted_total").inc(bs.submitted)
        registry.counter("serve.shed_total").inc(bs.rejected)
        registry.counter("serve.completed_total").inc(bs.completed)
        registry.counter("serve.batches_total").inc(bs.batches)
        if bs.batches:
            registry.gauge("serve.mean_batch_size").set(bs.mean_batch_size)
        if self._executor is not None:
            registry.counter("plan.buffer_allocs_total").inc(self._executor.buffer_allocs)
            registry.counter("plan.buffer_reuses_total").inc(self._executor.buffer_reuses)
            registry.counter("plan.batches_total").inc(self._executor.batches)
        cache = default_cache().stats()
        for key in ("hits", "misses", "stores", "corrupt"):
            registry.counter(f"cache.{key}_total").inc(cache[key])
        registry.gauge("net.width").set(self.net.width)
        registry.gauge("net.depth").set(self.net.depth)

    # -- issuance core ------------------------------------------------------

    def issue_batch(self, n: int) -> np.ndarray:
        """Synchronously dispense the next ``n`` values (ascending).

        This is the vectorized kernel behind the async API; it is also
        usable directly from synchronous code (tests, benchmarks).  Not
        thread-safe — the async API serializes all calls on the batcher
        worker.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        w = self.net.width
        t0 = self._total
        t1 = t0 + n
        out_after = propagate_counts(self.net, make_step(w, t1))
        if _obs.enabled:
            self._obs_mark("executed")
        delta = out_after - self._out_counts
        if self.validate and (np.any(delta < 0) or int(delta.sum()) != n):
            raise self._exactly_once_error(
                f"{self.net.name}: batch of {n} produced per-wire deltas "
                f"summing to {int(delta.sum())}"
            )
        # Wire i dispenses values i + w*k for k in [out_before[i], out_after[i]).
        reps = np.repeat(self._wire_ids, delta)
        offs = np.arange(n, dtype=np.int64) - np.repeat(np.cumsum(delta) - delta, delta)
        values = np.sort(reps + w * (self._out_counts[reps] + offs))
        if self.validate and not np.array_equal(values, np.arange(t0, t1)):
            raise self._exactly_once_error(
                f"{self.net.name} is not serving exactly-once: batch after "
                f"{t0} tokens dispensed {values[:8].tolist()}... expected "
                f"[{t0}, {t1})"
            )
        self._total = t1
        self._out_counts = out_after
        if _obs.enabled:
            self._obs_mark("verified")
        if self.value_stride != 1 or self.value_base:
            return self.value_base + self.value_stride * values
        return values

    def _exactly_once_error(self, message: str) -> ExactlyOnceError:
        """Build the violation error, taking a flight dump first.

        The dump is written at most once per service, only while obs is on,
        and only when a dump directory was opted into (``flight_dir`` or the
        ``REPRO_FLIGHT_DIR`` environment variable) — a bare test tripping
        the validator must not litter the working directory.
        """
        import os

        if (
            _obs.enabled
            and not self._flight_dumped
            and (self.flight_dir is not None or os.environ.get("REPRO_FLIGHT_DIR"))
        ):
            self._flight_dumped = True
            from ..obs.flight import dump_flight

            try:
                self.last_flight_dump = dump_flight(
                    "exactly-once-violation", detail=message, directory=self.flight_dir
                )
            except OSError:
                self.last_flight_dump = None
        return ExactlyOnceError(message)

    def _obs_mark(self, name: str) -> None:
        """Stamp a phase boundary on the in-flight batch span, if any."""
        from ..obs.spans import default_span_recorder

        batch_span = default_span_recorder().current_batch
        if batch_span is not None:
            batch_span.mark(name)

    def _apply_batch(self, amounts: list[int]) -> Sequence[np.ndarray]:
        """Batcher callback: one vectorized pass serves every request."""
        n = int(sum(amounts))
        values = self.issue_batch(n)
        self._batch_seq += 1
        if self.commit is not None:
            # Append-before-ack: the durability hook sees the post-batch
            # token count before any waiter's future resolves.  A failure
            # here fails the whole batch — issued but unacked values are
            # lost, never silently handed out without a durable record.
            self.commit(self._batch_seq, self._total)
        if _obs.enabled:
            self._obs_record(len(amounts), n)
        bounds = np.cumsum(amounts[:-1])
        return np.split(values, bounds)

    def _obs_record(self, requests: int, tokens: int) -> None:
        """Publish one batch's accounting (only reached while obs is on)."""
        from ..obs.metrics import default_registry

        reg = default_registry()
        reg.counter("serve.batches").inc()
        reg.counter("serve.requests").inc(requests)
        reg.counter("serve.tokens").inc(tokens)
        reg.histogram("serve.batch_size", tuple(float(2**i) for i in range(11))).observe(
            requests
        )
