"""Factorization utilities for exploring the paper's network *family*.

Every multiplicative factorization ``w = p0 * ... * p(n-1)`` (factors >= 2,
not necessarily prime) yields a distinct counting network of width ``w``
(paper §1); factor *order* changes the wiring but not the depth, so the
family is indexed by multisets of factors.  These helpers enumerate them.
"""

from __future__ import annotations

from functools import lru_cache
from math import prod

__all__ = ["prime_factors", "divisors", "factorizations", "canonical", "balanced_factorization"]


def prime_factors(w: int) -> list[int]:
    """Prime factorization of ``w`` with multiplicity, ascending."""
    if w < 1:
        raise ValueError("w must be positive")
    out: list[int] = []
    d = 2
    while d * d <= w:
        while w % d == 0:
            out.append(d)
            w //= d
        d += 1 if d == 2 else 2
    if w > 1:
        out.append(w)
    return out


def divisors(w: int) -> list[int]:
    """All positive divisors of ``w``, ascending."""
    if w < 1:
        raise ValueError("w must be positive")
    small, large = [], []
    d = 1
    while d * d <= w:
        if w % d == 0:
            small.append(d)
            if d != w // d:
                large.append(w // d)
        d += 1
    return small + large[::-1]


@lru_cache(maxsize=None)
def _factorizations_at_most(w: int, cap: int) -> tuple[tuple[int, ...], ...]:
    """Multiplicative partitions of ``w`` with every factor in ``[2, cap]``,
    each partition non-increasing."""
    if w == 1:
        return ((),)
    out: list[tuple[int, ...]] = []
    for d in divisors(w):
        if 2 <= d <= cap:
            for rest in _factorizations_at_most(w // d, d):
                out.append((d, *rest))
    return tuple(out)


def factorizations(w: int) -> list[tuple[int, ...]]:
    """All multiplicative partitions of ``w`` into factors >= 2
    (non-increasing order, one representative per multiset).

    ``factorizations(12) == [(12,), (4,3), (6,2), (3,2,2)]`` (sorted by factor count, then lexicographically).
    """
    if w < 2:
        raise ValueError("w must be >= 2")
    return sorted(_factorizations_at_most(w, w), key=lambda f: (len(f), f))


def canonical(factors: list[int] | tuple[int, ...]) -> tuple[int, ...]:
    """Canonical (non-increasing) representative of a factor multiset."""
    return tuple(sorted((f for f in factors if f != 1), reverse=True))


def balanced_factorization(w: int, max_factor: int) -> tuple[int, ...]:
    """A factorization of ``w`` with every factor ``<= max_factor``, greedily
    built from the largest divisors first; raises if none exists (i.e. if a
    prime factor of ``w`` exceeds ``max_factor``)."""
    if max_factor < 2:
        raise ValueError("max_factor must be >= 2")
    if max(prime_factors(w)) > max_factor:
        raise ValueError(f"{w} has a prime factor above {max_factor}")
    out: list[int] = []
    rest = w
    while rest > 1:
        for d in range(min(max_factor, rest), 1, -1):
            if rest % d == 0:
                out.append(d)
                rest //= d
                break
    assert prod(out) == w
    return canonical(out)
