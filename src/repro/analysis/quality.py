"""Balancing quality over time: how even is the output stream mid-flight?

The counting property speaks about *quiescent* states; a load balancer
built on a balancing network also cares how even the assignment looks
while tokens are still flowing.  Given a token-simulator run, these
helpers reconstruct the per-output counts after every individual exit and
measure the worst imbalance ever observed — the *prefix smoothness* of the
execution.

Counting networks keep this small (bounded by the in-flight token count);
weak smoothers let it grow.  Used by the load-balancer example and the
smoothing bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.network import Network
from ..sim.token_sim import RunResult, run_tokens

__all__ = [
    "PrefixQuality",
    "prefix_counts",
    "prefix_quality",
    "measure_prefix_quality",
    "worst_case_prefix",
]


@dataclass(frozen=True)
class PrefixQuality:
    """Worst-case and final imbalance of one execution's exit stream."""

    exits: int
    max_smoothness: int
    final_smoothness: int
    max_gap_to_ideal: float  # max over time of (busiest wire - exits/width)


def prefix_counts(result: RunResult) -> np.ndarray:
    """``(T+1, w)`` array: row ``k`` is the per-output count after the
    first ``k`` exits (in exit order)."""
    w = len(result.output_counts)
    # Interleave the per-wire exit orders into one global exit sequence
    # using token exit_step stamps.
    events: list[tuple[int, int]] = []  # (exit_step, wire)
    for pos, order in enumerate(result.exit_order):
        for tid in order:
            tok = result.tokens[tid]
            events.append((tok.exit_step if tok.exit_step is not None else 0, pos))
    events.sort()
    counts = np.zeros((len(events) + 1, w), dtype=np.int64)
    for k, (_, pos) in enumerate(events):
        counts[k + 1] = counts[k]
        counts[k + 1, pos] += 1
    return counts


def prefix_quality(result: RunResult) -> PrefixQuality:
    """Summarize the imbalance trajectory of a completed run."""
    counts = prefix_counts(result)
    if counts.shape[0] == 1:
        return PrefixQuality(0, 0, 0, 0.0)
    smooth = counts.max(axis=1) - counts.min(axis=1)
    exits = counts.shape[0] - 1
    ideal = np.arange(counts.shape[0])[:, None] / counts.shape[1]
    gap = float((counts.max(axis=1) - ideal[:, 0]).max())
    return PrefixQuality(
        exits=exits,
        max_smoothness=int(smooth.max()),
        final_smoothness=int(smooth[-1]),
        max_gap_to_ideal=gap,
    )


def measure_prefix_quality(
    net: Network,
    total_tokens: int,
    scheduler: str = "random",
    seed: int = 0,
    skew: str = "balanced",
) -> PrefixQuality:
    """Run ``total_tokens`` and measure the exit-stream quality.

    ``skew`` selects the arrival pattern: ``balanced`` (round-robin over
    inputs — flattering even for the identity network), ``single`` (all
    tokens on wire 0 — the pattern that separates real balancers from
    wiring), or ``half`` (everything on the top half).
    """
    w = net.width
    if skew == "balanced":
        base, extra = divmod(total_tokens, w)
        counts = [base + (1 if i < extra else 0) for i in range(w)]
    elif skew == "single":
        counts = [total_tokens] + [0] * (w - 1)
    elif skew == "half":
        top = max(1, w // 2)
        base, extra = divmod(total_tokens, top)
        counts = [base + (1 if i < extra else 0) for i in range(top)] + [0] * (w - top)
    else:
        raise ValueError(f"unknown skew {skew!r}; choose balanced/single/half")
    result = run_tokens(net, counts, scheduler=scheduler, seed=seed)
    return prefix_quality(result)


def worst_case_prefix(
    net: Network,
    total_tokens: int,
    attempts: int = 20,
    skews: tuple[str, ...] = ("balanced", "single", "half"),
) -> PrefixQuality:
    """Adversarial search: the worst prefix quality found over many
    schedules (all scheduler types x seeds) and arrival skews.

    A randomized lower bound on the true worst case — useful to compare
    distributors under hostile conditions rather than a single lucky run.
    """
    worst: PrefixQuality | None = None
    for skew in skews:
        for scheduler in ("random", "lifo", "straggler"):
            for seed in range(attempts):
                q = measure_prefix_quality(
                    net, total_tokens, scheduler=scheduler, seed=seed, skew=skew
                )
                if worst is None or q.max_smoothness > worst.max_smoothness:
                    worst = q
    assert worst is not None
    return worst
