"""Linearizability of counting-network counters (paper §6).

The paper closes with: *"An interesting open question concerns the timing
constraints necessary for counting networks built in this way to be
linearizable (c.f. [13, 14, 15])."*  The referenced results (Herlihy,
Shavit & Waarts) show that counting networks of depth < width are **not**
linearizable in general: a Fetch&Increment counter built on one can hand a
*later, non-overlapping* operation a *smaller* value when a slow token is
parked inside the network.  This module makes that concrete:

* :func:`check_history` — linearizability checker for a set of completed
  operations (interval + value): whenever ``a`` finishes before ``b``
  starts, ``a``'s value must be smaller.
* :func:`sequential_history` / its check — one-at-a-time executions are
  always linearizable (the values come out in order).
* :func:`find_nonlinearizable_execution` — constructs the classic
  three-token schedule (stall A inside the network, run B to completion,
  then run C to completion) and searches entry wires / stall depths until
  it exhibits ``value(B) > value(C)`` with ``B`` finishing before ``C``
  starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.network import Network
from ..sim.token_sim import TokenSimulator

__all__ = [
    "Operation",
    "LinearizabilityViolation",
    "check_history",
    "run_sequential_history",
    "find_nonlinearizable_execution",
]


@dataclass(frozen=True)
class Operation:
    """A completed Fetch&Increment operation: real-time interval + value."""

    token_id: int
    start: int
    end: int
    value: int


@dataclass(frozen=True)
class LinearizabilityViolation:
    """Witness: ``first`` finished before ``second`` started, yet received
    the larger value."""

    first: Operation
    second: Operation

    def __str__(self) -> str:
        return (
            f"non-linearizable: op {self.first.token_id} ended at step "
            f"{self.first.end} with value {self.first.value}, but op "
            f"{self.second.token_id} started later (step {self.second.start}) "
            f"and got the smaller value {self.second.value}"
        )


def check_history(ops: list[Operation]) -> LinearizabilityViolation | None:
    """First violation of real-time order, or None if linearizable.

    For a counter, linearizability reduces to: if ``a.end < b.start`` then
    ``a.value < b.value`` (values are unique).
    """
    by_end = sorted(ops, key=lambda o: o.end)
    for i, a in enumerate(by_end):
        for b in by_end[i + 1 :]:
            if a.end < b.start and a.value > b.value:
                return LinearizabilityViolation(a, b)
    return None


def _operations(sim: TokenSimulator) -> list[Operation]:
    values = sim.values_so_far()
    return [
        Operation(t.token_id, t.entry_step, t.exit_step, values[t.token_id])
        for t in sim.tokens
        if t.done
    ]


def run_sequential_history(net: Network, n_ops: int, seed: int = 0) -> list[Operation]:
    """Run ``n_ops`` Fetch&Increment operations strictly one at a time
    (each token fully drains before the next is injected) and return the
    history.  Sequential executions of any balancing network are
    linearizable — the test suite checks this invariant."""
    sim = TokenSimulator(net, seed=seed)
    for k in range(n_ops):
        tid = sim.inject_one(k % net.width)
        sim.drain_token(tid)
    return _operations(sim)


def find_nonlinearizable_execution(
    net: Network, max_stall_depth: int | None = None
) -> tuple[LinearizabilityViolation, list[Operation]] | None:
    """Search for the classic stalled-token violation.

    Schedule template: token A enters and advances ``k`` hops, then stalls
    (in the non-FIFO shared-memory wire model a process may be preempted
    anywhere, even between its last balancer and the output counter); token
    B enters and drains, getting ``value(B)``; then a train of tokens
    ``C_1, C_2, ...`` each enters *after B exited* and drains.  B and every
    C are non-overlapping, so linearizability demands
    ``value(B) < value(C_i)``; but A's parked token reserves an early slot
    that some ``C_i`` eventually claims, undercutting B.  Returns the
    violation and the full history, or ``None`` if no instance was found
    (e.g. depth-0 networks).
    """
    width = net.width
    depths = range(1, (max_stall_depth or net.depth) + 1)
    for a_pos in range(width):
        for stall in depths:
            for b_pos in range(width):
                sim = TokenSimulator(net, seed=0, fifo_wires=False)
                a = sim.inject_one(a_pos)
                moved = 0
                while moved < stall and sim.advance(a):
                    moved += 1
                if sim.tokens[a].done:
                    continue  # the stall must leave a live token inside
                try:
                    b = sim.inject_one(b_pos)
                    sim.drain_token(b)
                    # Later, non-overlapping operations: one of them will
                    # land on A's parked output wire and take its slot.
                    for j in range(width + 1):
                        c = sim.inject_one((b_pos + 1 + j) % width)
                        sim.drain_token(c)
                        v = check_history(_operations(sim))
                        if v is not None:
                            sim.drain_token(a)
                            return v, _operations(sim)
                    sim.drain_token(a)
                except RuntimeError:
                    continue  # a token got blocked; try another schedule
                v = check_history(_operations(sim))
                if v is not None:
                    return v, _operations(sim)
    return None
