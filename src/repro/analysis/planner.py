"""Deployment planner: pick the right family member for your constraints.

The paper offers one network per factorization; a user typically has a
*width* (how many wires/counters) and a *balancer budget* (the widest
atomic primitive their platform supports — a CAS word, a crossbar port
count, ...).  The planner searches the family for the shallowest member
within budget, optionally considering padded widths when ``w`` itself has
a prime factor above the budget (e.g. counting on 34 = 2·17 wires with
balancers ≤ 8 is impossible; 36 = 2²·3² works).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

from ..core.network import Network
from ..networks.k_network import k_network
from ..networks.l_network import l_network
from .factorizations import factorizations, prime_factors

__all__ = ["Plan", "plan_network", "next_factorable_width", "best_factorization"]


@dataclass(frozen=True)
class Plan:
    """A planner recommendation."""

    width: int
    requested_width: int
    factors: tuple[int, ...]
    family: str
    depth: int
    size: int
    max_balancer_width: int
    variant: str = "stock"

    @property
    def padded(self) -> bool:
        return self.width != self.requested_width

    def build(self) -> Network:
        make = k_network if self.family == "K" else l_network
        return make(list(self.factors), variant=self.variant)


def best_factorization(
    w: int, max_balancer: int, family: str = "K", variant: str = "stock"
) -> tuple[int, ...] | None:
    """Shallowest-then-smallest family member of width exactly ``w`` whose
    balancers fit the budget, or ``None`` if no factorization fits."""
    if family not in ("K", "L"):
        raise ValueError("family must be 'K' or 'L'")
    make = k_network if family == "K" else l_network
    best: tuple[tuple[int, int], tuple[int, ...]] | None = None
    for factors in factorizations(w):
        if family == "L":
            fits = max(factors) <= max_balancer
        else:
            # K uses balancers up to products of factor pairs; bound by the
            # actual built network (degenerate cases can be narrower).
            fits = max(factors) <= max_balancer  # cheap pre-filter
        if not fits:
            continue
        net = make(list(factors), variant=variant)
        if net.max_balancer_width > max_balancer:
            continue
        key = (net.depth, net.size)
        if best is None or key < best[0]:
            best = (key, factors)
    return best[1] if best else None


def next_factorable_width(w: int, max_balancer: int, limit: int = 4096) -> int:
    """Smallest width >= ``w`` whose prime factors all fit the budget."""
    if max_balancer < 2:
        raise ValueError("max_balancer must be >= 2")
    for cand in range(max(w, 2), limit + 1):
        if max(prime_factors(cand)) <= max_balancer:
            return cand
    raise ValueError(f"no factorable width in [{w}, {limit}] for budget {max_balancer}")


def plan_network(
    width: int,
    max_balancer: int,
    family: str = "K",
    allow_padding: bool = True,
    variant: str = "stock",
) -> Plan:
    """Recommend a network: exact width if some factorization fits the
    budget, else (with ``allow_padding``) the nearest larger width that
    does.  Padding is sound for counting networks — extra wires simply see
    fewer tokens — and the caller can ignore surplus output wires for
    sorting if fed with sentinel values."""
    if width < 2:
        raise ValueError("width must be >= 2")
    if family == "K" and max_balancer < 4 and width > max_balancer:
        # Any multi-factor K uses balancers of width >= 2*2; only the
        # single balancer (width == w) can be narrower, and that needs
        # w <= budget.  The L family exists precisely for narrow budgets.
        raise ValueError(
            f"the K family cannot meet a balancer budget of {max_balancer} "
            f"at width {width} (its balancers are pairwise factor products, "
            f">= 4); use family='L'"
        )
    w = width
    while True:
        factors = best_factorization(w, max_balancer, family, variant)
        if factors is not None:
            net = (k_network if family == "K" else l_network)(list(factors), variant=variant)
            return Plan(
                width=w,
                requested_width=width,
                factors=factors,
                family=family,
                depth=net.depth,
                size=net.size,
                max_balancer_width=net.max_balancer_width,
                variant=variant,
            )
        if not allow_padding:
            raise ValueError(
                f"width {width} has no {family}-factorization with balancers <= {max_balancer}"
            )
        w = next_factorable_width(w + 1, max_balancer)
