"""Structural audits: layer occupancy and critical paths.

Helps users see *where* a network's depth and hardware cost come from —
e.g. that the generic construction's staircase layers are sparsely
occupied (few balancers per layer) while the base layers are dense, or
which component chain forms the critical path of an `L` network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.network import Balancer, Network

__all__ = ["LayerProfile", "layer_profile", "critical_path", "occupancy"]


@dataclass(frozen=True)
class LayerProfile:
    """Per-layer structure: balancer count, width histogram, wire
    coverage."""

    layer: int
    balancers: int
    total_fanin: int
    widths: dict[int, int]
    coverage: float  # fraction of network width touched by this layer


def layer_profile(net: Network) -> list[LayerProfile]:
    """One :class:`LayerProfile` per layer of the ASAP schedule."""
    out = []
    for i, layer in enumerate(net.layers()):
        widths: dict[int, int] = {}
        fanin = 0
        for b in layer:
            widths[b.width] = widths.get(b.width, 0) + 1
            fanin += b.width
        out.append(
            LayerProfile(
                layer=i,
                balancers=len(layer),
                total_fanin=fanin,
                widths=dict(sorted(widths.items())),
                coverage=fanin / net.width,
            )
        )
    return out


def occupancy(net: Network) -> float:
    """Mean fraction of wires touched per layer (1.0 = every layer is a
    full permutation layer, as in bitonic; the paper's staircase repairs
    are much sparser)."""
    profiles = layer_profile(net)
    if not profiles:
        return 0.0
    return float(np.mean([p.coverage for p in profiles]))


def critical_path(net: Network) -> list[Balancer]:
    """One deepest balancer chain (input wire to output wire).

    Returns the balancers along a maximum-depth path in order; empty for
    the identity network.
    """
    if net.size == 0:
        return []
    depths = net.wire_depths()
    # Find the deepest output wire, then walk producers backwards.
    producer: dict[int, Balancer] = {}
    for b in net.balancers:
        for w in b.outputs:
            producer[w] = b
    wire = max(net.outputs, key=lambda w: int(depths[w]))
    path: list[Balancer] = []
    while wire in producer:
        b = producer[wire]
        path.append(b)
        # Continue from the deepest input wire of this balancer.
        wire = max(b.inputs, key=lambda w: int(depths[w]))
    return list(reversed(path))
