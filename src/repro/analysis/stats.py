"""Network statistics records shared by the analysis and bench layers."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..core.network import Network

__all__ = ["NetworkStats", "network_stats", "format_table"]


@dataclass(frozen=True)
class NetworkStats:
    """Structural summary of one network."""

    name: str
    width: int
    depth: int
    size: int
    max_balancer_width: int
    total_fanin: int  # sum of balancer widths ("wiring cost")

    def as_dict(self) -> dict:
        return asdict(self)


def network_stats(net: Network) -> NetworkStats:
    """Collect the structural summary of ``net``."""
    return NetworkStats(
        name=net.name,
        width=net.width,
        depth=net.depth,
        size=net.size,
        max_balancer_width=net.max_balancer_width,
        total_fanin=sum(b.width for b in net.balancers),
    )


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    cells = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells)
    return f"{header}\n{sep}\n{body}"
