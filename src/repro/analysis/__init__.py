"""Analysis: factorization families, trade-off frontiers, comparisons."""

from .factorizations import balanced_factorization, canonical, divisors, factorizations, prime_factors
from .stats import NetworkStats, format_table, network_stats
from .tradeoff import FamilyEntry, build_family, pareto_frontier
from .comparison import comparison_row, comparison_table, power_of_two
from .audit import LayerProfile, critical_path, layer_profile, occupancy
from .planner import Plan, best_factorization, next_factorable_width, plan_network
from .quality import (
    PrefixQuality,
    measure_prefix_quality,
    prefix_counts,
    prefix_quality,
    worst_case_prefix,
)
from .linearizability import (
    LinearizabilityViolation,
    Operation,
    check_history,
    find_nonlinearizable_execution,
    run_sequential_history,
)

__all__ = [
    "balanced_factorization",
    "canonical",
    "divisors",
    "factorizations",
    "prime_factors",
    "NetworkStats",
    "format_table",
    "network_stats",
    "FamilyEntry",
    "build_family",
    "pareto_frontier",
    "comparison_row",
    "comparison_table",
    "power_of_two",
    "LinearizabilityViolation",
    "Operation",
    "check_history",
    "find_nonlinearizable_execution",
    "run_sequential_history",
    "LayerProfile",
    "critical_path",
    "layer_profile",
    "occupancy",
    "Plan",
    "best_factorization",
    "next_factorable_width",
    "plan_network",
    "PrefixQuality",
    "measure_prefix_quality",
    "prefix_counts",
    "prefix_quality",
    "worst_case_prefix",
]
