"""The factorization family trade-off (paper §1 and §6, experiment E11).

For a fixed width ``w``, every factorization ``w = p0 * ... * p(n-1)`` gives
a network: few large factors -> shallow networks with wide balancers; many
small factors -> deeper networks with narrow balancers.  This module builds
the whole family and extracts the (max balancer width, depth) frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.network import Network
from ..networks.k_network import k_network
from ..networks.l_network import l_network
from .factorizations import factorizations
from .stats import NetworkStats, network_stats

__all__ = ["FamilyEntry", "build_family", "pareto_frontier"]


@dataclass(frozen=True)
class FamilyEntry:
    """One member of the width-``w`` family."""

    factors: tuple[int, ...]
    family: str  # "K" or "L"
    stats: NetworkStats

    @property
    def n(self) -> int:
        return len(self.factors)

    def as_dict(self) -> dict:
        d = {"factors": "x".join(map(str, self.factors)), "n": self.n, "family": self.family}
        d.update(self.stats.as_dict())
        d.pop("name")
        return d


def build_family(
    w: int,
    family: str = "K",
    max_members: int | None = None,
    max_factors: int | None = None,
) -> list[FamilyEntry]:
    """Build the counting-network family of width ``w``.

    ``family`` selects ``K`` (balancers up to ``max(p_i * p_j)``) or ``L``
    (balancers up to ``max(p_i)``).  ``max_members`` truncates enumeration
    for widths with very many factorizations; ``max_factors`` bounds ``n``
    (deep ``L`` networks get large quickly).
    """
    if family not in ("K", "L"):
        raise ValueError("family must be 'K' or 'L'")
    make = k_network if family == "K" else l_network
    entries: list[FamilyEntry] = []
    for factors in factorizations(w):
        if max_factors is not None and len(factors) > max_factors:
            continue
        net: Network = make(list(factors))
        entries.append(FamilyEntry(factors, family, network_stats(net)))
        if max_members is not None and len(entries) >= max_members:
            break
    return entries


def pareto_frontier(entries: list[FamilyEntry]) -> list[FamilyEntry]:
    """Members not dominated in (depth, max balancer width): the menu of
    genuinely distinct trade-offs for a fixed width."""
    out: list[FamilyEntry] = []
    for e in entries:
        dominated = any(
            (o.stats.depth <= e.stats.depth)
            and (o.stats.max_balancer_width <= e.stats.max_balancer_width)
            and (
                o.stats.depth < e.stats.depth
                or o.stats.max_balancer_width < e.stats.max_balancer_width
            )
            for o in entries
        )
        if not dominated:
            out.append(e)
    return sorted(out, key=lambda e: (e.stats.max_balancer_width, e.stats.depth))
