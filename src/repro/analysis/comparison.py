"""Related-work comparison (paper §2, experiment E12).

Builds the paper's constructions next to the implementable baselines and
tabulates width, depth, size, and maximum balancer width — the programmatic
version of the related-work discussion: bitonic/periodic exist only at
power-of-two widths from 2-balancers; ``K``/``L`` cover *arbitrary* widths,
trading balancer width against depth.
"""

from __future__ import annotations

from ..baselines.bitonic import bitonic_network
from ..baselines.odd_even import odd_even_network
from ..baselines.periodic import periodic_network
from ..core.network import Network
from ..networks.k_network import k_network
from ..networks.l_network import l_network
from .factorizations import balanced_factorization, prime_factors
from .stats import network_stats

__all__ = ["comparison_row", "comparison_table", "power_of_two"]


def power_of_two(w: int) -> bool:
    """True iff ``w`` is a positive power of two."""
    return w >= 1 and (w & (w - 1)) == 0


def comparison_row(net: Network, construction: str, counts: bool | None = None) -> dict:
    """One table row for ``net``."""
    s = network_stats(net)
    row = {
        "construction": construction,
        "width": s.width,
        "depth": s.depth,
        "size": s.size,
        "max_balancer": s.max_balancer_width,
    }
    if counts is not None:
        row["counting"] = counts
    return row


def comparison_table(widths: list[int], max_l_width: int = 5000) -> list[dict]:
    """Rows comparing K (prime factorization), L (prime factorization),
    K/L with a balanced coarse factorization, and the power-of-two
    baselines where they exist."""
    rows: list[dict] = []
    for w in widths:
        primes = prime_factors(w)
        rows.append(comparison_row(k_network(primes), f"K(primes of {w})"))
        if w <= max_l_width:
            rows.append(comparison_row(l_network(primes), f"L(primes of {w})"))
        # A coarse two/three-factor split, trading wide balancers for depth.
        if len(primes) > 1:
            coarse = balanced_factorization(w, max(2, int(round(w ** 0.5)) + 1)) if not _has_big_prime(w) else tuple(primes)
            if coarse != tuple(sorted(primes, reverse=True)):
                rows.append(comparison_row(k_network(list(coarse)), f"K{coarse}"))
        if power_of_two(w) and w >= 2:
            rows.append(comparison_row(bitonic_network(w), f"Bitonic[{w}]"))
            rows.append(comparison_row(periodic_network(w), f"Periodic[{w}]"))
            rows.append(comparison_row(odd_even_network(w), f"OddEven[{w}] (sort only)"))
    return rows


def _has_big_prime(w: int) -> bool:
    return max(prime_factors(w)) ** 2 > w
