"""Sorting and counting networks of small depth and arbitrary width.

A full reproduction of Busch & Herlihy (SPAA 1999): for any factorization
``w = p0 * ... * p(n-1)`` it builds sorting/counting networks of width ``w``
and depth ``O(n^2)`` from comparators/balancers of width at most
``max(p_i)`` (family ``L``) or ``max(p_i * p_j)`` (family ``K``), plus the
component networks (two-merger, bitonic-converter, staircase-merger,
merger, ``R(p, q)``), classic baselines, simulators, and verification
tooling.

Quickstart::

    import numpy as np
    from repro import k_network, propagate_counts

    net = k_network([4, 4, 4])          # width-64 counting network
    x = np.random.default_rng(0).integers(0, 20, size=64)
    y = propagate_counts(net, x)        # quiescent output counts
    # y is a step sequence: non-increasing, max - min <= 1
"""

from .core import (
    Balancer,
    Network,
    NetworkBuilder,
    identity_network,
    sequences,
    single_balancer_network,
)
from .networks import (
    STAIRCASE_VARIANTS,
    bitonic_converter,
    counting_network,
    depth_formulas,
    k_network,
    l_network,
    merger_network,
    r_network,
    staircase_merger,
    two_merger,
)
from .sim import (
    ContentionSimulator,
    ThreadedCounter,
    TokenSimulator,
    evaluate_comparators,
    fetch_and_increment_values,
    propagate_counts,
    quiescent_counts,
    run_tokens,
    sorted_outputs,
)
from .verify import (
    find_counting_violation,
    find_sorting_violation,
    is_sorting_network,
    verify_counting,
)
from .analysis import build_family, comparison_table, factorizations, pareto_frontier
from .highlevel import make_counter, oblivious_sort
from . import baselines, faults, obs, serve, viz

__version__ = "1.0.0"

__all__ = [
    "Balancer",
    "Network",
    "NetworkBuilder",
    "identity_network",
    "single_balancer_network",
    "sequences",
    "STAIRCASE_VARIANTS",
    "bitonic_converter",
    "counting_network",
    "depth_formulas",
    "k_network",
    "l_network",
    "merger_network",
    "r_network",
    "staircase_merger",
    "two_merger",
    "ContentionSimulator",
    "ThreadedCounter",
    "TokenSimulator",
    "evaluate_comparators",
    "fetch_and_increment_values",
    "propagate_counts",
    "quiescent_counts",
    "run_tokens",
    "sorted_outputs",
    "find_counting_violation",
    "find_sorting_violation",
    "is_sorting_network",
    "verify_counting",
    "build_family",
    "comparison_table",
    "factorizations",
    "pareto_frontier",
    "make_counter",
    "oblivious_sort",
    "baselines",
    "faults",
    "obs",
    "viz",
    "__version__",
]
