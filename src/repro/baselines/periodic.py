"""The periodic balanced network (Dowd–Perkins–Saks–Shmoys; used as a
counting network by Aspnes, Herlihy and Shavit, paper ref [3]).

``Periodic[w]`` for ``w = 2^k`` consists of ``k`` identical *blocks*; each
block has ``k`` layers of 2-balancers:

* layer ``t`` (``t = 1..k``) splits the wires into contiguous groups of
  size ``w / 2^(t-1)`` and applies the *reversal* pairing ``i <-> group-1-i``
  inside each group (layer 1 is the full-width reversal).

Total depth ``k²`` — deeper than bitonic but with the practical property
that the same block can be applied repeatedly (useful for pipelined
hardware).  Included as a second same-width 2-balancer baseline.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_periodic_block", "periodic_network", "periodic_depth"]


def _check_power_of_two(w: int) -> None:
    if w < 2 or (w & (w - 1)) != 0:
        raise ValueError(f"periodic network requires a power-of-two width >= 2, got {w}")


def build_periodic_block(b: NetworkBuilder, wires: list[int]) -> list[int]:
    """One ``Block[w]``: ``log2 w`` layers as described above."""
    _check_power_of_two(len(wires))
    w = len(wires)
    k = w.bit_length() - 1
    cur = list(wires)
    # Layer t = 1..k: groups of size w / 2^(t-1); reversal pairing
    # i <-> group-1-i inside every group (layer 1 is the full reversal).
    for t in range(1, k + 1):
        group = w >> (t - 1)
        nxt = list(cur)
        for g in range(0, w, group):
            for i in range(group // 2):
                top, bottom = b.balancer([cur[g + i], cur[g + group - 1 - i]])
                nxt[g + i], nxt[g + group - 1 - i] = top, bottom
        cur = nxt
    return cur


def periodic_network(width: int, blocks: int | None = None) -> Network:
    """Standalone ``Periodic[width]``: ``log2(width)`` blocks by default."""
    _check_power_of_two(width)
    k = width.bit_length() - 1
    blocks = k if blocks is None else blocks
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for _ in range(blocks):
        wires = build_periodic_block(b, wires)
    return b.finish(wires, name=f"Periodic[{width}]x{blocks}")


def periodic_depth(width: int) -> int:
    """Analytical depth ``k²`` for ``width = 2^k``."""
    _check_power_of_two(width)
    k = width.bit_length() - 1
    return k * k
