"""Batcher odd-even mergesort generalized to **arbitrary width** (the
Lee–Batcher line of related work, paper §2).

The classic odd-even merge extends to inputs of unequal, non-power-of-two
lengths: to merge sorted ``X`` (length a) and ``Y`` (length b), recursively
merge the even-indexed and odd-indexed subsequences, then interleave with
one layer of 2-comparators.  Sorting splits the input in half and merges.
This yields a 2-comparator sorting network of any width ``w`` with depth
``ceil(log2 w) * (ceil(log2 w) + 1) / 2`` — the same-depth arbitrary-width
sorting baseline for the comparison benches (like plain odd-even, its
balancing version does not count).
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_general_merge", "build_general_sort", "batcher_any_network", "batcher_any_depth"]


def build_general_merge(b: NetworkBuilder, x: list[int], y: list[int]) -> list[int]:
    """Odd-even merge of two descending-sorted wire lists of *any*
    lengths."""
    if not x:
        return list(y)
    if not y:
        return list(x)
    if len(x) == 1 and len(y) == 1:
        return b.balancer([x[0], y[0]])
    even = build_general_merge(b, x[0::2], y[0::2])
    odd = build_general_merge(b, x[1::2], y[1::2])
    # Interleave: out[0] = even[0]; then compare odd[i] with even[i+1].
    out: list[int] = [even[0]]
    i = 0
    while i < len(odd) and i + 1 < len(even):
        top, bottom = b.balancer([odd[i], even[i + 1]])
        out.extend([top, bottom])
        i += 1
    out.extend(odd[i:])
    out.extend(even[i + 1 :])
    return out


def build_general_sort(b: NetworkBuilder, wires: list[int]) -> list[int]:
    """Odd-even mergesort on any number of wires."""
    if len(wires) <= 1:
        return list(wires)
    half = len(wires) // 2
    x = build_general_sort(b, wires[:half])
    y = build_general_sort(b, wires[half:])
    return build_general_merge(b, x, y)


def batcher_any_network(width: int) -> Network:
    """Standalone arbitrary-width Batcher sorting network."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = NetworkBuilder(width)
    out = build_general_sort(b, list(b.inputs))
    return b.finish(out, name=f"BatcherAny[{width}]")


def batcher_any_depth(width: int) -> int:
    """Upper bound ``k(k+1)/2`` with ``k = ceil(log2 width)``; exact at
    powers of two."""
    if width < 1:
        raise ValueError("width must be >= 1")
    k = (width - 1).bit_length()
    return k * (k + 1) // 2
