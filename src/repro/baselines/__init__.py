"""Baseline networks: bitonic, periodic, odd-even, bubble/brick."""

from .bitonic import bitonic_depth, bitonic_network, build_bitonic_counting, build_bitonic_merger
from .periodic import build_periodic_block, periodic_depth, periodic_network
from .odd_even import build_odd_even_merge, build_odd_even_sort, odd_even_depth, odd_even_network
from .bubble import brick_network, bubble_network
from .multiway import build_multiway_sort, multiway_network
from .shearsort import build_shearsort, shearsort_depth, shearsort_network
from .columnsort import build_columnsort, columnsort_network, columnsort_valid
from .batcher_general import (
    batcher_any_depth,
    batcher_any_network,
    build_general_merge,
    build_general_sort,
)

__all__ = [
    "bitonic_depth",
    "bitonic_network",
    "build_bitonic_counting",
    "build_bitonic_merger",
    "build_periodic_block",
    "periodic_depth",
    "periodic_network",
    "build_odd_even_merge",
    "build_odd_even_sort",
    "odd_even_depth",
    "odd_even_network",
    "brick_network",
    "bubble_network",
    "batcher_any_depth",
    "batcher_any_network",
    "build_general_merge",
    "build_general_sort",
    "build_multiway_sort",
    "multiway_network",
    "build_shearsort",
    "shearsort_depth",
    "shearsort_network",
    "build_columnsort",
    "columnsort_network",
    "columnsort_valid",
]
