"""Bubble-sort and odd-even-transposition networks (paper Figure 3).

The triangular bubble-sort network is the paper's counterexample: it *is* a
sorting network, but replacing its comparators with balancers does **not**
yield a counting network.  :mod:`repro.verify` finds violating count
vectors for it, reproducing Figure 3's message programmatically.

The brick-pattern odd-even transposition network (depth ``w``) is included
as a second elementary sorting network for the comparison benches.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["bubble_network", "brick_network"]


def bubble_network(width: int) -> Network:
    """Triangular bubble-sort network: passes of adjacent comparators
    ``(0,1)(1,2)...`` of decreasing length; depth ``2w - 3`` for width
    ``w >= 2``."""
    if width < 2:
        raise ValueError("bubble network requires width >= 2")
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for length in range(width - 1, 0, -1):
        for i in range(length):
            top, bottom = b.balancer([wires[i], wires[i + 1]])
            wires[i], wires[i + 1] = top, bottom
    return b.finish(wires, name=f"Bubble[{width}]")


def brick_network(width: int) -> Network:
    """Odd-even transposition ("brick wall") sorting network of depth
    ``width``."""
    if width < 2:
        raise ValueError("brick network requires width >= 2")
    b = NetworkBuilder(width)
    wires = list(b.inputs)
    for layer in range(width):
        start = layer % 2
        for i in range(start, width - 1, 2):
            top, bottom = b.balancer([wires[i], wires[i + 1]])
            wires[i], wires[i + 1] = top, bottom
    return b.finish(wires, name=f"Brick[{width}]")
