"""Shearsort on an r x s mesh, as a comparator network of wide comparators.

Shearsort sorts an ``r x s`` matrix into snake-like row-major order by
alternating row phases (each row sorted, direction alternating by row) and
column phases (each column sorted), ``ceil(log2 r) + 1`` row phases in
total.  Realizing each row/column sorter as a single wide comparator gives
a width-``r*s`` sorting network of depth ``2*ceil(log2 r) + 1`` from
comparators of width at most ``max(r, s)`` — a natural sorting-only
competitor to the paper's constant-depth ``R(p, q)``: shallow for small
``r``, but its depth grows with ``log r`` while ``R`` stays ≤ 16 (and ``R``
counts, which shearsort does not).
"""

from __future__ import annotations

from math import ceil, log2

from ..core.network import Network, NetworkBuilder

__all__ = ["build_shearsort", "shearsort_network", "shearsort_depth"]


def build_shearsort(b: NetworkBuilder, wires: list[int], r: int, s: int) -> list[int]:
    """Append shearsort for an ``r x s`` matrix (wires in row-major order);
    returns output wires in *globally descending* order (snake order
    unrolled)."""
    if r < 1 or s < 1:
        raise ValueError("r, s must be >= 1")
    if len(wires) != r * s:
        raise ValueError(f"expected {r * s} wires, got {len(wires)}")
    cell = [[wires[i * s + j] for j in range(s)] for i in range(r)]

    phases = ceil(log2(r)) + 1 if r > 1 else 1
    for phase in range(phases):
        # Row phase: sort each row, snake direction.  A balancer emits
        # descending on its outputs in order; an "ascending" row is the
        # same balancer with its outputs reversed.
        for i in range(r):
            out = b.maybe_balancer(cell[i])
            cell[i] = out if i % 2 == 0 else out[::-1]
        if phase == phases - 1:
            break  # final row phase completes the sort
        # Column phase: sort each column downward.
        for j in range(s):
            col = b.maybe_balancer([cell[i][j] for i in range(r)])
            for i in range(r):
                cell[i][j] = col[i]

    # Snake order: even rows left-to-right, odd rows right-to-left holds
    # the globally descending sequence.
    out: list[int] = []
    for i in range(r):
        row = cell[i] if i % 2 == 0 else cell[i][::-1]
        out.extend(row)
    return out


def shearsort_network(r: int, s: int) -> Network:
    """Standalone shearsort network of width ``r*s`` (row-major input)."""
    b = NetworkBuilder(r * s)
    out = build_shearsort(b, list(b.inputs), r, s)
    return b.finish(out, name=f"Shearsort[{r}x{s}]")


def shearsort_depth(r: int, s: int) -> int:
    """``2*ceil(log2 r) + 1`` balancer layers (row/column alternation)."""
    if r < 1 or s < 1:
        raise ValueError("r, s must be >= 1")
    phases = ceil(log2(r)) + 1 if r > 1 else 1
    return 2 * phases - 1
