"""Batcher's odd-even merge sorting network (related work, Lee–Batcher line).

``OddEven[w]`` for ``w = 2^k`` is the classic depth ``k(k+1)/2`` *sorting*
network from 2-comparators.  Its balancing version is **not** a counting
network (unlike bitonic) — the comparison benches demonstrate this with a
concrete violating count vector, reinforcing the paper's point that sorting
networks do not automatically count.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_odd_even_merge", "build_odd_even_sort", "odd_even_network", "odd_even_depth"]


def _check_power_of_two(w: int) -> None:
    if w < 1 or (w & (w - 1)) != 0:
        raise ValueError(f"odd-even network requires a power-of-two width, got {w}")


def build_odd_even_merge(b: NetworkBuilder, x: list[int], y: list[int]) -> list[int]:
    """Batcher odd-even ``Merge`` of two sorted (descending) inputs of equal
    power-of-two length."""
    if len(x) != len(y):
        raise ValueError("merge inputs must have equal length")
    if len(x) == 1:
        return b.balancer([x[0], y[0]])
    even = build_odd_even_merge(b, x[0::2], y[0::2])
    odd = build_odd_even_merge(b, x[1::2], y[1::2])
    out: list[int] = [even[0]]
    for i in range(len(odd) - 1):
        top, bottom = b.balancer([odd[i], even[i + 1]])
        out.extend([top, bottom])
    out.extend([odd[-1]])
    # Interleave check: output is even[0], (odd[0]?even[1]), ..., odd[-1]
    return out


def build_odd_even_sort(b: NetworkBuilder, wires: list[int]) -> list[int]:
    """Batcher odd-even mergesort on ``wires`` (power-of-two length)."""
    _check_power_of_two(len(wires))
    if len(wires) == 1:
        return list(wires)
    half = len(wires) // 2
    x = build_odd_even_sort(b, wires[:half])
    y = build_odd_even_sort(b, wires[half:])
    return build_odd_even_merge(b, x, y)


def odd_even_network(width: int) -> Network:
    """Standalone ``OddEven[width]`` sorting network."""
    _check_power_of_two(width)
    b = NetworkBuilder(width)
    out = build_odd_even_sort(b, list(b.inputs))
    return b.finish(out, name=f"OddEven[{width}]")


def odd_even_depth(width: int) -> int:
    """Analytical depth ``k(k+1)/2`` for ``width = 2^k``."""
    _check_power_of_two(width)
    k = width.bit_length() - 1
    return k * (k + 1) // 2
