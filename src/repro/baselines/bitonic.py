"""The bitonic counting network of Aspnes, Herlihy and Shavit (paper ref [3]).

``Bitonic[w]`` for ``w = 2^k`` is the classic width-``2^k`` counting network
from 2-balancers: two ``Bitonic[w/2]`` networks feed a ``Merger[w]``, where
``Merger[w]`` sends the even-indexed wires of its first input and the
odd-indexed wires of its second input to one ``Merger[w/2]`` (and the
complementary wires to another), then joins corresponding outputs with a
final layer of 2-balancers.  Depth is ``k(k+1)/2``.

This is the main same-width baseline for the paper's ``K``/``L`` families:
the paper notes (§6) its overall structure is similar to — and its depth a
constant factor below — the new construction, at the cost of requiring
``w`` to be a power of two and balancers to be width-2 only.
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_bitonic_merger", "build_bitonic_counting", "bitonic_network", "bitonic_depth"]


def _check_power_of_two(w: int) -> None:
    if w < 1 or (w & (w - 1)) != 0:
        raise ValueError(f"bitonic network requires a power-of-two width, got {w}")


def build_bitonic_merger(b: NetworkBuilder, x: list[int], y: list[int]) -> list[int]:
    """``Merger[2k]``: merges two step inputs of equal power-of-two length."""
    if len(x) != len(y):
        raise ValueError("merger inputs must have equal length")
    _check_power_of_two(len(x) * 2)
    if len(x) == 1:
        return b.balancer([x[0], y[0]])
    a_out = build_bitonic_merger(b, x[0::2], y[1::2])
    b_out = build_bitonic_merger(b, x[1::2], y[0::2])
    out: list[int] = [0] * (2 * len(x))
    for i, (za, zb) in enumerate(zip(a_out, b_out)):
        top, bottom = b.balancer([za, zb])
        out[2 * i] = top
        out[2 * i + 1] = bottom
    return out


def build_bitonic_counting(b: NetworkBuilder, wires: list[int]) -> list[int]:
    """``Bitonic[w]`` on ``wires`` (power-of-two length)."""
    _check_power_of_two(len(wires))
    if len(wires) == 1:
        return list(wires)
    half = len(wires) // 2
    x = build_bitonic_counting(b, wires[:half])
    y = build_bitonic_counting(b, wires[half:])
    return build_bitonic_merger(b, x, y)


def bitonic_network(width: int) -> Network:
    """Standalone ``Bitonic[width]`` counting network (width a power of 2)."""
    _check_power_of_two(width)
    b = NetworkBuilder(width)
    out = build_bitonic_counting(b, list(b.inputs))
    return b.finish(out, name=f"Bitonic[{width}]")


def bitonic_depth(width: int) -> int:
    """Analytical depth ``k(k+1)/2`` for ``width = 2^k``."""
    _check_power_of_two(width)
    k = width.bit_length() - 1
    return k * (k + 1) // 2
