"""Multiway mergesort networks for arbitrary factored widths (paper §2's
Lee–Batcher line, realized as a binary merge tree).

Lee and Batcher's multiway merge network sorts width
``w = p0 * ... * p(n-1)`` with 2-comparators; we realize the same
arbitrary-width capability with a balanced binary tree of generalized
odd-even merges: sort the ``p(n-1)`` sub-blocks recursively, then merge
them pairwise.  Depth is ``O(log² w)`` with small constants, making it the
natural *sorting-only* competitor to the paper's K/L families at arbitrary
widths (its balancing version does not count, like all Batcher-style
networks).
"""

from __future__ import annotations

from math import prod

from ..core.network import Network, NetworkBuilder
from .batcher_general import build_general_merge

__all__ = ["build_multiway_sort", "multiway_network"]


def _merge_tree(b: NetworkBuilder, blocks: list[list[int]]) -> list[int]:
    """Balanced binary merge tree over descending-sorted blocks."""
    while len(blocks) > 1:
        nxt: list[list[int]] = []
        for i in range(0, len(blocks) - 1, 2):
            nxt.append(build_general_merge(b, blocks[i], blocks[i + 1]))
        if len(blocks) % 2:
            nxt.append(blocks[-1])
        blocks = nxt
    return blocks[0]


def build_multiway_sort(b: NetworkBuilder, wires: list[int], factors: list[int]) -> list[int]:
    """Sort ``wires`` by the factor-structured multiway mergesort: split
    into ``factors[-1]`` blocks of width ``prod(factors[:-1])``, sort each
    recursively, merge with a binary tree."""
    factors = [f for f in factors if f > 1]
    if prod(factors) != len(wires):
        raise ValueError(f"factors {factors} have product {prod(factors)} != width {len(wires)}")
    if len(wires) <= 1:
        return list(wires)
    if len(factors) == 1:
        # A single factor block: recurse on a balanced 2-way split so only
        # 2-comparators are used (unlike K, which would use one balancer).
        half = len(wires) // 2
        x = build_multiway_sort(b, wires[:half], [half])
        y = build_multiway_sort(b, wires[half:], [len(wires) - half])
        return build_general_merge(b, x, y)
    block = prod(factors[:-1])
    sorted_blocks = [
        build_multiway_sort(b, list(wires[i * block : (i + 1) * block]), factors[:-1])
        for i in range(factors[-1])
    ]
    return _merge_tree(b, sorted_blocks)


def multiway_network(factors: list[int] | tuple[int, ...]) -> Network:
    """Standalone multiway mergesort network of width ``prod(factors)``,
    built entirely from 2-comparators."""
    factors = [int(f) for f in factors]
    width = prod([f for f in factors if f > 1]) if any(f > 1 for f in factors) else 1
    b = NetworkBuilder(max(width, 1))
    out = build_multiway_sort(b, list(b.inputs), factors)
    return b.finish(out, name=f"Multiway({','.join(map(str, factors))})")
