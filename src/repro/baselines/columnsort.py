"""Leighton's columnsort as a comparator network of wide comparators.

Columnsort sorts an ``r x s`` matrix (column-major order) whenever
``r >= 2*(s-1)^2`` in eight steps, four of which sort columns:

1. sort each column;          2. "transpose" (column-major -> row-major);
3. sort each column;          4. untranspose (row-major -> column-major);
5. sort each column;          6. shift down by floor(r/2) (±∞ padding);
7. sort each (shifted) column; 8. unshift.

Realizing each column sorter as one ``r``-comparator gives depth **4**
from comparators of width ≤ ``r`` — even shallower than shearsort and
``R(p, q)``, but valid only in the tall-matrix regime and, like all
sorting-only networks here, *not* a counting network.  In the fixed-width
realization, steps 6–8 reduce to sorting blocks of ``r`` consecutive
positions at offset ``r/2`` in the flat column-major sequence (the ±∞
pads make the two boundary half-windows plain ``r/2``-sorters).
"""

from __future__ import annotations

from ..core.network import Network, NetworkBuilder

__all__ = ["build_columnsort", "columnsort_network", "columnsort_valid"]


def columnsort_valid(r: int, s: int) -> bool:
    """Leighton's applicability condition ``r >= 2*(s-1)^2`` (plus
    divisibility of the shift step)."""
    return r >= 2 * (s - 1) ** 2 and r % 2 == 0 if s > 1 else r >= 1


def build_columnsort(b: NetworkBuilder, wires: list[int], r: int, s: int) -> list[int]:
    """Append columnsort for an ``r x s`` matrix, ``wires`` and the output
    both in column-major (= flat descending) order."""
    if r < 1 or s < 1:
        raise ValueError("r, s must be >= 1")
    if len(wires) != r * s:
        raise ValueError(f"expected {r * s} wires, got {len(wires)}")
    if not columnsort_valid(r, s):
        raise ValueError(f"columnsort requires r >= 2(s-1)^2 and even r; got r={r}, s={s}")

    flat = list(wires)  # column-major: column j occupies [j*r, (j+1)*r)

    def sort_columns(seq: list[int]) -> list[int]:
        out: list[int] = []
        for j in range(s):
            out.extend(b.maybe_balancer(seq[j * r : (j + 1) * r]))
        return out

    # Step 1.
    flat = sort_columns(flat)
    # Step 2: transpose — entry at column-major position k moves to the
    # position whose column-major index corresponds to row-major pickup.
    # Pick up in column-major order (flat as-is), lay down row-major:
    # the element k goes to cell (k // s, k % s), i.e. column-major
    # position (k % s) * r + (k // s).
    t = [0] * (r * s)
    for k in range(r * s):
        t[(k % s) * r + (k // s)] = flat[k]
    flat = t
    # Step 3.
    flat = sort_columns(flat)
    # Step 4: untranspose (inverse permutation).
    t = [0] * (r * s)
    for k in range(r * s):
        t[k] = flat[(k % s) * r + (k // s)]
    flat = t
    # Step 5.
    flat = sort_columns(flat)
    # Steps 6-8: shifted column sort = windows of r at offset r/2.
    half = r // 2
    out: list[int] = []
    out.extend(b.maybe_balancer(flat[:half]))
    pos = half
    while pos + r <= r * s:
        out.extend(b.maybe_balancer(flat[pos : pos + r]))
        pos += r
    out.extend(b.maybe_balancer(flat[pos:]))
    return out


def columnsort_network(r: int, s: int) -> Network:
    """Standalone columnsort network of width ``r*s``."""
    b = NetworkBuilder(r * s)
    out = build_columnsort(b, list(b.inputs), r, s)
    return b.finish(out, name=f"Columnsort[{r}x{s}]")
