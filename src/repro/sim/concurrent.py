"""Shared-memory counting-network counters: threads and discrete events.

Counting networks exist to build *low-contention* Fetch&Increment counters
(paper §1).  This module provides the two shared-memory substrates used by
the reproduction:

* :class:`ThreadedCounter` — a real concurrent implementation: one lock and
  one mod-``p`` state word per balancer, one value-dispensing counter per
  output wire.  ``n`` Python threads hammer it concurrently; despite the
  GIL, lock convoying on hot balancers is real and measurable, and the
  returned values demonstrate the counting property under true preemption.

* :class:`ContentionSimulator` — a deterministic discrete-event model
  reproducing the experiment the paper cites from Felten, LaMarca and
  Ladner [9]: each balancer is a serially-reusable resource (an access
  occupies it for one time unit), ``n`` processes repeatedly traverse the
  network, and the simulator reports throughput and mean latency.  Depth
  falls as balancer width grows but per-balancer traffic rises, so
  intermediate widths win — the trade-off motivating the paper's
  factorization family.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

import numpy as np

from ..core.network import Network
from ..obs import runtime as _obs

__all__ = [
    "ThreadedCounter",
    "ThreadedRunStats",
    "ContentionSimulator",
    "ContentionStats",
    "SingleLockCounter",
]


@dataclass
class ThreadedRunStats:
    """Result of a threaded run: per-thread value lists and counters."""

    values: list[list[int]]
    total_ops: int

    def all_values(self) -> list[int]:
        out: list[int] = []
        for vs in self.values:
            out.extend(vs)
        return out


class ThreadedCounter:
    """A Fetch&Increment counter implemented by a counting network.

    Every balancer holds a lock-protected arrival count; a traversing thread
    enters on a network input wire, and at each balancer atomically takes the
    next output port ``arrivals mod p``.  Output wire ``i`` dispenses values
    ``i, i + w, i + 2w, ...`` from its own lock-protected local counter.
    """

    def __init__(self, net: Network):
        self.net = net
        self._state = [0] * net.size
        self._locks = [threading.Lock() for _ in range(net.size)]
        self._out_counts = [0] * net.width
        self._out_locks = [threading.Lock() for _ in range(net.width)]
        self._consumer: dict[int, int] = {}
        self._terminal: dict[int, int] = {}
        for b in net.balancers:
            for w in b.inputs:
                self._consumer[w] = b.index
        for pos, w in enumerate(net.outputs):
            self._terminal[w] = pos
        self._entry = threading.Lock()
        self._entry_count = 0
        # Per-balancer traversal counts, maintained under the balancer locks
        # only while repro.obs is enabled and published once per run_threads
        # (instruments themselves are not thread-safe).
        self._obs_visits = [0] * net.size

    def fetch_and_increment(self) -> int:
        """Traverse the network once and return the dispensed value."""
        obs_on = _obs.enabled
        with self._entry:
            pos = self._entry_count % self.net.width
            self._entry_count += 1
        wire = self.net.inputs[pos]
        while wire not in self._terminal:
            b = self.net.balancers[self._consumer[wire]]
            with self._locks[b.index]:
                port = self._state[b.index] % b.width
                self._state[b.index] += 1
                if obs_on:
                    self._obs_visits[b.index] += 1
            wire = b.outputs[port]
        out_pos = self._terminal[wire]
        with self._out_locks[out_pos]:
            k = self._out_counts[out_pos]
            self._out_counts[out_pos] += 1
        return out_pos + k * self.net.width

    def run_threads(self, n_threads: int, ops_per_thread: int) -> ThreadedRunStats:
        """Spawn ``n_threads`` threads each performing ``ops_per_thread``
        fetch-and-increments; returns every value handed out."""
        results: list[list[int]] = [[] for _ in range(n_threads)]
        self._obs_visits = [0] * self.net.size

        def worker(tid: int) -> None:
            vals = results[tid]
            for _ in range(ops_per_thread):
                vals.append(self.fetch_and_increment())

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if _obs.enabled:
            from ..obs.metrics import default_registry
            from ..obs.tracer import default_tracer

            reg = default_registry()
            reg.counter("sim.threaded.ops").inc(n_threads * ops_per_thread)
            if self.net.size:
                reg.vector("sim.threaded.balancer_visits", self.net.size).add_array(
                    self._obs_visits
                )
            default_tracer().record(
                "threaded_run",
                network=self.net.name,
                threads=n_threads,
                ops=n_threads * ops_per_thread,
            )
        return ThreadedRunStats(results, n_threads * ops_per_thread)


class SingleLockCounter:
    """The baseline counting networks compete against: one lock, one word.

    Correct and simple, but every operation serializes on the same cache
    line.  On real MIMD hardware this is the bottleneck Felten et al. [9]
    measured; under CPython's GIL the serialization is already global, so
    the threaded comparison here is honest only about overhead, not
    parallel speedup — the :class:`ContentionSimulator` models the
    parallel-hardware story.
    """

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def fetch_and_increment(self) -> int:
        """Atomically take the next value."""
        with self._lock:
            v = self._value
            self._value += 1
        return v

    def run_threads(self, n_threads: int, ops_per_thread: int) -> ThreadedRunStats:
        """Same driver shape as :meth:`ThreadedCounter.run_threads`."""
        results: list[list[int]] = [[] for _ in range(n_threads)]

        def worker(tid: int) -> None:
            vals = results[tid]
            for _ in range(ops_per_thread):
                vals.append(self.fetch_and_increment())

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return ThreadedRunStats(results, n_threads * ops_per_thread)


@dataclass
class ContentionStats:
    """Aggregate results of a discrete-event contention run.

    ``latencies`` holds every completed operation's latency when the run
    was started with ``collect_latencies=True`` (else ``None``).
    """

    ops: int
    makespan: float
    total_latency: float
    total_wait: float
    latencies: "np.ndarray | None" = None

    @property
    def throughput(self) -> float:
        """Completed operations per unit time (nan for an empty run)."""
        if self.ops == 0:
            return float("nan")
        return self.ops / self.makespan if self.makespan > 0 else float("inf")

    @property
    def mean_latency(self) -> float:
        """Mean completed-operation latency (nan for an empty run)."""
        return self.total_latency / self.ops if self.ops else float("nan")

    @property
    def mean_wait(self) -> float:
        """Mean time spent queued behind other processes at balancers
        (nan for an empty run)."""
        return self.total_wait / self.ops if self.ops else float("nan")

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile (requires ``collect_latencies=True``; nan for
        an empty run)."""
        if self.latencies is None:
            raise ValueError("run with collect_latencies=True to get percentiles")
        if len(self.latencies) == 0:
            return float("nan")
        return float(np.percentile(self.latencies, pct))


class ContentionSimulator:
    """Deterministic discrete-event model of concurrent network traversal.

    ``n_procs`` processes each perform ``ops_per_proc`` traversals
    back-to-back.  Visiting a balancer costs ``access_cost`` time and the
    balancer serves one visitor at a time (FCFS); moving between layers
    costs ``hop_cost``.  Wider balancers concentrate traffic: with width
    ``w`` and balancers of width ``p``, each layer has ``w/p`` of them, so a
    ``p``-balancer sees ``p/w`` of the traffic — the contention/depth
    trade-off of [9].
    """

    def __init__(self, net: Network, access_cost: float = 1.0, hop_cost: float = 0.1):
        if access_cost <= 0:
            raise ValueError("access_cost must be positive")
        self.net = net
        self.access_cost = float(access_cost)
        self.hop_cost = float(hop_cost)
        self._consumer: dict[int, int] = {}
        self._terminal: set[int] = set(net.outputs)
        for b in net.balancers:
            for w in b.inputs:
                self._consumer[w] = b.index

    def run(
        self, n_procs: int, ops_per_proc: int = 1, collect_latencies: bool = False
    ) -> ContentionStats:
        if n_procs <= 0 or ops_per_proc <= 0:
            raise ValueError("n_procs and ops_per_proc must be positive")
        lat_list: list[float] | None = [] if collect_latencies else None
        net = self.net
        # Observability: checked once per run; the per-event accounting below
        # reads simulation state but never alters it, so results are
        # byte-identical with the layer on or off.
        obs_on = _obs.enabled
        obs_visits = np.zeros(net.size, dtype=np.int64) if obs_on else None
        obs_waits = np.zeros(net.size, dtype=np.float64) if obs_on else None
        busy_until = np.zeros(net.size, dtype=np.float64)
        state = np.zeros(net.size, dtype=np.int64)
        # Event heap: (time, seq, proc, wire, ops_left, op_start_time)
        heap: list[tuple[float, int, int, int, int, float]] = []
        seq = 0
        for proc in range(n_procs):
            pos = proc % net.width
            heapq.heappush(heap, (0.0, seq, proc, net.inputs[pos], ops_per_proc, 0.0))
            seq += 1

        ops = 0
        makespan = 0.0
        total_latency = 0.0
        total_wait = 0.0
        while heap:
            t, _, proc, wire, ops_left, op_start = heapq.heappop(heap)
            if wire in self._terminal:
                ops += 1
                total_latency += t - op_start
                if lat_list is not None:
                    lat_list.append(t - op_start)
                makespan = max(makespan, t)
                if ops_left > 1:
                    pos = (proc + ops) % net.width
                    heapq.heappush(
                        heap, (t + self.hop_cost, seq, proc, net.inputs[pos], ops_left - 1, t + self.hop_cost)
                    )
                    seq += 1
                continue
            b_idx = self._consumer[wire]
            b = net.balancers[b_idx]
            start = max(t, float(busy_until[b_idx]))
            total_wait += start - t
            finish = start + self.access_cost
            busy_until[b_idx] = finish
            port = int(state[b_idx]) % b.width
            state[b_idx] += 1
            if obs_on:
                obs_visits[b_idx] += 1  # type: ignore[index]
                obs_waits[b_idx] += start - t  # type: ignore[index]
            heapq.heappush(heap, (finish + self.hop_cost, seq, proc, b.outputs[port], ops_left, op_start))
            seq += 1
        if obs_on:
            self._obs_publish(n_procs, ops, makespan, obs_visits, obs_waits, lat_list)
        return ContentionStats(
            ops,
            makespan,
            total_latency,
            total_wait,
            np.array(lat_list) if lat_list is not None else None,
        )

    def _obs_publish(
        self,
        n_procs: int,
        ops: int,
        makespan: float,
        visits: np.ndarray,
        waits: np.ndarray,
        lat_list: list[float] | None,
    ) -> None:
        """Publish one run's per-balancer accounting into the default
        registry/tracer (only reached while :mod:`repro.obs` is enabled)."""
        from ..obs.metrics import default_registry
        from ..obs.tracer import default_tracer

        reg = default_registry()
        reg.counter("sim.contention.runs").inc()
        reg.counter("sim.contention.ops").inc(ops)
        if self.net.size:
            reg.vector("sim.contention.balancer_visits", self.net.size).add_array(visits)
            reg.vector(
                "sim.contention.balancer_wait", self.net.size, dtype=np.float64
            ).add_array(waits)
        if lat_list:
            hist = reg.histogram("sim.contention.latency")
            for v in lat_list:
                hist.observe(v)
        default_tracer().record(
            "contention_run",
            network=self.net.name,
            n_procs=n_procs,
            ops=ops,
            makespan=round(makespan, 9),
            total_wait=round(float(waits.sum()), 9),
        )
