"""Schedulers for the asynchronous token simulator.

A scheduler repeatedly picks which in-flight token advances next, modelling
the asynchrony of a balancing network: tokens "propagate asynchronously
through the balancers" (paper §1) under an arbitrary interleaving.  The
classic counting-network correctness statement quantifies over *all*
schedules, so tests run every network under several hostile schedules.

A scheduler is any callable ``(pending_ids: Sequence[int], rng) -> int``
returning one element of ``pending_ids``.  The simulator passes the stable
token ids currently able to move.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Scheduler",
    "fifo",
    "lifo",
    "random_scheduler",
    "round_robin",
    "straggler",
    "chaos",
    "SCHEDULERS",
    "get_scheduler",
]

Scheduler = Callable[[Sequence[int], np.random.Generator], int]


def fifo(pending: Sequence[int], rng: np.random.Generator) -> int:
    """Advance the oldest in-flight token (near-synchronous waves)."""
    return pending[0]


def lifo(pending: Sequence[int], rng: np.random.Generator) -> int:
    """Advance the newest token — later tokens overtake earlier ones,
    the adversarial pattern that defeats naive 'sorting implies counting'
    intuition (paper Figure 3)."""
    return pending[-1]


def random_scheduler(pending: Sequence[int], rng: np.random.Generator) -> int:
    """Uniformly random interleaving."""
    return pending[int(rng.integers(0, len(pending)))]


def round_robin(pending: Sequence[int], rng: np.random.Generator) -> int:
    """Cycle across tokens by id, giving every token similar progress."""
    return min(pending)


class straggler:
    """Freeze a fixed fraction of tokens until everything else finishes.

    This produces executions where a few tokens lag arbitrarily far behind —
    the schedules that distinguish counting networks from mere sorting
    networks.  Instances are stateful and single-use per run.
    """

    def __init__(self, fraction: float = 0.25):
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        self.fraction = fraction
        self._frozen: set[int] | None = None

    def __call__(self, pending: Sequence[int], rng: np.random.Generator) -> int:
        if self._frozen is None:
            k = int(len(pending) * self.fraction)
            chosen = rng.choice(len(pending), size=k, replace=False) if k else []
            self._frozen = {pending[int(i)] for i in np.atleast_1d(chosen)}
        movable = [t for t in pending if t not in self._frozen]
        if not movable:  # only stragglers remain: release them
            movable = list(pending)
        return movable[int(rng.integers(0, len(movable)))]


class chaos:
    """Adversarial churn: repeatedly freeze and thaw random token subsets.

    Unlike :class:`straggler` (one frozen set for the whole run), the chaos
    scheduler re-draws its frozen set every ``period`` picks, producing
    bursty stop-the-world-then-stampede interleavings — the schedules the
    fault-injection harness (:mod:`repro.faults.chaos`) uses to stress
    schedule-independence of quiescent counts.  Stateful, single-use.
    """

    def __init__(self, fraction: float = 0.5, period: int = 16):
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.fraction = fraction
        self.period = period
        self._frozen: set[int] = set()
        self._ticks = 0

    def __call__(self, pending: Sequence[int], rng: np.random.Generator) -> int:
        if self._ticks % self.period == 0:
            k = int(len(pending) * self.fraction)
            chosen = rng.choice(len(pending), size=k, replace=False) if k else []
            self._frozen = {pending[int(i)] for i in np.atleast_1d(chosen)}
        self._ticks += 1
        movable = [t for t in pending if t not in self._frozen]
        if not movable:  # everything frozen: thaw for this pick
            movable = list(pending)
        return movable[int(rng.integers(0, len(movable)))]


SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "fifo": lambda: fifo,
    "lifo": lambda: lifo,
    "random": lambda: random_scheduler,
    "round_robin": lambda: round_robin,
    "straggler": lambda: straggler(),
    "chaos": lambda: chaos(),
}


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by name (fresh state for stateful ones)."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}") from None
