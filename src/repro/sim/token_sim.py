"""Asynchronous token-level simulation of balancing networks.

Unlike :mod:`repro.sim.count_sim` (which jumps straight to the
schedule-independent quiescent counts), this simulator moves *individual
tokens* one balancer hop at a time under a pluggable scheduler, exactly
matching the paper's asynchronous semantics: a ``p``-balancer forwards its
``i``-th arriving token to output ``i mod p``.

The step-granular :class:`TokenSimulator` is kept for what genuinely needs
per-token state — traces, exit orders, Fetch&Increment values, and
linearizability schedules.  When only the *quiescent counts* are wanted,
:func:`quiescent_counts` lowers onto the flat
:class:`~repro.core.plan.ExecutionPlan` substrate with ``semantics="token"``
(the batched mod-``p`` balancer kernel) — schedule independence makes the
two agree exactly, and the differential suite pins it.

It is used to

* demonstrate/validate that quiescent counts are schedule-independent,
* drive the Fetch&Increment counter abstraction (each output wire ``i`` of a
  width-``w`` counting network hands out values ``i, i+w, i+2w, ...``),
* produce per-token traces for the visualizer and the Figure-3 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.network import Network
from ..core.plan import plan_executor
from ..core.semantics import get_semantics
from ..obs import runtime as _obs
from ._instrument import run_instrumented
from .schedulers import Scheduler, get_scheduler

__all__ = [
    "Token",
    "RunResult",
    "TokenSimulator",
    "quiescent_counts",
    "run_tokens",
    "fetch_and_increment_values",
]


def quiescent_counts(net: Network, counts: np.ndarray) -> np.ndarray:
    """Quiescent output counts of draining ``counts`` tokens — no stepping.

    ``counts`` may be ``(w,)`` or ``(B, w)`` of non-negative token counts
    per input-sequence position.  Equivalent to
    ``run_tokens(net, counts).output_counts`` under *any* scheduler (the
    paper's schedule-independence argument), but computed with the batched
    mod-``p`` token kernel on the plan substrate: one executor sweep instead
    of ``O(tokens × depth)`` Python hops.  Fault-mutant networks take the
    per-balancer override sweep (a stuck balancer routes every token to its
    stuck port).
    """
    x = np.asarray(counts, dtype=np.int64)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    if x.ndim != 2 or x.shape[1] != net.width:
        raise ValueError(f"expected input shape (B, {net.width}), got {x.shape}")
    if np.any(x < 0):
        raise ValueError("token counts must be non-negative")

    overrides = getattr(net, "fault_overrides", None)
    if overrides:
        out = get_semantics("token").apply_overridden(net, x, overrides)
        return out[0] if single else out

    ex = plan_executor(net, semantics="token")
    if _obs.enabled:
        out = run_instrumented(net, ex, x, "token_quiescent")
    else:
        out = ex.run(x)
    return out[0] if single else out


@dataclass
class Token:
    """One token in flight: where it is, where it has been, and its
    operation interval (global step indices at injection and exit — used by
    the linearizability analysis, cf. paper §6)."""

    token_id: int
    entry_position: int
    wire: int
    trace: list[int] = field(default_factory=list)
    exit_position: int | None = None
    entry_step: int = 0
    exit_step: int | None = None

    @property
    def done(self) -> bool:
        return self.exit_position is not None


@dataclass
class RunResult:
    """Outcome of a completed token run.

    ``output_counts[k]`` is the number of tokens that left on output-sequence
    position ``k``; ``exit_order[k]`` lists token ids in the order they left
    that position.  ``steps`` is the total number of balancer hops executed.
    """

    output_counts: np.ndarray
    exit_order: list[list[int]]
    tokens: list[Token]
    steps: int


class TokenSimulator:
    """Mutable asynchronous simulator for one network.

    Typical use::

        sim = TokenSimulator(net, seed=0)
        sim.inject(input_counts)            # tokens waiting on input wires
        result = sim.run("random")          # drain under a schedule
    """

    def __init__(self, net: Network, seed: int | None = 0, fifo_wires: bool = True):
        """``fifo_wires`` selects the wire model:

        * ``True`` (default): wires are FIFO queues — tokens on one wire
          cannot overtake each other.  This is the clean theoretical model.
        * ``False``: any in-flight token may move next, modelling the
          shared-memory implementation where a traversing *process* can be
          preempted anywhere, even between its last balancer and the output
          counter.  Quiescent counts are identical either way; only
          token-level orderings (and hence linearizability) differ.
        """
        self.net = net
        self.fifo_wires = fifo_wires
        self.rng = np.random.default_rng(seed)
        # Semantic fault overrides (repro.faults mutants): balancer index ->
        # override; a stuck balancer routes every token to one port.
        self._overrides = dict(getattr(net, "fault_overrides", None) or {})
        # Next-output state per balancer: number of tokens that have entered.
        self._arrivals = [0] * net.size
        # wire -> (balancer_index, ) consumer, or output position if terminal.
        self._consumer: dict[int, int] = {}
        self._terminal: dict[int, int] = {}
        for b in net.balancers:
            for w in b.inputs:
                self._consumer[w] = b.index
        for pos, w in enumerate(net.outputs):
            self._terminal[w] = pos
        self.tokens: list[Token] = []
        self._pending: list[int] = []
        self._exit_order: list[list[int]] = [[] for _ in range(net.width)]
        self._steps = 0

    def inject(self, counts: Sequence[int]) -> None:
        """Queue ``counts[k]`` tokens on input-sequence position ``k``.

        Tokens on the same wire are ordered by injection; the scheduler
        controls interleaving *across* wires only (tokens on one wire cannot
        overtake each other before their first balancer, matching FIFO
        wires).
        """
        if len(counts) != self.net.width:
            raise ValueError(f"expected {self.net.width} counts, got {len(counts)}")
        for pos, c in enumerate(counts):
            if c < 0:
                raise ValueError("token counts must be non-negative")
            for _ in range(int(c)):
                self.inject_one(pos)

    def inject_one(self, pos: int) -> int:
        """Queue a single token on input-sequence position ``pos``; returns
        its token id.  The token's operation interval starts now."""
        if not 0 <= pos < self.net.width:
            raise ValueError(f"input position {pos} out of range")
        tok = Token(len(self.tokens), pos, self.net.inputs[pos], entry_step=self._steps)
        self.tokens.append(tok)
        self._pending.append(tok.token_id)
        return tok.token_id

    def _movable(self) -> list[int]:
        """Token ids allowed to advance: per wire, only the head of the FIFO
        queue may move."""
        if not self.fifo_wires:
            return list(self._pending)
        seen_wires: set[int] = set()
        movable = []
        for tid in self._pending:
            w = self.tokens[tid].wire
            if w not in seen_wires:
                movable.append(tid)
                seen_wires.add(w)
        return movable

    def step(self, scheduler: Scheduler) -> bool:
        """Advance one token one hop.  Returns False when quiescent."""
        movable = self._movable()
        if not movable:
            return False
        tid = scheduler(movable, self.rng)
        if tid not in movable:
            raise ValueError("scheduler returned a token that cannot move")
        self._advance_token(tid)
        return True

    def advance(self, tid: int) -> bool:
        """Advance a *specific* token one hop, if it is currently movable
        (head of its wire's FIFO).  Returns False when it cannot move
        (already exited, or queued behind another token).  Used by
        schedule-construction code such as the linearizability search."""
        if self.tokens[tid].done or tid not in self._movable():
            return False
        self._advance_token(tid)
        return True

    def drain_token(self, tid: int, max_steps: int | None = None) -> int:
        """Advance one token repeatedly until it exits; returns its exit
        position.  Raises if the token gets stuck behind another pending
        token (the caller controls the schedule and must avoid that)."""
        limit = max_steps if max_steps is not None else self.net.depth + 2
        for _ in range(limit):
            if self.tokens[tid].done:
                return self.tokens[tid].exit_position  # type: ignore[return-value]
            if not self.advance(tid):
                raise RuntimeError(f"token {tid} is blocked and cannot drain")
        raise RuntimeError(f"token {tid} did not exit within {limit} hops")

    def values_so_far(self) -> dict[int, int]:
        """Fetch&Increment values of the tokens that have exited so far
        (output position ``i`` hands out ``i, i+w, i+2w, ...``)."""
        w = self.net.width
        out: dict[int, int] = {}
        for pos, order in enumerate(self._exit_order):
            for k, tid in enumerate(order):
                out[tid] = pos + k * w
        return out

    def _advance_token(self, tid: int) -> None:
        tok = self.tokens[tid]
        wire = tok.wire
        if wire in self._terminal:
            pos = self._terminal[wire]
            tok.exit_position = pos
            tok.exit_step = self._steps
            self._exit_order[pos].append(tid)
            self._pending.remove(tid)
            if _obs.enabled:
                self._obs_record_exit(tok, pos)
        else:
            b = self.net.balancers[self._consumer[wire]]
            ov = self._overrides.get(b.index)
            port = ov.stuck_port if ov is not None else self._arrivals[b.index] % b.width
            self._arrivals[b.index] += 1
            tok.trace.append(b.index)
            tok.wire = b.outputs[port]
            if _obs.enabled:
                self._obs_record_hop(tok, b, port)
        self._steps += 1

    def _obs_record_exit(self, tok: Token, pos: int) -> None:
        """Observability bookkeeping for a token leaving the network (only
        reached while :mod:`repro.obs` is enabled; reads state, never
        changes simulation behaviour)."""
        from ..obs.metrics import default_registry
        from ..obs.tracer import default_tracer

        reg = default_registry()
        reg.counter("sim.token.exits").inc()
        reg.histogram("sim.token.latency_steps").observe(self._steps - tok.entry_step)
        reg.gauge("sim.token.pending").set(len(self._pending))
        default_tracer().record(
            "token_exit",
            network=self.net.name,
            token=tok.token_id,
            pos=pos,
            latency_steps=self._steps - tok.entry_step,
        )

    def _obs_record_hop(self, tok: Token, b, port: int) -> None:
        """Observability bookkeeping for one balancer traversal."""
        from ..obs.metrics import default_registry
        from ..obs.tracer import default_tracer

        reg = default_registry()
        reg.counter("sim.token.hops").inc()
        reg.vector("sim.token.balancer_visits", self.net.size).inc(b.index)
        reg.gauge("sim.token.pending").set(len(self._pending))
        default_tracer().record(
            "token_hop",
            network=self.net.name,
            token=tok.token_id,
            balancer=b.index,
            port=port,
        )

    def run(self, scheduler: Scheduler | str = "random", max_steps: int | None = None) -> RunResult:
        """Drain all injected tokens to quiescence."""
        sched_name = (
            scheduler
            if isinstance(scheduler, str)
            else getattr(scheduler, "__name__", type(scheduler).__name__)
        )
        if isinstance(scheduler, str):
            scheduler = get_scheduler(scheduler)
        limit = max_steps if max_steps is not None else len(self.tokens) * (self.net.depth + 1) + 1
        while self.step(scheduler):
            if self._steps > limit:
                raise RuntimeError("simulation exceeded step budget — network not draining?")
        counts = np.array([len(order) for order in self._exit_order], dtype=np.int64)
        if _obs.enabled:
            from ..obs.tracer import default_tracer

            default_tracer().record(
                "token_run",
                network=self.net.name,
                scheduler=sched_name,
                tokens=len(self.tokens),
                steps=self._steps,
            )
        return RunResult(counts, [list(o) for o in self._exit_order], list(self.tokens), self._steps)


def run_tokens(
    net: Network,
    counts: Sequence[int],
    scheduler: Scheduler | str = "random",
    seed: int | None = 0,
) -> RunResult:
    """One-shot helper: inject ``counts`` and drain under ``scheduler``."""
    sim = TokenSimulator(net, seed=seed)
    sim.inject(counts)
    return sim.run(scheduler)


def fetch_and_increment_values(result: RunResult) -> dict[int, int]:
    """Values a Fetch&Increment counter built on the network hands out.

    Output position ``i`` of a width-``w`` counting network issues values
    ``i, i + w, i + 2w, ...`` to successive tokens.  For a correct counting
    network draining ``T`` tokens, the returned values are exactly
    ``{0, 1, ..., T-1}`` — each token of the map gets a distinct value and no
    value is skipped.
    """
    w = len(result.exit_order)
    values: dict[int, int] = {}
    for pos, order in enumerate(result.exit_order):
        for k, tid in enumerate(order):
            values[tid] = pos + k * w
    return values
