"""Synchronous comparator-network evaluation (sorting semantics).

Replacing every balancer of a network with a comparator of the same width
yields the isomorphic comparator network (paper §1).  A ``p``-comparator
receives ``p`` values and emits them with the *largest on output position 0*
(matching the balancer convention that the top wire carries the excess
tokens), i.e. comparators sort descending within themselves.

Evaluation lowers onto the flat :class:`~repro.core.plan.ExecutionPlan`
substrate with ``semantics="sort"`` — the same memoized plan, scratch-buffer
pool, and segment sweep the counting path uses, so repeated calls on one
network allocate nothing beyond the output array (width-2 comparators run a
branchless ``np.maximum``/``np.minimum`` kernel).  Fault-mutant networks
(semantic overrides) take the per-balancer override sweep in
:class:`~repro.core.semantics.SortSemantics` instead.
"""

from __future__ import annotations

import numpy as np

from ..core.network import Network
from ..core.plan import plan_executor
from ..core.semantics import get_semantics
from ..obs import runtime as _obs
from ._instrument import run_instrumented

__all__ = [
    "evaluate_comparators",
    "evaluate_comparators_reference",
    "sorts_descending",
    "sorted_outputs",
]


def evaluate_comparators(net: Network, values: np.ndarray) -> np.ndarray:
    """Propagate ``values`` through ``net`` in comparator semantics.

    ``values`` may be ``(w,)`` or ``(B, w)`` of any sortable numpy dtype;
    position ``k`` of each vector enters input-sequence position ``k``.
    Returns the output sequence(s), same shape: position 0 holds what the
    network routed to its top output wire.
    """
    values = np.asarray(values)
    single = values.ndim == 1
    if single:
        values = values[None, :]
    if values.ndim != 2 or values.shape[1] != net.width:
        raise ValueError(f"expected input shape (B, {net.width}), got {values.shape}")

    overrides = getattr(net, "fault_overrides", None)
    if overrides:
        out = get_semantics("sort").apply_overridden(net, values, overrides)
        return out[0] if single else out

    ex = plan_executor(net, semantics="sort")
    if _obs.enabled:
        out = run_instrumented(net, ex, values, "sort")
    else:
        out = ex.run(values)
    return out[0] if single else out


def evaluate_comparators_reference(net: Network, values: np.ndarray) -> np.ndarray:
    """Per-balancer Python-loop evaluator with identical semantics."""
    values = np.asarray(values)
    if values.ndim != 1 or values.shape[0] != net.width:
        raise ValueError(f"expected input shape ({net.width},), got {values.shape}")
    state: dict[int, object] = {}
    for pos, wire in enumerate(net.inputs):
        state[wire] = values[pos]
    for b in net.balancers:
        vals = sorted((state[w] for w in b.inputs), reverse=True)
        for wire, v in zip(b.outputs, vals):
            state[wire] = v
    return np.array([state[w] for w in net.outputs], dtype=values.dtype)


def sorts_descending(net: Network, values: np.ndarray) -> np.ndarray:
    """Boolean per batch row: did the network emit that row in non-increasing
    order?"""
    out = evaluate_comparators(net, values)
    if out.ndim == 1:
        out = out[None, :]
    return np.all(out[:, :-1] >= out[:, 1:], axis=1)


def sorted_outputs(net: Network, values: np.ndarray, ascending: bool = True) -> np.ndarray:
    """Evaluate and present the output in user-facing order.

    The network internally produces descending sequences; most callers of a
    *sorting* API expect ascending output, so this flips by default.
    """
    out = evaluate_comparators(net, values)
    return out[..., ::-1].copy() if ascending else out
