"""Synchronous comparator-network evaluation (sorting semantics).

Replacing every balancer of a network with a comparator of the same width
yields the isomorphic comparator network (paper §1).  A ``p``-comparator
receives ``p`` values and emits them with the *largest on output position 0*
(matching the balancer convention that the top wire carries the excess
tokens), i.e. comparators sort descending within themselves.

Evaluation is batched: a ``(B, w)`` array of ``B`` independent input vectors
is swept through the layer-compiled network with one gather / ``np.sort`` /
scatter per width group per layer — no Python-level loop over balancers.
"""

from __future__ import annotations

import numpy as np

from ..core.compiled import compile_network
from ..core.network import Network

__all__ = [
    "evaluate_comparators",
    "evaluate_comparators_reference",
    "sorts_descending",
    "sorted_outputs",
]


def evaluate_comparators(net: Network, values: np.ndarray) -> np.ndarray:
    """Propagate ``values`` through ``net`` in comparator semantics.

    ``values`` may be ``(w,)`` or ``(B, w)`` of any sortable numpy dtype;
    position ``k`` of each vector enters input-sequence position ``k``.
    Returns the output sequence(s), same shape: position 0 holds what the
    network routed to its top output wire.
    """
    values = np.asarray(values)
    single = values.ndim == 1
    if single:
        values = values[None, :]
    if values.ndim != 2 or values.shape[1] != net.width:
        raise ValueError(f"expected input shape (B, {net.width}), got {values.shape}")

    overrides = getattr(net, "fault_overrides", None)
    if overrides:
        out = _evaluate_overridden(net, values, overrides)
        return out[0] if single else out

    comp = compile_network(net)
    batch = values.shape[0]
    state = np.zeros((comp.num_wires, batch), dtype=values.dtype)
    state[comp.input_idx] = values.T

    for layer in comp.layers:
        for group in layer:
            vals = state[group.in_idx]  # (k, p, B)
            # Descending along the balancer axis: largest value on top wire.
            # (np.sort ascending then reverse is dtype-safe, unlike negation.)
            state[group.out_idx] = np.sort(vals, axis=1)[:, ::-1]

    out = state[comp.output_idx].T
    return out[0] if single else out


def _evaluate_overridden(net: Network, values: np.ndarray, overrides: dict) -> np.ndarray:
    """Per-balancer batched sweep honoring semantic fault overrides.

    A stuck comparator does not compare at all: values pass through in
    arrival order (the value-semantics projection of a dead routing bit —
    token-level stuckness has no conservation-respecting analogue over
    distinct values).  Only :class:`repro.faults.FaultyNetwork` mutants
    reach this path.
    """
    state = np.zeros((net.num_wires, values.shape[0]), dtype=values.dtype)
    state[list(net.inputs)] = values.T
    for b in net.balancers:
        vals = state[list(b.inputs)]  # (p, B)
        if b.index in overrides:
            state[list(b.outputs)] = vals  # broken comparator: no exchange
        else:
            state[list(b.outputs)] = np.sort(vals, axis=0)[::-1]
    return state[list(net.outputs)].T


def evaluate_comparators_reference(net: Network, values: np.ndarray) -> np.ndarray:
    """Per-balancer Python-loop evaluator with identical semantics."""
    values = np.asarray(values)
    if values.ndim != 1 or values.shape[0] != net.width:
        raise ValueError(f"expected input shape ({net.width},), got {values.shape}")
    state: dict[int, object] = {}
    for pos, wire in enumerate(net.inputs):
        state[wire] = values[pos]
    for b in net.balancers:
        vals = sorted((state[w] for w in b.inputs), reverse=True)
        for wire, v in zip(b.outputs, vals):
            state[wire] = v
    return np.array([state[w] for w in net.outputs], dtype=values.dtype)


def sorts_descending(net: Network, values: np.ndarray) -> np.ndarray:
    """Boolean per batch row: did the network emit that row in non-increasing
    order?"""
    out = evaluate_comparators(net, values)
    if out.ndim == 1:
        out = out[None, :]
    return np.all(out[:, :-1] >= out[:, 1:], axis=1)


def sorted_outputs(net: Network, values: np.ndarray, ascending: bool = True) -> np.ndarray:
    """Evaluate and present the output in user-facing order.

    The network internally produces descending sequences; most callers of a
    *sorting* API expect ascending output, so this flips by default.
    """
    out = evaluate_comparators(net, values)
    return out[..., ::-1].copy() if ascending else out
