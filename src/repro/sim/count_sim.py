"""Quiescent-state token-count propagation for balancing networks.

A ``p``-balancer routes its ``i``-th arriving token to output ``i mod p``, so
in any quiescent state its output counts depend only on the *total* number of
tokens ``T`` that entered it: output position ``j`` has seen exactly
``ceil((T - j) / p) = (T - j + p - 1) // p`` tokens.  Totals therefore
propagate deterministically through the DAG regardless of the asynchronous
schedule — the classic observation underlying counting-network proofs.  This
module exploits that to evaluate a network on thousands of input count
vectors at once with pure numpy.

Two evaluators are provided:

* :func:`propagate_counts` — vectorized, layer-compiled (the fast path);
* :func:`propagate_counts_reference` — a transparent per-balancer Python
  loop used in tests to cross-check the vectorized path.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.compiled import CompiledNetwork, compile_network
from ..core.network import Network
from ..obs import runtime as _obs

__all__ = [
    "balancer_outputs",
    "propagate_counts",
    "propagate_counts_reference",
    "output_counts",
]


def balancer_outputs(total: int, p: int) -> np.ndarray:
    """Quiescent output counts of a single ``p``-balancer fed ``total``
    tokens: position ``j`` gets ``ceil((total - j)/p)``."""
    if total < 0:
        raise ValueError("token count must be non-negative")
    j = np.arange(p, dtype=np.int64)
    return (total - j + p - 1) // p


def propagate_counts(net: Network, x: np.ndarray) -> np.ndarray:
    """Quiescent output counts of ``net`` for input counts ``x``.

    ``x`` may be a single vector of shape ``(w,)`` or a batch ``(B, w)``;
    the result has the same shape.  Entry ``k`` of a vector is the number of
    tokens entering on input-sequence position ``k`` (wire ``inputs[k]``).
    """
    x = np.asarray(x, dtype=np.int64)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    if x.ndim != 2 or x.shape[1] != net.width:
        raise ValueError(f"expected input shape (B, {net.width}), got {x.shape}")
    if np.any(x < 0):
        raise ValueError("token counts must be non-negative")

    overrides = getattr(net, "fault_overrides", None)
    if overrides:
        out = _propagate_overridden(net, x, overrides)
        return out[0] if single else out

    comp = compile_network(net)
    batch = x.shape[0]
    state = np.zeros((comp.num_wires, batch), dtype=np.int64)
    state[comp.input_idx] = x.T

    if _obs.enabled:
        _propagate_instrumented(net, comp, state, batch)
    else:
        for layer in comp.layers:
            for group in layer:
                p = group.width
                vals = state[group.in_idx]  # (k, p, B)
                totals = vals.sum(axis=1, keepdims=True)  # (k, 1, B)
                state[group.out_idx] = (totals - group.offsets + p - 1) // p

    out = state[comp.output_idx].T  # (B, w)
    return out[0] if single else out


def _propagate_instrumented(
    net: Network, comp: CompiledNetwork, state: np.ndarray, batch: int
) -> None:
    """The same layer sweep as the fast path, with per-layer timing.

    Only reached while :mod:`repro.obs` is enabled; the arithmetic is
    identical to the un-instrumented branch, so outputs are byte-identical
    either way — instrumentation observes, it never participates.
    """
    from ..obs.metrics import default_registry
    from ..obs.tracer import default_tracer

    reg = default_registry()
    tracer = default_tracer()
    reg.counter("sim.counts.batches").inc()
    reg.counter("sim.counts.vectors").inc(batch)
    reg.histogram("sim.counts.batch_size").observe(batch)
    layer_time = (
        reg.vector("sim.counts.layer_seconds", comp.depth, dtype=np.float64)
        if comp.depth
        else None
    )
    for d, layer in enumerate(comp.layers):
        t0 = time.perf_counter()
        for group in layer:
            p = group.width
            vals = state[group.in_idx]  # (k, p, B)
            totals = vals.sum(axis=1, keepdims=True)  # (k, 1, B)
            state[group.out_idx] = (totals - group.offsets + p - 1) // p
        dt = time.perf_counter() - t0
        layer_time.inc(d, dt)  # type: ignore[union-attr]
        tracer.record(
            "count_layer", network=net.name, layer=d, groups=len(layer), batch=batch,
            dur_s=round(dt, 9),
        )


def _propagate_overridden(net: Network, x: np.ndarray, overrides: dict) -> np.ndarray:
    """Per-balancer batched sweep honoring semantic fault overrides.

    Used for :class:`repro.faults.FaultyNetwork` mutants (e.g. stuck
    balancers) whose behavior is not expressible in the structural IR the
    layer compiler consumes.  Off the hot path by construction — pristine
    networks never reach it.
    """
    batch = x.shape[0]
    state = np.zeros((net.num_wires, batch), dtype=np.int64)
    state[list(net.inputs)] = x.T
    for b in net.balancers:
        totals = state[list(b.inputs)].sum(axis=0)
        ov = overrides.get(b.index)
        if ov is not None:
            state[list(b.outputs)] = ov.apply_counts(totals, b.width)
        else:
            j = np.arange(b.width, dtype=np.int64)[:, None]
            state[list(b.outputs)] = (totals[None, :] - j + b.width - 1) // b.width
    return state[list(net.outputs)].T


def propagate_counts_reference(net: Network, x: np.ndarray) -> np.ndarray:
    """Slow per-balancer evaluator with identical semantics (for tests)."""
    x = np.asarray(x, dtype=np.int64)
    if x.ndim != 1 or x.shape[0] != net.width:
        raise ValueError(f"expected input shape ({net.width},), got {x.shape}")
    overrides = getattr(net, "fault_overrides", None) or {}
    state = np.zeros(net.num_wires, dtype=np.int64)
    for pos, wire in enumerate(net.inputs):
        state[wire] = x[pos]
    for b in net.balancers:
        total = int(sum(state[w] for w in b.inputs))
        ov = overrides.get(b.index)
        if ov is not None:
            for j, wire in enumerate(b.outputs):
                state[wire] = total if j == ov.stuck_port else 0
            continue
        for j, wire in enumerate(b.outputs):
            state[wire] = (total - j + b.width - 1) // b.width
    return state[list(net.outputs)]


def output_counts(net: Network, total_tokens: int) -> np.ndarray:
    """Output counts when ``total_tokens`` tokens enter round-robin on the
    input wires (the canonical balanced feed): input position ``k`` receives
    ``ceil((total_tokens - k)/w)`` tokens."""
    x = balancer_outputs(total_tokens, net.width)
    return propagate_counts(net, x)
