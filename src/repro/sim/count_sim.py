"""Quiescent-state token-count propagation for balancing networks.

A ``p``-balancer routes its ``i``-th arriving token to output ``i mod p``, so
in any quiescent state its output counts depend only on the *total* number of
tokens ``T`` that entered it: output position ``j`` has seen exactly
``ceil((T - j) / p) = (T - j + p - 1) // p`` tokens.  Totals therefore
propagate deterministically through the DAG regardless of the asynchronous
schedule — the classic observation underlying counting-network proofs.  This
module exploits that to evaluate a network on thousands of input count
vectors at once with pure numpy.

Two evaluators are provided:

* :func:`propagate_counts` — runs the network's flat
  :class:`~repro.core.plan.ExecutionPlan` through a pooled
  :class:`~repro.core.plan.PlanExecutor` (zero steady-state allocation);
  pass ``workers=N`` to shard large batches over a process pool;
* :func:`propagate_counts_reference` — a transparent per-balancer Python
  loop used in tests to cross-check the vectorized path.
"""

from __future__ import annotations

import numpy as np

from ..core.network import Network
from ..core.plan import plan_executor
from ..core.semantics import get_semantics
from ..obs import runtime as _obs
from ._instrument import record_batch_metrics, run_instrumented

__all__ = [
    "balancer_outputs",
    "propagate_counts",
    "propagate_counts_reference",
    "output_counts",
]


def balancer_outputs(total: int, p: int) -> np.ndarray:
    """Quiescent output counts of a single ``p``-balancer fed ``total``
    tokens: position ``j`` gets ``ceil((total - j)/p)``."""
    if total < 0:
        raise ValueError("token count must be non-negative")
    j = np.arange(p, dtype=np.int64)
    return (total - j + p - 1) // p


def propagate_counts(net: Network, x: np.ndarray, workers: int | None = None) -> np.ndarray:
    """Quiescent output counts of ``net`` for input counts ``x``.

    ``x`` may be a single vector of shape ``(w,)`` or a batch ``(B, w)``;
    the result has the same shape.  Entry ``k`` of a vector is the number of
    tokens entering on input-sequence position ``k`` (wire ``inputs[k]``).

    ``workers=N`` (N > 1) shards a large batch row-wise over a process pool
    sharing the network's execution plan — rows are independent, so results
    are byte-identical to the serial path.  Small batches fall back to
    serial evaluation automatically.
    """
    x = np.asarray(x, dtype=np.int64)
    single = x.ndim == 1
    if single:
        x = x[None, :]
    if x.ndim != 2 or x.shape[1] != net.width:
        raise ValueError(f"expected input shape (B, {net.width}), got {x.shape}")
    if np.any(x < 0):
        raise ValueError("token counts must be non-negative")

    overrides = getattr(net, "fault_overrides", None)
    if overrides:
        # Mutant networks (e.g. stuck balancers) take the per-balancer
        # override sweep in CountSemantics; pristine nets never reach it.
        out = get_semantics("count").apply_overridden(net, x, overrides)
        return out[0] if single else out

    ex = plan_executor(net)
    if workers is not None and int(workers) > 1:
        out = ex.run_parallel(x, int(workers))
        if _obs.enabled:
            record_batch_metrics("counts", x.shape[0])
        return out[0] if single else out
    if _obs.enabled:
        out = run_instrumented(net, ex, x, "counts", event="count_layer")
    else:
        out = ex.run(x)
    return out[0] if single else out


def propagate_counts_reference(net: Network, x: np.ndarray) -> np.ndarray:
    """Slow per-balancer evaluator with identical semantics (for tests)."""
    x = np.asarray(x, dtype=np.int64)
    if x.ndim != 1 or x.shape[0] != net.width:
        raise ValueError(f"expected input shape ({net.width},), got {x.shape}")
    overrides = getattr(net, "fault_overrides", None) or {}
    in_idx, out_idx = net.io_arrays()
    state = np.zeros(net.num_wires, dtype=np.int64)
    state[in_idx] = x
    for b in net.balancers:
        total = int(sum(state[w] for w in b.inputs))
        ov = overrides.get(b.index)
        if ov is not None:
            for j, wire in enumerate(b.outputs):
                state[wire] = total if j == ov.stuck_port else 0
            continue
        for j, wire in enumerate(b.outputs):
            state[wire] = (total - j + b.width - 1) // b.width
    return state[out_idx]


def output_counts(net: Network, total_tokens: int) -> np.ndarray:
    """Output counts when ``total_tokens`` tokens enter round-robin on the
    input wires (the canonical balanced feed): input position ``k`` receives
    ``ceil((total_tokens - k)/w)`` tokens."""
    x = balancer_outputs(total_tokens, net.width)
    return propagate_counts(net, x)
