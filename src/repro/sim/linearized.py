"""Linearizable counting on top of a counting network (paper §6).

The paper's closing question asks what timing constraints make counting
networks linearizable.  The classic answer from its references [13-15]
(Herlihy, Shavit & Waarts) is *waiting*: a counting network hands out each
value exactly once, so an operation that obtained value ``v`` can simply
wait until every value below ``v`` has been **returned** before returning
itself.  Real-time order is then respected — at the cost of wait-freedom
(a stalled token blocks all larger values).

Two implementations:

* :class:`LinearizedThreadedCounter` — threads traverse the network as in
  :class:`~repro.sim.concurrent.ThreadedCounter`, then block on a
  condition variable until the global release counter reaches their value.
* :func:`linearize_history` — the same discipline applied to a token-sim
  history: each operation's end time is pushed to the release point of its
  value, producing a history that always passes
  :func:`repro.analysis.linearizability.check_history`.
"""

from __future__ import annotations

import threading

from ..core.network import Network
from .concurrent import ThreadedCounter, ThreadedRunStats

__all__ = ["LinearizedThreadedCounter", "linearize_history"]


class LinearizedThreadedCounter(ThreadedCounter):
    """A linearizable Fetch&Increment counter: counting network + waiting.

    ``fetch_and_increment`` first obtains a value ``v`` from the underlying
    counting network, then waits until all values ``< v`` have been
    returned.  Because the network issues every value exactly once, the
    wait always terminates once earlier tokens finish — the timing
    constraint of §6 made explicit.
    """

    def __init__(self, net: Network):
        super().__init__(net)
        self._release = 0
        self._release_cv = threading.Condition()

    def fetch_and_increment(self) -> int:
        value = super().fetch_and_increment()
        with self._release_cv:
            while self._release != value:
                self._release_cv.wait()
            self._release += 1
            self._release_cv.notify_all()
        return value


def linearize_history(ops: list) -> list:
    """Apply the waiting discipline to a completed token-sim history.

    Input/output are :class:`repro.analysis.linearizability.Operation`
    lists.  Each operation's end time becomes the release time of its
    value: ``release(v) = max(end(v), release(v-1) + epsilon)`` — i.e. an
    operation returns only after all smaller values have returned.  The
    resulting history is linearizable by construction (verified in the
    tests via ``check_history``).
    """
    from ..analysis.linearizability import Operation

    by_value = sorted(ops, key=lambda o: o.value)
    out: list[Operation] = []
    release = -1
    for o in by_value:
        end = max(o.end, release + 1)
        release = end
        out.append(Operation(o.token_id, o.start, end, o.value))
    return out
