"""Shared observability wrapper for plan-lowered simulator entry points.

All three simulator facades (:func:`~repro.sim.count_sim.propagate_counts`,
:func:`~repro.sim.sort_sim.evaluate_comparators`,
:func:`~repro.sim.token_sim.quiescent_counts`) run the same
:class:`~repro.core.plan.PlanExecutor` sweep; only the metric namespace
differs (``sim.counts.*``, ``sim.sort.*``, ``sim.token_quiescent.*``).
This module holds the one instrumented-run implementation they share.

Only reached while :mod:`repro.obs` is enabled; the arithmetic is identical
to the un-instrumented branch, so outputs are byte-identical either way —
instrumentation observes, it never participates.
"""

from __future__ import annotations

import numpy as np

from ..core.network import Network
from ..core.plan import PlanExecutor

__all__ = ["record_batch_metrics", "run_instrumented"]


def record_batch_metrics(namespace: str, batch: int) -> None:
    """Count one batch of ``batch`` vectors under ``sim.<namespace>.*``."""
    from ..obs.metrics import default_registry

    reg = default_registry()
    reg.counter(f"sim.{namespace}.batches").inc()
    reg.counter(f"sim.{namespace}.vectors").inc(batch)
    reg.histogram(f"sim.{namespace}.batch_size").observe(batch)


def run_instrumented(
    net: Network,
    ex: PlanExecutor,
    x: np.ndarray,
    namespace: str,
    event: str | None = None,
) -> np.ndarray:
    """The same plan sweep as the fast path, with per-layer timing.

    Accumulates per-layer wall-clock into the
    ``sim.<namespace>.layer_seconds`` metric vector and emits one trace
    event per layer (``event``, default ``<namespace>_layer``; the counting
    path keeps its historical ``count_layer`` name).
    """
    from ..obs.metrics import default_registry
    from ..obs.tracer import default_tracer

    plan = ex.plan
    batch = x.shape[0]
    record_batch_metrics(namespace, batch)
    if plan.depth == 0:
        return ex.run(x)
    times = np.zeros(plan.depth, dtype=np.float64)
    out = ex.run(x, layer_times=times)
    reg = default_registry()
    tracer = default_tracer()
    layer_time = reg.vector(
        f"sim.{namespace}.layer_seconds", plan.depth, dtype=np.float64
    )
    groups = plan.layer_segment_counts()
    if event is None:
        event = f"{namespace}_layer"
    for d in range(plan.depth):
        dt = float(times[d])
        layer_time.inc(d, dt)
        tracer.record(
            event,
            network=net.name,
            layer=d,
            groups=int(groups[d]),
            batch=batch,
            dur_s=round(dt, 9),
        )
    return out
