"""Simulators: quiescent counts, synchronous sorting, async tokens, threads.

See DESIGN.md section 2 for how each simulator substitutes for the paper's
abstract asynchronous shared-memory machine.
"""

from .count_sim import balancer_outputs, output_counts, propagate_counts, propagate_counts_reference
from .sort_sim import (
    evaluate_comparators,
    evaluate_comparators_reference,
    sorted_outputs,
    sorts_descending,
)
from .token_sim import (
    RunResult,
    Token,
    TokenSimulator,
    fetch_and_increment_values,
    quiescent_counts,
    run_tokens,
)
from .schedulers import SCHEDULERS, get_scheduler
from .concurrent import (
    ContentionSimulator,
    ContentionStats,
    SingleLockCounter,
    ThreadedCounter,
    ThreadedRunStats,
)
from .linearized import LinearizedThreadedCounter, linearize_history

__all__ = [
    "balancer_outputs",
    "output_counts",
    "propagate_counts",
    "propagate_counts_reference",
    "evaluate_comparators",
    "evaluate_comparators_reference",
    "sorted_outputs",
    "sorts_descending",
    "RunResult",
    "Token",
    "TokenSimulator",
    "fetch_and_increment_values",
    "quiescent_counts",
    "run_tokens",
    "SCHEDULERS",
    "get_scheduler",
    "ContentionSimulator",
    "ContentionStats",
    "ThreadedCounter",
    "ThreadedRunStats",
    "SingleLockCounter",
    "LinearizedThreadedCounter",
    "linearize_history",
]
