"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

``render_registry`` turns the registry's instruments into the plain-text
format every metrics scraper understands (`# TYPE` comments plus
``name{labels} value`` samples):

* **counters** and **gauges** become single samples;
* **histograms** become the standard cumulative-bucket triplet —
  ``name_bucket{le="..."}`` (including the mandatory ``le="+Inf"`` bucket),
  ``name_sum`` and ``name_count`` — plus ``name_max``/``name_min`` gauges
  so consumers can clamp percentile estimates to observed extrema (the
  text format itself carries no max, and an unclamped top-bucket estimate
  would be ``+Inf``);
* **vector counters** become per-index labelled samples
  (``name{index="i"}``) up to :data:`VECTOR_INDEX_LIMIT` entries; larger
  vectors (per-balancer arrays can hold 10^5 entries) are summarized as
  ``name_sum`` / ``name_size`` instead of flooding the scrape.

Metric names are sanitized (``serve.batch_size`` → ``repro_serve_batch_size``)
and every series is prefixed with ``repro_``.

The module also ships the *consumer* half so CI and ``repro top`` do not
re-implement scrape handling: :func:`parse_prometheus` (a validating
parser for the subset rendered here), :func:`histogram_from_samples`, and
:func:`percentile_from_buckets` (bucket-interpolation that never returns
the ``+Inf`` bound — see the clamping notes on
:meth:`repro.obs.metrics.Histogram.percentile`).
"""

from __future__ import annotations

import math
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, VectorCounter

__all__ = [
    "METRIC_PREFIX",
    "VECTOR_INDEX_LIMIT",
    "metric_name",
    "render_registry",
    "render_registries",
    "relabel_exposition",
    "merge_expositions",
    "parse_prometheus",
    "histogram_from_samples",
    "percentile_from_buckets",
]

METRIC_PREFIX = "repro_"

#: Vectors longer than this are summarized (sum + size) instead of
#: emitting one labelled sample per index.
VECTOR_INDEX_LIMIT = 128

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN)$"
)
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>counter|gauge|histogram|summary|untyped)$"
)


def metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Prometheus-safe series name for a registry instrument name."""
    return prefix + _NAME_SANITIZE.sub("_", name)


def _fmt(value: float) -> str:
    """Format a sample value (Prometheus accepts any decimal/exponent form)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return format(float(value), ".10g")


def _render_histogram(lines: list[str], name: str, h: Histogram) -> None:
    lines.append(f"# TYPE {name} histogram")
    cum = 0
    for bound, count in zip(h.bounds, h.counts):
        cum += count
        lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cum}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {h.total}')
    lines.append(f"{name}_sum {_fmt(h.sum)}")
    lines.append(f"{name}_count {h.total}")
    if h.total:
        lines.append(f"# TYPE {name}_max gauge")
        lines.append(f"{name}_max {_fmt(h.max_value)}")
        lines.append(f"# TYPE {name}_min gauge")
        lines.append(f"{name}_min {_fmt(h.min_value)}")


def _render_vector(lines: list[str], name: str, v: VectorCounter) -> None:
    if v.size <= VECTOR_INDEX_LIMIT:
        lines.append(f"# TYPE {name} counter")
        for i, val in enumerate(v.values.tolist()):
            lines.append(f'{name}{{index="{i}"}} {_fmt(float(val))}')
    else:
        lines.append(f"# TYPE {name}_sum counter")
        lines.append(f"{name}_sum {_fmt(float(v.values.sum()))}")
        lines.append(f"# TYPE {name}_size gauge")
        lines.append(f"{name}_size {v.size}")


def render_registry(
    registry: MetricsRegistry, prefix: str = METRIC_PREFIX, _seen: set[str] | None = None
) -> str:
    """Render every instrument of ``registry`` as Prometheus text."""
    lines: list[str] = []
    seen = _seen if _seen is not None else set()
    for raw in registry.names():
        inst = registry.get(raw)
        name = metric_name(raw, prefix)
        if name in seen:
            continue
        seen.add(name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            _render_histogram(lines, name, inst)
        elif isinstance(inst, VectorCounter):
            _render_vector(lines, name, inst)
    return "\n".join(lines) + ("\n" if lines else "")


def render_registries(registries, prefix: str = METRIC_PREFIX) -> str:
    """Render several registries into one exposition.

    Earlier registries win on name collisions — the serving layer renders
    its scrape-time mirror first, then the process-global registry.
    """
    seen: set[str] = set()
    return "".join(render_registry(r, prefix, _seen=seen) for r in registries)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def relabel_exposition(text: str, labels: dict[str, str]) -> str:
    """Inject ``labels`` into every sample of a Prometheus exposition.

    The cluster router scrapes each shard's ``METRICS`` payload and tags it
    with ``shard="i"`` before aggregation, so per-shard series stay
    distinguishable in one scrape.  Existing labels are preserved; on a
    name collision the injected label wins.  Comment lines (``# TYPE`` ...)
    pass through untouched; malformed sample lines raise ``ValueError``.
    """
    if not labels:
        return text
    out: list[str] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            out.append(line)
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        merged = _parse_labels(m.group("labels"))
        merged.update(labels)
        pairs = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(merged.items()))
        out.append(f"{m.group('name')}{{{pairs}}} {m.group('value')}")
    return "\n".join(out) + ("\n" if out else "")


def merge_expositions(texts) -> str:
    """Concatenate expositions, keeping only the first ``# TYPE`` per series.

    Prometheus forbids a series name being typed twice in one scrape; when
    the router merges per-shard payloads (same series names, different
    ``shard`` labels) the duplicate ``# TYPE`` lines must be dropped.
    """
    seen_types: set[str] = set()
    out: list[str] = []
    for text in texts:
        for line in text.splitlines():
            m = _TYPE_RE.match(line)
            if m is not None:
                if m.group("name") in seen_types:
                    continue
                seen_types.add(m.group("name"))
            out.append(line)
    return "\n".join(out) + ("\n" if out else "")


# -- consumer half ------------------------------------------------------------


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    labels: dict[str, str] = {}
    for part in text.rstrip(",").split(","):
        m = _LABEL_RE.match(part.strip())
        if m is None:
            raise ValueError(f"malformed label pair {part!r}")
        labels[m.group(1)] = m.group(2).replace('\\"', '"').replace("\\\\", "\\")
    return labels


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse (and validate) Prometheus text into per-series samples.

    Returns ``{series_name: {"type": str | None, "samples": [(labels, value)]}}``
    keyed by the *full* sample name (``foo_bucket`` and ``foo_sum`` are
    separate entries; use :func:`histogram_from_samples` to reassemble).
    Raises :class:`ValueError` on any line that is neither a valid comment
    nor a valid sample — this is the validator CI's serve smoke runs
    against a live scrape.
    """
    series: dict[str, dict] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _TYPE_RE.match(line)
            if m is not None:
                types[m.group("name")] = m.group("type")
                continue
            if line.startswith("# HELP ") or line.startswith("# EOF"):
                continue
            raise ValueError(f"line {lineno}: malformed comment {line!r}")
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        value = float(m.group("value").replace("Inf", "inf"))
        labels = _parse_labels(m.group("labels"))
        entry = series.setdefault(name, {"type": None, "samples": []})
        entry["samples"].append((labels, value))
    for name, entry in series.items():
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        entry["type"] = types.get(base) or types.get(name)
    _validate_histograms(series)
    return series


def _validate_histograms(series: dict[str, dict]) -> None:
    for name, entry in series.items():
        if not name.endswith("_bucket") or entry["type"] != "histogram":
            continue
        base = name[: -len("_bucket")]
        # Group by the non-le labels: a merged cluster scrape carries one
        # bucket family per shard= label, each cumulative on its own.
        groups: dict[tuple, list[tuple[str, float]]] = {}
        for labels, value in entry["samples"]:
            le = labels.get("le")
            if le is None:
                raise ValueError(f"{name}: bucket sample without le label")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            groups.setdefault(key, []).append((le, value))
        counts = {
            tuple(sorted(labels.items())): value
            for labels, value in series.get(f"{base}_count", {"samples": []})["samples"]
        }
        for key, raw in groups.items():
            pairs = []
            inf_count = None
            for le, value in raw:
                if le == "+Inf":
                    inf_count = value
                else:
                    pairs.append((float(le), value))
            if inf_count is None:
                raise ValueError(f"{name}: missing le=\"+Inf\" bucket")
            pairs.sort()
            cum = [v for _, v in pairs] + [inf_count]
            if any(b > a for a, b in zip(cum[1:], cum[:-1])):
                raise ValueError(f"{name}: bucket counts are not cumulative")
            if key in counts and counts[key] != inf_count:
                raise ValueError(f"{base}: _count disagrees with the +Inf bucket")


def histogram_from_samples(
    series: dict[str, dict], base: str
) -> tuple[list[float], list[float], float, float] | None:
    """Reassemble ``(bounds, cumulative_counts, sum, count)`` for ``base``.

    ``bounds`` are the finite bucket edges (ascending) and
    ``cumulative_counts`` has one extra trailing entry for the ``+Inf``
    bucket.  Returns ``None`` when the series is absent.
    """
    bucket = series.get(f"{base}_bucket")
    if bucket is None:
        return None
    finite: list[tuple[float, float]] = []
    inf_count = 0.0
    for labels, value in bucket["samples"]:
        le = labels.get("le", "")
        if le == "+Inf":
            inf_count = value
        else:
            finite.append((float(le), value))
    finite.sort()
    bounds = [b for b, _ in finite]
    cum = [c for _, c in finite] + [inf_count]
    total = series.get(f"{base}_count", {"samples": [({}, inf_count)]})["samples"][0][1]
    s = series.get(f"{base}_sum", {"samples": [({}, float("nan"))]})["samples"][0][1]
    return bounds, cum, s, total


def percentile_from_buckets(
    bounds, cumulative, pct: float, max_value: float | None = None
) -> float:
    """Percentile estimate from cumulative bucket counts — always finite.

    ``cumulative`` must have ``len(bounds) + 1`` entries (the last is the
    ``+Inf`` bucket's cumulative count == total).  Inside the winning
    bucket the estimate interpolates linearly; for the overflow bucket the
    upper edge is ``max_value`` when given (and finite), else the last
    finite bound — the ``+Inf`` edge itself never leaks into the result.
    """
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100]")
    if not bounds or len(cumulative) != len(bounds) + 1:
        raise ValueError("cumulative must have len(bounds) + 1 entries")
    total = float(cumulative[-1])
    if total <= 0:
        return float("nan")
    # Upper edge of the overflow bucket: the observed maximum when known,
    # never the nominal +Inf.
    top = float(max_value) if max_value is not None and math.isfinite(max_value) else float(bounds[-1])
    target = pct / 100.0 * total
    prev_cum = 0.0
    for i, cum in enumerate(cumulative):
        cum = float(cum)
        in_bucket = cum - prev_cum
        if cum >= target and in_bucket > 0:
            lo = float(bounds[i - 1]) if i > 0 else 0.0
            hi = float(bounds[i]) if i < len(bounds) else max(top, float(bounds[-1]))
            if not math.isfinite(hi):
                hi = max(top, float(bounds[-1]))
            if hi < lo:
                return lo
            frac = (target - prev_cum) / in_bucket
            return float(lo + (hi - lo) * frac)
        prev_cum = cum
    return max(top, float(bounds[-1]))
