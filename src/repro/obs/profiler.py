"""The ``repro profile`` engine: build, run a workload, rank hot spots.

:func:`profile_network` builds a network under a scoped observability
capture, drives one of three workloads through it, and folds the recorded
metrics into per-layer and per-balancer tables:

* ``tokens`` — the asynchronous :class:`~repro.sim.TokenSimulator` under a
  named scheduler; hot spots are balancer visit counts, plus a token
  latency histogram in steps;
* ``contention`` — the discrete-event
  :class:`~repro.sim.ContentionSimulator`; hot spots are balancer visits
  and the time processes spent queued at each balancer;
* ``counts`` — the vectorized plan-executor batch evaluator; hot spots are
  per-layer wall-clock times of the numpy sweep.  ``semantics=`` selects
  which of the three plan kernels runs: ``count``
  (:func:`~repro.sim.propagate_counts`), ``sort``
  (:func:`~repro.sim.evaluate_comparators`), or ``token``
  (:func:`~repro.sim.quiescent_counts`).

The result carries everything the CLI needs: table rows for
:func:`repro.analysis.format_table`, a JSON payload for
``BENCH_profile.json``, and the tracer whose ring buffer becomes the
JSON-lines trace file.

Heavy imports (:mod:`repro.sim`, :mod:`repro.networks`) are deferred into
the function bodies: this module is imported by ``repro.obs.__init__``,
which the instrumented core modules import in turn, so its import footprint
must stay acyclic and tiny.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["ProfileReport", "profile_network", "WORKLOADS"]

WORKLOADS = ("tokens", "contention", "counts")

#: Metric namespace (``sim.<ns>.*``) each plan semantics reports under.
_SEM_NAMESPACE = {"count": "counts", "sort": "sort", "token": "token_quiescent"}


@dataclass
class ProfileReport:
    """Hot-spot profile of one network under one workload."""

    network: dict
    workload: str
    summary: dict
    layer_rows: list[dict]
    balancer_rows: list[dict]
    registry: MetricsRegistry
    tracer: Tracer
    metric_rows: list[dict] = field(default_factory=list)
    semantics: str = "count"

    def layer_table(self) -> str:
        """Per-layer hot-spot table (aligned plain text)."""
        from ..analysis.stats import format_table

        return format_table(self.layer_rows)

    def balancer_table(self, top: int | None = None) -> str:
        """Per-balancer hot-spot table, hottest first, optionally truncated."""
        from ..analysis.stats import format_table

        rows = self.balancer_rows if top is None else self.balancer_rows[:top]
        return format_table(rows)

    def bench_payload(self) -> dict:
        """The ``BENCH_profile.json`` body (sans envelope)."""
        return {
            "network": self.network,
            "workload": self.workload,
            "semantics": self.semantics,
            "summary": self.summary,
            "layers": self.layer_rows,
            "balancers": self.balancer_rows,
            "metrics": self.registry.snapshot(),
        }


def _vector_values(registry: MetricsRegistry, name: str, size: int) -> np.ndarray:
    vec = registry.get(name)
    if vec is None:
        return np.zeros(size)
    values = vec.values  # type: ignore[union-attr]
    out = np.zeros(size, dtype=values.dtype)
    out[: min(size, len(values))] = values[:size]
    return out


def _histogram_stats(registry: MetricsRegistry, name: str) -> dict:
    hist = registry.get(name)
    if hist is None or hist.total == 0:  # type: ignore[union-attr]
        return {}
    return {
        "count": hist.total,
        "mean": round(hist.mean, 6),
        "p50": round(hist.percentile(50), 6),
        "p95": round(hist.percentile(95), 6),
        "max": hist.max_value,
    }


def profile_network(
    build: "Callable[[], object] | object",
    workload: str = "tokens",
    *,
    tokens: int | None = None,
    scheduler: str = "random",
    procs: int = 8,
    ops: int = 4,
    batch: int = 64,
    workers: int | None = None,
    seed: int = 0,
    semantics: str = "count",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> ProfileReport:
    """Profile ``build()`` (or an existing network) under ``workload``.

    ``semantics`` selects the plan kernel the ``counts`` workload drives
    (``count`` / ``sort`` / ``token``); the token-stepping and contention
    workloads are count-only.

    Runs inside :func:`repro.obs.capture`, so the process-global registry
    and tracer are swapped for fresh ones and restored afterwards; the
    returned report owns the captured instruments.
    """
    from . import capture  # late: repro.obs.__init__ finishes before first call
    from ..core.compiled import compile_network
    from ..core.network import Network

    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; choose from {WORKLOADS}")
    if semantics not in _SEM_NAMESPACE:
        raise ValueError(
            f"unknown semantics {semantics!r}; choose from {tuple(_SEM_NAMESPACE)}"
        )
    if semantics != "count" and workload != "counts":
        raise ValueError(
            f"semantics={semantics!r} only applies to the 'counts' (vectorized "
            f"plan) workload, not {workload!r}"
        )

    with capture(registry, tracer) as (reg, tr):
        with tr.span("profile.build") as build_info:
            net = build() if callable(build) else build
            if not isinstance(net, Network):
                raise TypeError(f"build must produce a Network, got {type(net).__name__}")
            build_info["network"] = net.name
        with tr.span("profile.compile", network=net.name):
            compile_network(net)

        t0 = time.perf_counter()
        workload_summary = _run_workload(
            net, workload, tokens=tokens, scheduler=scheduler, procs=procs, ops=ops,
            batch=batch, workers=workers, seed=seed, semantics=semantics,
        )
        workload_s = time.perf_counter() - t0

    build_ev = next((e for e in tr.events("profile.build")), None)
    compile_ev = next((e for e in tr.events("profile.compile")), None)
    layer_rows, balancer_rows = _hotspot_rows(net, workload, reg, semantics=semantics)

    summary = {
        "build_s": build_ev.fields["dur_s"] if build_ev else None,
        "compile_s": compile_ev.fields["dur_s"] if compile_ev else None,
        "workload_s": round(workload_s, 6),
        "trace_events": len(tr),
        "trace_dropped": tr.dropped,
        **workload_summary,
    }
    if workload == "tokens":
        for key, val in _histogram_stats(reg, "sim.token.latency_steps").items():
            summary[f"latency_steps_{key}"] = val
    network = {
        "name": net.name,
        "width": net.width,
        "depth": net.depth,
        "size": net.size,
        "max_balancer_width": net.max_balancer_width,
    }
    return ProfileReport(
        network=network,
        workload=workload,
        summary=summary,
        layer_rows=layer_rows,
        balancer_rows=balancer_rows,
        registry=reg,
        tracer=tr,
        metric_rows=reg.as_rows(),
        semantics=semantics,
    )


def _run_workload(
    net, workload: str, *, tokens, scheduler, procs, ops, batch, workers, seed,
    semantics="count",
) -> dict:
    """Drive one workload; returns its contribution to the summary dict."""
    if workload == "tokens":
        from ..sim.count_sim import balancer_outputs
        from ..sim.token_sim import TokenSimulator

        total = tokens if tokens is not None else 8 * net.width
        sim = TokenSimulator(net, seed=seed)
        sim.inject(balancer_outputs(total, net.width))
        result = sim.run(scheduler)
        return {
            "scheduler": scheduler,
            "tokens": int(total),
            "steps": result.steps,
        }
    if workload == "contention":
        from ..sim.concurrent import ContentionSimulator

        stats = ContentionSimulator(net).run(procs, ops, collect_latencies=True)
        return {
            "n_procs": procs,
            "ops": stats.ops,
            "makespan": round(stats.makespan, 6),
            "throughput": round(stats.throughput, 6),
            "mean_latency": round(stats.mean_latency, 6),
            "p95_latency": round(stats.latency_percentile(95), 6),
            "mean_wait": round(stats.mean_wait, 6),
        }
    # workload == "counts": the vectorized plan sweep, in any semantics
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100, size=(batch, net.width))
    if semantics == "sort":
        from ..sim.sort_sim import evaluate_comparators

        evaluate_comparators(net, x)
    elif semantics == "token":
        from ..sim.token_sim import quiescent_counts

        quiescent_counts(net, x)
    else:
        from ..sim.count_sim import propagate_counts

        propagate_counts(net, x, workers=workers)
    out = {"batch": int(batch), "semantics": semantics}
    if workers is not None and semantics == "count":
        out["workers"] = int(workers)
    return out


def _hotspot_rows(
    net, workload: str, reg: MetricsRegistry, semantics: str = "count"
) -> tuple[list[dict], list[dict]]:
    """Fold captured per-balancer/per-layer vectors into table rows."""
    layers = net.layers()
    layer_of = {b.index: d for d, layer in enumerate(layers) for b in layer}

    if workload == "tokens":
        visits = _vector_values(reg, "sim.token.balancer_visits", net.size)
        waits = None
    elif workload == "contention":
        visits = _vector_values(reg, "sim.contention.balancer_visits", net.size)
        waits = _vector_values(reg, "sim.contention.balancer_wait", net.size)
    else:  # counts: every balancer sees the whole batch, vectorized per layer
        ns = _SEM_NAMESPACE[semantics]
        batches = reg.get(f"sim.{ns}.vectors")
        per_balancer = batches.value if batches is not None else 0  # type: ignore[union-attr]
        visits = np.full(net.size, per_balancer)
        waits = None
    layer_seconds = (
        _vector_values(
            reg, f"sim.{_SEM_NAMESPACE[semantics]}.layer_seconds", max(net.depth, 1)
        )
        if workload == "counts"
        else None
    )

    total_visits = float(visits.sum()) or 1.0
    balancer_rows = []
    for b in net.balancers:
        row = {
            "balancer": b.index,
            "layer": layer_of.get(b.index, 0),
            "width": b.width,
            "visits": int(visits[b.index]),
            "share": f"{float(visits[b.index]) / total_visits:.3f}",
        }
        if waits is not None:
            row["wait"] = round(float(waits[b.index]), 3)
        balancer_rows.append(row)
    sort_key = (lambda r: (r["wait"], r["visits"])) if waits is not None else (
        lambda r: r["visits"]
    )
    balancer_rows.sort(key=sort_key, reverse=True)

    layer_rows = []
    for d, layer in enumerate(layers):
        idx = [b.index for b in layer]
        lv = float(visits[idx].sum()) if idx else 0.0
        row = {
            "layer": d,
            "balancers": len(layer),
            "widths": ",".join(
                f"{w}x{c}" for w, c in sorted(_width_hist(layer).items())
            ),
            "visits": int(lv),
            "share": f"{lv / total_visits:.3f}",
        }
        if waits is not None:
            row["wait"] = round(float(waits[idx].sum()), 3) if idx else 0.0
        if layer_seconds is not None:
            row["time_ms"] = round(float(layer_seconds[d]) * 1e3, 3)
        layer_rows.append(row)
    return layer_rows, balancer_rows


def _width_hist(layer) -> dict[int, int]:
    hist: dict[int, int] = {}
    for b in layer:
        hist[b.width] = hist.get(b.width, 0) + 1
    return hist
