"""Machine-readable exporters: ``BENCH_*.json`` files and JSON-lines traces.

The benchmark harness historically dumped free-form ``.txt`` tables under
``benchmarks/results/``; from this layer onward every benchmark that wants a
machine-readable trajectory writes a ``BENCH_<name>.json`` file at the repo
root through :func:`write_bench_json`.  The payload shape is deliberately
small and stable::

    {
      "bench": "<name>",
      "schema": 1,
      "created_unix": <float>,
      "repro_version": "<package version>",
      ...caller payload (rows / summary / layers / ...)
    }

so downstream tooling can diff runs across commits without parsing tables.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Iterable

__all__ = ["BENCH_SCHEMA_VERSION", "repo_root", "bench_json_payload", "write_bench_json", "write_jsonl"]

BENCH_SCHEMA_VERSION = 1


def repo_root() -> pathlib.Path:
    """Best-effort repository root: the nearest ancestor of this file that
    contains ``pyproject.toml`` (falls back to the current directory)."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return pathlib.Path.cwd()


def _json_default(obj):
    """Serialize numpy scalars/arrays that leak into payloads."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def bench_json_payload(name: str, payload: dict) -> dict:
    """Wrap ``payload`` in the standard ``BENCH_*.json`` envelope."""
    from .. import __version__

    return {
        "bench": name,
        "schema": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "repro_version": __version__,
        **payload,
    }


def write_bench_json(name: str, payload: dict, directory=None) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` into ``directory`` (repo root by default).

    ``payload`` supplies the benchmark-specific keys (typically ``rows`` —
    a list of flat dicts mirroring the human-readable table — plus optional
    ``summary``/``meta``).  Returns the written path.
    """
    directory = pathlib.Path(directory) if directory is not None else repo_root()
    path = directory / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(bench_json_payload(name, payload), indent=2, default=_json_default) + "\n"
    )
    return path


def write_jsonl(path, records: Iterable[dict]) -> pathlib.Path:
    """Write an iterable of dicts as JSON-lines to ``path``."""
    p = pathlib.Path(path)
    lines = [json.dumps(r, separators=(",", ":"), default=_json_default) for r in records]
    p.write_text("\n".join(lines) + ("\n" if lines else ""))
    return p
