"""Machine-readable exporters: ``BENCH_*.json`` files and JSON-lines traces.

The benchmark harness historically dumped free-form ``.txt`` tables under
``benchmarks/results/``; from this layer onward every benchmark that wants a
machine-readable trajectory writes a ``BENCH_<name>.json`` file at the repo
root through :func:`write_bench_json`.  The payload shape is deliberately
small and stable::

    {
      "bench": "<name>",
      "schema": 2,
      "created_unix": <float>,
      "repro_version": "<package version>",
      "git_commit": "<hex sha or null>",
      "family": "<network family or null>",
      ...caller payload (rows / summary / layers / ...)
    }

so downstream tooling can diff runs across commits without parsing tables.
Schema 2 adds the ``git_commit`` / ``family`` stamps: a trajectory of
``BENCH_*.json`` files collected across PRs is attributable to the commit
and the network family that produced each point.
"""

from __future__ import annotations

import functools
import json
import pathlib
import subprocess
import time
from typing import Iterable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "repo_root",
    "git_commit",
    "bench_json_payload",
    "write_bench_json",
    "read_bench_json",
    "write_jsonl",
]

BENCH_SCHEMA_VERSION = 2


def repo_root() -> pathlib.Path:
    """Best-effort repository root: the nearest ancestor of this file that
    contains ``pyproject.toml`` (falls back to the current directory)."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return pathlib.Path.cwd()


@functools.lru_cache(maxsize=1)
def git_commit() -> str | None:
    """The repo's current commit hash, or ``None`` outside a git checkout
    (e.g. an installed wheel).  Cached for the process lifetime."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root(),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _json_default(obj):
    """Serialize numpy scalars/arrays that leak into payloads."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def bench_json_payload(name: str, payload: dict, family: str | None = None) -> dict:
    """Wrap ``payload`` in the standard ``BENCH_*.json`` envelope.

    Every envelope is stamped with the producing ``git_commit`` and the
    network ``family`` the numbers describe.  ``family`` resolution, in
    precedence order: the explicit argument, then a ``family`` key already
    present in ``payload``, then ``None``.
    """
    from .. import __version__

    out = {
        "bench": name,
        "schema": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "repro_version": __version__,
        "git_commit": git_commit(),
        "family": None,
        **payload,
    }
    if family is not None:
        out["family"] = family
    return out


def write_bench_json(
    name: str, payload: dict, directory=None, family: str | None = None
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` into ``directory`` (repo root by default).

    ``payload`` supplies the benchmark-specific keys (typically ``rows`` —
    a list of flat dicts mirroring the human-readable table — plus optional
    ``summary``/``meta``); ``family`` stamps the envelope (see
    :func:`bench_json_payload`).  Returns the written path.
    """
    directory = pathlib.Path(directory) if directory is not None else repo_root()
    path = directory / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(bench_json_payload(name, payload, family), indent=2, default=_json_default)
        + "\n"
    )
    return path


def read_bench_json(path) -> dict:
    """Read and validate a ``BENCH_*.json`` envelope.

    Checks the stable keys every consumer relies on (``bench``, a known
    ``schema`` version, ``created_unix``, ``repro_version``) and raises
    ``ValueError`` with the offending key otherwise — CI's fuzz-smoke job
    and the tests use this instead of re-implementing envelope checks.
    """
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: BENCH payload must be a JSON object")
    for key in ("bench", "schema", "created_unix", "repro_version"):
        if key not in data:
            raise ValueError(f"{path}: missing envelope key {key!r}")
    if int(data["schema"]) > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {data['schema']} is newer than supported "
            f"({BENCH_SCHEMA_VERSION})"
        )
    return data


def write_jsonl(path, records: Iterable[dict]) -> pathlib.Path:
    """Write an iterable of dicts as JSON-lines to ``path``."""
    p = pathlib.Path(path)
    lines = [json.dumps(r, separators=(",", ":"), default=_json_default) for r in records]
    p.write_text("\n".join(lines) + ("\n" if lines else ""))
    return p
