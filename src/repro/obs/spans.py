"""Request-scoped spans for the serving stack.

The :class:`~repro.obs.tracer.Tracer` records flat *events*; the serving
tier needs *linked* records: one span per client request, carried from the
moment :class:`~repro.serve.server.CountingServer` accepts the line through
parse → queue-wait → batch-assembly → execute → verify → respond, with the
request span pointing at the batch span that served it and the batch span
pointing at the :class:`~repro.core.plan.PlanExecutor` run that evaluated
it.  A :class:`Span` is deliberately cheap: a handful of slots, monotonic
timestamps, and a ``marks`` dict of named phase boundaries.

Completed spans land in a :class:`SpanRecorder` — a bounded ring
(``deque(maxlen=capacity)``) exactly like the tracer's, so a long-running
server keeps only the newest ``capacity`` spans and counts the rest as
``dropped``.  That ring *is* the flight recorder's source material (see
:mod:`repro.obs.flight`): on an exactly-once violation the last few
thousand request spans are what you want on disk.

Everything here follows the repo-wide no-op guarantee: nothing in this
module is imported, and no span is ever allocated, unless a call site has
already checked ``runtime.enabled``.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = [
    "Span",
    "SpanRecorder",
    "default_span_recorder",
    "set_default_span_recorder",
]

#: Default ring capacity (completed spans kept for the flight recorder).
DEFAULT_SPAN_CAPACITY = 4_096


class Span:
    """One in-flight or completed unit of work.

    ``kind`` is ``"request"`` (one protocol line / one service call),
    ``"batch"`` (one coalesced :class:`~repro.serve.batching.Batcher`
    dispatch), or ``"executor"`` (one :class:`PlanExecutor` run).
    ``parent_id`` links a span to the span it ran under; ``fields`` carries
    free-form scalars (verb, batch_id, executor_run, ...).  ``marks`` maps
    phase names (``parsed``, ``enqueued``, ``batched``, ``executed``,
    ``verified``, ``responded``) to seconds since the span started.
    """

    __slots__ = ("span_id", "parent_id", "kind", "t0", "dur_s", "status", "marks", "fields")

    def __init__(self, span_id: int, kind: str, parent_id: int | None = None, **fields):
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.t0 = time.perf_counter()
        self.dur_s: float | None = None
        self.status: str | None = None
        self.marks: dict[str, float] = {}
        self.fields = fields

    def mark(self, name: str) -> float:
        """Record a named phase boundary (seconds since span start)."""
        dt = time.perf_counter() - self.t0
        self.marks[name] = dt
        return dt

    @property
    def finished(self) -> bool:
        return self.dur_s is not None

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "status": self.status,
            "dur_s": None if self.dur_s is None else round(self.dur_s, 9),
            "marks": {k: round(v, 9) for k, v in self.marks.items()},
            **self.fields,
        }


class SpanRecorder:
    """Mints span ids and keeps a bounded ring of completed spans.

    ``start`` allocates a span with a fresh id; ``finish`` stamps duration
    and status and appends it to the ring (oldest spans are evicted and
    counted in :attr:`dropped`).  ``current_batch`` is a cooperation slot
    for the batcher worker: it points at the batch span while the batch's
    apply function runs, so downstream layers (service verify, plan
    executor) can attach linkage fields without any plumbing through the
    generic batching API.  The batch worker is a single task and the apply
    function is synchronous, so one slot suffices.
    """

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._completed: deque[Span] = deque(maxlen=capacity)
        self._next_id = 0
        self._dropped = 0
        self.current_batch: Span | None = None

    def start(self, kind: str, parent_id: int | None = None, **fields) -> Span:
        span = Span(self._next_id, kind, parent_id, **fields)
        self._next_id += 1
        return span

    def finish(self, span: Span, status: str = "ok") -> float:
        """Complete ``span`` into the ring; returns its duration (seconds)."""
        span.dur_s = time.perf_counter() - span.t0
        span.status = status
        if len(self._completed) == self.capacity:
            self._dropped += 1
        self._completed.append(span)
        return span.dur_s

    def completed(self, kind: str | None = None) -> list[Span]:
        """Completed spans, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self._completed)
        return [s for s in self._completed if s.kind == kind]

    def __len__(self) -> int:
        return len(self._completed)

    @property
    def dropped(self) -> int:
        """Completed spans evicted by the ring since the last clear."""
        return self._dropped

    @property
    def started(self) -> int:
        """Span ids minted so far (== the next request id)."""
        return self._next_id

    def clear(self) -> None:
        self._completed.clear()
        self._dropped = 0

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self._completed]


_default = SpanRecorder()


def default_span_recorder() -> SpanRecorder:
    """The process-global recorder the serve instrumentation writes to."""
    return _default


def set_default_span_recorder(recorder: SpanRecorder) -> SpanRecorder:
    """Swap the process-global recorder; returns the previous one."""
    global _default
    prev = _default
    _default = recorder
    return prev
