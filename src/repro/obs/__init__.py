"""Observability: metrics, tracing, and profiling for networks & simulators.

The paper's claims are quantitative (depth formulas, contention/latency
behaviour under asynchronous schedules); this package is how the repo
*measures* them.  Three pieces:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges,
  fixed-bucket histograms, and dense per-index vector counters, plus a
  process-global default registry;
* :mod:`repro.obs.tracer` — a structured event :class:`Tracer` with a
  bounded ring buffer and JSON-lines export (``Tracer.span("compile")``,
  :func:`trace_event`);
* :mod:`repro.obs.profiler` — the ``repro profile`` engine: build a
  network, run a workload, return per-layer / per-balancer hot-spot tables
  and a ``BENCH_profile.json`` payload.

The whole layer is **off by default** and costs one boolean attribute read
per instrumented block when off (see :mod:`repro.obs.runtime`): the
vectorized simulators execute byte-identical code paths either way, and the
tier-1 test suite runs un-instrumented.  Turn it on with ``REPRO_OBS=1`` in
the environment, :func:`enable`, or scoped::

    import repro.obs as obs

    with obs.capture() as (registry, tracer):
        propagate_counts(net, batch)
    print(registry.snapshot()["sim.counts.batches"])
    tracer.export_jsonl("trace.jsonl")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from . import runtime
from .export import bench_json_payload, read_bench_json, repo_root, write_bench_json, write_jsonl
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    VectorCounter,
    default_registry,
    set_default_registry,
)
from .exposition import (
    metric_name,
    parse_prometheus,
    percentile_from_buckets,
    render_registries,
    render_registry,
)
from .flight import dump_flight, flight_payload
from .spans import (
    Span,
    SpanRecorder,
    default_span_recorder,
    set_default_span_recorder,
)
from .tracer import (
    Tracer,
    TraceEvent,
    default_tracer,
    set_default_tracer,
    span,
    trace_event,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "capture",
    "runtime",
    "Counter",
    "Gauge",
    "Histogram",
    "VectorCounter",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "default_registry",
    "set_default_registry",
    "Tracer",
    "TraceEvent",
    "default_tracer",
    "set_default_tracer",
    "trace_event",
    "span",
    "Span",
    "SpanRecorder",
    "default_span_recorder",
    "set_default_span_recorder",
    "metric_name",
    "render_registry",
    "render_registries",
    "parse_prometheus",
    "percentile_from_buckets",
    "flight_payload",
    "dump_flight",
    "bench_json_payload",
    "read_bench_json",
    "write_bench_json",
    "write_jsonl",
    "repo_root",
    "profile_network",
    "ProfileReport",
]


def enabled() -> bool:
    """Is the observability layer currently recording?"""
    return runtime.enabled


def enable() -> None:
    """Turn instrumentation on process-wide."""
    runtime.enabled = True


def disable() -> None:
    """Turn instrumentation off process-wide (the default)."""
    runtime.enabled = False


@contextmanager
def capture(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    spans: SpanRecorder | None = None,
) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Enable observability into *fresh* default registry/tracer, scoped.

    Swaps the process-global registry, tracer, and span recorder for the
    given (or new) ones, enables recording, and restores everything —
    including the previous enabled-state — on exit.  This is how the
    profiler and tests observe a workload without inheriting or leaking
    global metric state.  Yields ``(registry, tracer)``; reach the scoped
    span recorder via :func:`default_span_recorder` inside the block.
    """
    registry = registry if registry is not None else MetricsRegistry()
    tracer = tracer if tracer is not None else Tracer()
    spans = spans if spans is not None else SpanRecorder()
    prev_registry = set_default_registry(registry)
    prev_tracer = set_default_tracer(tracer)
    prev_spans = set_default_span_recorder(spans)
    prev_enabled = runtime.enabled
    runtime.enabled = True
    try:
        yield registry, tracer
    finally:
        runtime.enabled = prev_enabled
        set_default_registry(prev_registry)
        set_default_tracer(prev_tracer)
        set_default_span_recorder(prev_spans)


from .profiler import ProfileReport, profile_network  # noqa: E402  (uses capture)
