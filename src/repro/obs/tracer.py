"""Structured event tracing with a bounded in-memory ring buffer.

Every event is a ``kind`` plus free-form scalar fields, stamped with a
monotonic timestamp (``time.perf_counter``) and a per-tracer sequence
number.  Events land in a ``deque(maxlen=capacity)`` so a long simulation
cannot exhaust memory — the newest ``capacity`` events win.  Export is
JSON-lines (one event object per line), the machine-readable format the
benchmark trajectory and the ``repro profile`` subcommand consume.

Spans are sugar for paired events::

    with tracer.span("compile", network="K(2,3,5)"):
        ...          # records kind="compile" with dur_s on exit

Module-level :func:`trace_event` / :func:`span` write to the process-global
default tracer and no-op when observability is disabled, so call sites that
are not themselves on a hot path can use them unguarded.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from . import runtime

__all__ = [
    "TraceEvent",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "trace_event",
    "span",
]

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: sequence number, monotonic time, kind, fields."""

    seq: int
    t: float
    kind: str
    fields: dict

    def to_dict(self) -> dict:
        return {"seq": self.seq, "t": round(self.t, 9), "kind": self.kind, **self.fields}


class Tracer:
    """Bounded event recorder with JSON-lines export."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._t0 = time.perf_counter()

    def record(self, kind: str, **fields) -> TraceEvent:
        """Append one event (unconditionally — callers on hot paths guard
        with ``runtime.enabled`` themselves)."""
        if len(self._events) == self.capacity:
            self._dropped += 1
        ev = TraceEvent(self._seq, time.perf_counter() - self._t0, kind, fields)
        self._seq += 1
        self._events.append(ev)
        return ev

    @contextmanager
    def span(self, kind: str, **fields) -> Iterator[dict]:
        """Record ``kind`` with a measured ``dur_s`` field on exit.

        Yields a mutable dict; entries added inside the block are attached
        to the recorded event (e.g. result sizes discovered mid-span).
        """
        extra: dict = {}
        t0 = time.perf_counter()
        try:
            yield extra
        finally:
            self.record(kind, dur_s=round(time.perf_counter() - t0, 9), **fields, **extra)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Recorded events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer since the last clear."""
        return self._dropped

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    def to_jsonl(self) -> str:
        """All events as JSON-lines text (one compact object per line)."""
        return "\n".join(json.dumps(e.to_dict(), separators=(",", ":")) for e in self._events)

    def export_jsonl(self, path) -> pathlib.Path:
        """Write :meth:`to_jsonl` to ``path``; returns the resolved path."""
        p = pathlib.Path(path)
        text = self.to_jsonl()
        p.write_text(text + "\n" if text else "")
        return p


_default = Tracer()


def default_tracer() -> Tracer:
    """The process-global tracer the instrumentation hooks write to."""
    return _default


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _default
    prev = _default
    _default = tracer
    return prev


def trace_event(kind: str, **fields) -> TraceEvent | None:
    """Record into the default tracer — no-op while observability is off."""
    if not runtime.enabled:
        return None
    return _default.record(kind, **fields)


@contextmanager
def span(kind: str, **fields) -> Iterator[dict]:
    """Span on the default tracer — still yields (but records nothing)
    while observability is off."""
    if not runtime.enabled:
        yield {}
        return
    with _default.span(kind, **fields) as extra:
        yield extra
