"""Global on/off switch for the observability layer.

Instrumented blocks across :mod:`repro.core` and :mod:`repro.sim` guard all
observability work behind a single module-attribute read::

    from ..obs import runtime as _obs
    ...
    if _obs.enabled:
        <record metrics / trace events>

so that with observability off the hot paths execute *exactly* the code they
executed before instrumentation existed — one boolean attribute lookup per
instrumented block, no calls into :mod:`repro.obs`, no allocation.  This is
the no-op guarantee the tier-1 test suite (and the overhead regression test
in ``tests/obs/test_overhead.py``) relies on.

The initial state comes from the ``REPRO_OBS`` environment variable:
unset/``0``/``false``/``no``/``off`` (case-insensitive) means disabled,
anything else means enabled.  :func:`repro.obs.enable` /
:func:`repro.obs.disable` / :func:`repro.obs.capture` flip it at runtime.
"""

from __future__ import annotations

import os

__all__ = ["enabled", "env_default"]


def env_default() -> bool:
    """The enabled-state implied by the current ``REPRO_OBS`` env var."""
    return os.environ.get("REPRO_OBS", "0").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


#: Module-level flag read (once per instrumented block) by the hot paths.
enabled: bool = env_default()
