"""Metric instruments: counters, gauges, histograms, and vector counters.

A :class:`MetricsRegistry` is a flat, name-keyed collection of instruments.
Instrumented code gets-or-creates instruments by name (`registry.counter`,
`registry.gauge`, `registry.histogram`, `registry.vector`) and updates them;
reporting code reads :meth:`MetricsRegistry.snapshot` (JSON-serializable) or
:meth:`MetricsRegistry.as_rows` (for :func:`repro.analysis.format_table`).

Design notes
------------
* Instruments are deliberately plain Python objects with no locking: the
  simulators update them from one thread, and the one genuinely threaded
  consumer (:class:`repro.sim.ThreadedCounter`) accumulates privately under
  its existing per-balancer locks and publishes aggregates once at the end
  of a run.
* Histograms use **fixed** bucket bounds chosen at creation so `observe` is
  one ``bisect`` plus two adds — no dynamic resizing on the hot path.
* :class:`VectorCounter` is an integer/float numpy array addressed by dense
  index (balancer index, layer index).  Per-balancer accounting with one
  dict lookup amortized over a whole run, not one string key per hop.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "VectorCounter",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "default_registry",
    "set_default_registry",
]

#: General-purpose bucket bounds (counts, sizes, latencies in steps).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 100_000,
)

#: Bucket bounds for wall-clock durations in seconds.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-written value, with the observed extrema kept alongside."""

    name: str
    value: float = 0.0
    max_value: float = float("-inf")
    min_value: float = float("inf")
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value
        self.updates += 1

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "max": self.max_value if self.updates else None,
            "min": self.min_value if self.updates else None,
            "updates": self.updates,
        }


class Histogram:
    """Fixed-bucket histogram with exact sum/count/extrema.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last bound.  Percentiles
    are estimated by linear interpolation inside the winning bucket, which
    is as good as fixed buckets allow and plenty for hot-spot ranking.
    """

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty sorted sequence")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")

    def cumulative_counts(self) -> list[int]:
        """Running totals per bucket; the last entry equals ``total``
        (the shape Prometheus ``_bucket`` samples carry)."""
        out, cum = [], 0
        for c in self.counts:
            cum += c
            out.append(cum)
        return out

    def percentile(self, pct: float) -> float:
        """Approximate percentile from the bucket counts (nan when empty).

        The estimate is always finite for any non-empty histogram: the
        overflow bucket's upper edge is the observed maximum, and when even
        that is non-finite (``observe(inf)`` happened) the edge clamps to
        the last finite bound instead of leaking ``+inf`` into the result.
        """
        if not 0 <= pct <= 100:
            raise ValueError("pct must be in [0, 100]")
        if self.total == 0:
            return float("nan")
        from math import isfinite

        top = self.max_value if isfinite(self.max_value) else self.bounds[-1]
        floor = self.min_value if isfinite(self.min_value) else 0.0
        target = pct / 100.0 * self.total
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target and c:
                lo = self.bounds[i - 1] if i > 0 else min(floor, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else max(top, self.bounds[-1])
                frac = (target - (cum - c)) / c
                return float(min(max(lo + (hi - lo) * frac, floor), max(top, self.bounds[-1])))
        return float(max(top, self.bounds[-1]))

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean if self.total else None,
            "min": self.min_value if self.total else None,
            "max": self.max_value if self.total else None,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.counts),
        }


class VectorCounter:
    """A dense array of per-index counters (per balancer, per layer)."""

    def __init__(self, name: str, size: int, dtype=np.int64):
        if size <= 0:
            raise ValueError("vector size must be positive")
        self.name = name
        self.values = np.zeros(size, dtype=dtype)

    @property
    def size(self) -> int:
        return int(self.values.shape[0])

    def inc(self, index: int, amount: float = 1) -> None:
        self.values[index] += amount

    def grow_to(self, size: int) -> None:
        """Extend with zero entries so at least ``size`` indices exist
        (values are preserved; vectors never shrink)."""
        if size > self.size:
            grown = np.zeros(size, dtype=self.values.dtype)
            grown[: self.size] = self.values
            self.values = grown

    def add_array(self, values: np.ndarray) -> None:
        """Accumulate a whole array at once (end-of-run publication)."""
        arr = np.asarray(values, dtype=self.values.dtype)
        self.grow_to(arr.shape[0])
        self.values[: arr.shape[0]] += arr

    def snapshot(self) -> dict:
        return {"type": "vector", "values": self.values.tolist()}


class MetricsRegistry:
    """Flat name-keyed collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, cls, factory):
        inst = self._metrics.get(name)
        if inst is None:
            inst = factory()
            self._metrics[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}, "
                f"requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def vector(self, name: str, size: int, dtype=np.int64) -> VectorCounter:
        vec = self._get_or_create(name, VectorCounter, lambda: VectorCounter(name, size, dtype))
        vec.grow_to(size)  # registries may outlive one network; never shrink
        return vec

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every instrument (fresh registry state)."""
        self._metrics.clear()

    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def as_rows(self) -> list[dict]:
        """Flatten scalar instruments into table rows (vectors summarized)."""
        rows = []
        for name, snap in self.snapshot().items():
            if snap["type"] == "counter":
                rows.append({"metric": name, "type": "counter", "value": snap["value"]})
            elif snap["type"] == "gauge":
                rows.append(
                    {"metric": name, "type": "gauge", "value": snap["value"], "max": snap["max"]}
                )
            elif snap["type"] == "histogram":
                rows.append(
                    {
                        "metric": name,
                        "type": "histogram",
                        "value": snap["count"],
                        "mean": None if snap["mean"] is None else round(snap["mean"], 6),
                        "max": snap["max"],
                    }
                )
            else:  # vector
                vals = snap["values"]
                rows.append(
                    {
                        "metric": name,
                        "type": "vector",
                        "value": float(sum(vals)),
                        "max": max(vals) if vals else None,
                    }
                )
        return rows


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry the instrumentation hooks write to."""
    return _default


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default
    prev = _default
    _default = registry
    return prev
