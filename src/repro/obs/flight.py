"""Flight recorder: dump the recent-span ring to stamped JSON on failure.

The :class:`~repro.obs.spans.SpanRecorder` already keeps a bounded ring of
the most recently completed request/batch/executor spans; this module turns
that ring (plus a metrics snapshot) into a post-mortem artifact.  Dumps are
written automatically when the serving stack trips an
:class:`~repro.serve.service.ExactlyOnceError` or the chaos harness records
a :class:`~repro.faults.chaos.FaultEscape`, and on demand via the ``FLIGHT``
protocol verb or :func:`dump_flight`.

Each dump carries the standard ``BENCH_*.json`` envelope stamps
(``schema``, ``created_unix``, ``repro_version``, ``git_commit``) so a
flight file found in a crash directory is attributable to the exact code
that produced it, plus:

* ``reason`` / ``detail`` — why the dump was taken;
* ``spans`` — the completed-span ring, oldest first (request spans link to
  their batch via ``batch_id``; batch spans link to the plan-executor run
  via ``executor_run``);
* ``spans_dropped`` — how many older spans the ring had already evicted;
* ``metrics`` — a full registry snapshot at dump time.

The dump directory resolves, in order: the explicit ``directory`` argument,
the ``REPRO_FLIGHT_DIR`` environment variable, the current directory.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from .export import bench_json_payload
from .metrics import MetricsRegistry, default_registry
from .spans import SpanRecorder, default_span_recorder

__all__ = ["flight_payload", "dump_flight", "flight_dir"]


def flight_dir(directory=None) -> pathlib.Path:
    """Where flight dumps land (arg > ``REPRO_FLIGHT_DIR`` > cwd)."""
    if directory is not None:
        return pathlib.Path(directory)
    env = os.environ.get("REPRO_FLIGHT_DIR")
    return pathlib.Path(env) if env else pathlib.Path.cwd()


def flight_payload(
    reason: str,
    detail: str | None = None,
    recorder: SpanRecorder | None = None,
    registry: MetricsRegistry | None = None,
) -> dict:
    """The JSON-ready flight-recorder payload (stamped envelope included)."""
    recorder = recorder if recorder is not None else default_span_recorder()
    registry = registry if registry is not None else default_registry()
    return bench_json_payload(
        "flight",
        {
            "reason": reason,
            "detail": detail,
            "spans": recorder.to_dicts(),
            "spans_dropped": recorder.dropped,
            "metrics": registry.snapshot(),
        },
    )


def dump_flight(
    reason: str,
    detail: str | None = None,
    directory=None,
    recorder: SpanRecorder | None = None,
    registry: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Write ``FLIGHT_<reason>_<ms>.json`` into :func:`flight_dir`.

    The filename stamp is wall-clock milliseconds so repeated failures do
    not overwrite each other.  Returns the written path.
    """
    target = flight_dir(directory)
    target.mkdir(parents=True, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason) or "dump"
    path = target / f"FLIGHT_{safe}_{int(time.time() * 1000)}.json"
    payload = flight_payload(reason, detail, recorder, registry)
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path
